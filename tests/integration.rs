//! End-to-end integration tests spanning `mbfi-ir`, `mbfi-vm`,
//! `mbfi-workloads` and `mbfi-core`: golden runs, single- and multi-bit
//! campaigns on real workloads, and consistency of the derived statistics.

use mbfi_core::{
    Campaign, CampaignSpec, FaultModel, GoldenRun, Outcome, ParameterGrid, Technique, WinSize,
};
use mbfi_workloads::{all_workloads, workload_by_name, InputSize};

/// Experiments per campaign in these tests (kept small for CI speed).
const N: usize = 60;

#[test]
fn golden_runs_exist_for_every_workload() {
    for w in all_workloads() {
        let module = w.build_module(InputSize::Tiny);
        let golden = GoldenRun::capture(&module)
            .unwrap_or_else(|e| panic!("golden run of {} failed: {e}", w.name()));
        assert!(!golden.output.is_empty());
        assert!(golden.dynamic_instrs > 100, "{} is too trivial", w.name());
        assert!(
            golden.candidates(Technique::InjectOnRead)
                >= golden.candidates(Technique::InjectOnWrite),
            "{}: table II shape requires read candidates >= write candidates",
            w.name()
        );
    }
}

#[test]
fn single_bit_campaign_on_a_real_workload_produces_mixed_outcomes() {
    let w = workload_by_name("qsort").unwrap();
    let module = w.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).unwrap();
    let spec = CampaignSpec {
        technique: Technique::InjectOnRead,
        model: FaultModel::single_bit(),
        experiments: 150,
        seed: 11,
        hang_factor: 20,
        threads: 0,
    };
    let result = Campaign::run(&module, &golden, &spec);
    assert_eq!(result.total(), 150);
    // A register-level fault-injection campaign on a pointer-heavy workload
    // must produce benign outcomes, detections and at least a handful of SDCs.
    assert!(
        result.counts.benign > 0,
        "no benign outcomes: {:?}",
        result.counts
    );
    assert!(
        result.counts.detection() > 0,
        "no detections: {:?}",
        result.counts
    );
    assert!(result.counts.sdc + result.counts.benign > 10);
}

#[test]
fn multi_bit_campaigns_activate_more_errors_than_single_bit() {
    let w = workload_by_name("histo").unwrap();
    let module = w.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).unwrap();

    let single = Campaign::run(
        &module,
        &golden,
        &CampaignSpec {
            technique: Technique::InjectOnWrite,
            model: FaultModel::single_bit(),
            experiments: N,
            seed: 3,
            hang_factor: 20,
            threads: 0,
        },
    );
    let multi = Campaign::run(
        &module,
        &golden,
        &CampaignSpec {
            technique: Technique::InjectOnWrite,
            model: FaultModel::multi_bit(5, WinSize::Fixed(1)),
            experiments: N,
            seed: 3,
            hang_factor: 20,
            threads: 0,
        },
    );
    assert!(single.mean_activated() <= 1.0);
    assert!(
        multi.mean_activated() > single.mean_activated(),
        "multi-bit campaigns should activate more errors ({} vs {})",
        multi.mean_activated(),
        single.mean_activated()
    );
}

#[test]
fn outcome_fractions_sum_to_one_for_every_technique() {
    let w = workload_by_name("stringsearch").unwrap();
    let module = w.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).unwrap();
    for technique in Technique::ALL {
        let result = Campaign::run(
            &module,
            &golden,
            &CampaignSpec {
                technique,
                model: FaultModel::single_bit(),
                experiments: N,
                seed: 5,
                hang_factor: 20,
                threads: 0,
            },
        );
        let sum: f64 = Outcome::ALL
            .iter()
            .map(|o| result.counts.fraction(*o))
            .sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "{technique}: fractions sum to {sum}"
        );
        let ci = result.sdc_proportion();
        assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
    }
}

#[test]
fn the_campaign_grid_matches_the_paper_dimensions() {
    let all = ParameterGrid::all_campaigns();
    assert_eq!(all.len(), 182, "the paper runs 182 campaigns per workload");
    // 15 workloads x 182 campaigns = 2730 campaigns overall.
    assert_eq!(all.len() * all_workloads().len(), 2730);
}

#[test]
fn same_register_sweep_runs_end_to_end_on_a_workload() {
    let w = workload_by_name("CRC32").unwrap();
    let module = w.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).unwrap();
    let sweep = ParameterGrid::same_register_sweep(Technique::InjectOnWrite);
    let results = Campaign::run_points(&module, &golden, &sweep[..3], 40, 17);
    assert_eq!(results.len(), 3);
    for r in &results {
        assert_eq!(r.total(), 40);
        assert!(r.sdc_pct() <= 100.0);
    }
}

#[test]
fn error_space_sizes_reflect_candidate_counts() {
    let w = workload_by_name("sha").unwrap();
    let module = w.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).unwrap();
    let space = mbfi_core::space::ErrorSpace::new(golden.candidates(Technique::InjectOnRead), 64);
    assert!(space.single_bit_size() > 0);
    assert!(space.multi_bit_log10(10) > space.single_bit_log10());
    assert!(space.sampling_fraction(10_000) < 1.0);
    // The fraction clamps at full coverage even for a budget beyond the
    // space (possible for tiny inputs under an adaptive max_experiments).
    assert_eq!(space.sampling_fraction(u64::MAX), 1.0);
}

/// End to end: an adaptive campaign whose budget outgrows the single-bit
/// error space of a tiny module carries a `SamplingSaturated` warning, and
/// its result reports the realized precision.
#[test]
fn adaptive_campaign_warns_when_the_budget_outgrows_the_space() {
    use mbfi::ir::{CompiledModule, ModuleBuilder, Type};
    use mbfi_core::{CampaignWarning, Precision};

    // A tiny straight-line module: few candidates, so a modest adaptive
    // budget exceeds d·b.
    let mut mb = ModuleBuilder::new("tiny");
    let main = mb.declare("main", &[], None);
    {
        let mut f = mb.define(main);
        let a = f.add(Type::I64, 40i64, 2i64);
        let b = f.mul(Type::I64, a, 3i64);
        f.print_i64(b);
        f.ret_void();
    }
    mb.set_entry(main);
    let module = mb.finish();
    let code = CompiledModule::lower(&module);
    let golden = GoldenRun::capture(&module).unwrap();
    let candidates = golden.candidates(Technique::InjectOnRead);
    let space = candidates * 64;
    assert!(space < 600, "test module must stay tiny (space = {space})");

    let spec = CampaignSpec {
        technique: Technique::InjectOnRead,
        model: FaultModel::single_bit(),
        experiments: 0, // ignored in adaptive mode
        seed: 42,
        hang_factor: 8,
        threads: 2,
    };
    let precision = Precision {
        target_half_width_pct: 0.0001, // unreachably tight: run to the cap
        min_experiments: 16,
        max_experiments: space as usize + 40,
        ..Precision::default()
    };
    let r = Campaign::run_adaptive(&code, &golden, &spec, None, &precision);
    assert_eq!(r.total(), space + 40, "the cell runs its whole budget");
    assert_eq!(
        r.warnings,
        vec![CampaignWarning::SamplingSaturated {
            budget: space + 40,
            space,
        }]
    );
    let status = r.adaptive.expect("adaptive campaigns report their status");
    assert!(!status.reached_target);
    assert!(status.realized_half_width_pct() > 0.0001);

    // The same cell with a budget inside the space carries no warning.
    let r = Campaign::run_adaptive(
        &code,
        &golden,
        &spec,
        None,
        &Precision {
            max_experiments: space as usize / 2,
            ..precision
        },
    );
    assert!(r.warnings.is_empty(), "warnings: {:?}", r.warnings);
}
