//! The campaign service's equivalence contract: a report obtained through
//! `mbfi-serve` — over TCP, from concurrent clients, with cross-client cell
//! deduplication — is **byte-identical** to `Sweep::run` of the same grid
//! in-process, at every engine thread count.  Also pins the containment
//! properties of the daemon: malformed requests and mid-stream disconnects
//! affect only their own connection, and the `shutdown` verb drains
//! in-flight work before the process exits.

use mbfi_core::{
    FaultModel, GoldenRun, IntervalMethod, MonitorState, Precision, Sweep, SweepCampaign,
    SweepConfig, SweepReport, SweepUnit, Technique,
};
use mbfi_ir::CompiledModule;
use mbfi_serve::{CellRequest, GridRequest, ServerConfig, ServerHandle};
use mbfi_workloads::{all_workloads, workload_by_name, InputSize};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

const EXPERIMENTS: usize = 12;
const SEED: u64 = 0x5EE7_CAFE;

/// One cell per registered workload: the "coarse 15-workload grid".
fn full_grid() -> Vec<CellRequest> {
    all_workloads()
        .iter()
        .map(|w| CellRequest {
            workload: w.name().to_string(),
            size: InputSize::Tiny,
            technique: Technique::InjectOnRead,
            model: FaultModel::single_bit(),
            experiments: EXPERIMENTS,
            seed: SEED,
            hang_factor: 20,
            precision: None,
        })
        .collect()
}

/// Run the same cells in-process, the way every pre-daemon user of the
/// library does: shared units, one grid, one `Sweep::run`.
fn in_process(cells: &[CellRequest], threads: usize, precision: Option<Precision>) -> SweepReport {
    let mut units = Vec::new();
    let mut keys: Vec<(String, InputSize)> = Vec::new();
    let mut campaigns = Vec::new();
    for cell in cells {
        let key = (cell.workload.to_ascii_lowercase(), cell.size);
        let unit = keys.iter().position(|k| *k == key).unwrap_or_else(|| {
            let w = workload_by_name(&cell.workload).expect("registered workload");
            let code = CompiledModule::lower(&w.build_module(cell.size));
            let golden = GoldenRun::capture_compiled(&code).expect("golden run");
            units.push(mbfi_core::EngineUnit::new(code, golden));
            keys.push(key.clone());
            units.len() - 1
        });
        campaigns.push(SweepCampaign {
            unit,
            spec: cell.spec(),
        });
    }
    let views: Vec<SweepUnit<'_>> = units.iter().map(|u| u.view()).collect();
    Sweep::run(
        &views,
        &campaigns,
        &SweepConfig {
            threads,
            batch_size: 0,
            keep_records: false,
            precision,
        },
    )
}

fn spawn_server(threads: usize) -> ServerHandle {
    mbfi_serve::spawn(ServerConfig {
        port: 0,
        threads,
        quota: 0,
        max_pending: 0,
        read_timeout_ms: 10_000,
    })
    .expect("bind an ephemeral port")
}

/// Submit on its own thread, replaying the event stream through the
/// `mbfi-monitor` accumulator as it arrives.
fn client(
    addr: std::net::SocketAddr,
    cells: Vec<CellRequest>,
    priority: u8,
) -> std::thread::JoinHandle<(mbfi_serve::ServeOutcome, MonitorState)> {
    std::thread::spawn(move || {
        let mut monitor = MonitorState::new();
        let outcome = mbfi_serve::submit_with(
            addr,
            &GridRequest {
                threads: 0,
                priority,
                cells,
            },
            &mut |event| {
                monitor
                    .apply_line(&event.render_line())
                    .expect("served events parse");
            },
        )
        .expect("submission succeeds");
        (outcome, monitor)
    })
}

/// Two concurrent clients with overlapping halves of the 15-workload grid:
/// every merged report is byte-identical to the in-process sweep, the five
/// shared cells execute exactly once (deduped onto one client's execution),
/// and each client's event stream verifies clean through `MonitorState`.
#[test]
fn concurrent_clients_match_in_process_sweep_and_dedupe() {
    let grid = full_grid();
    assert!(grid.len() >= 15, "registry shrank below the coarse grid");
    let overlap = 5usize;
    let split = grid.len() - 2 * overlap; // A: [0, split+overlap), B: [split, len)
    let a_cells: Vec<CellRequest> = grid[..split + overlap].to_vec();
    let b_cells: Vec<CellRequest> = grid[split..].to_vec();

    for threads in [1usize, 4] {
        let server = spawn_server(threads);
        let addr = server.addr();
        let a = client(addr, a_cells.clone(), 0);
        let b = client(addr, b_cells.clone(), 3);
        let (a_out, a_monitor) = a.join().expect("client A");
        let (b_out, b_monitor) = b.join().expect("client B");

        for (name, monitor) in [("A", &a_monitor), ("B", &b_monitor)] {
            let problems = monitor.verify();
            assert!(
                problems.is_empty(),
                "threads={threads} client {name}: stream inconsistent: {problems:?}"
            );
            assert!(monitor.finished, "client {name} stream reached the end");
        }
        assert_eq!(
            a_out.deduped + b_out.deduped,
            overlap as u64,
            "threads={threads}: each shared cell executes exactly once"
        );
        assert_eq!(
            a_out.report,
            in_process(&a_cells, threads, None),
            "threads={threads}: client A's served report diverged"
        );
        assert_eq!(
            b_out.report,
            in_process(&b_cells, threads, None),
            "threads={threads}: client B's served report diverged"
        );
        // Byte-identity in the literal sense: the rendered JSON matches too.
        assert_eq!(
            a_out.report.to_json().render(),
            in_process(&a_cells, threads, None).to_json().render(),
            "threads={threads}: rendered reports differ"
        );

        // A third client asking for the whole grid hits the warm cache for
        // every single cell and still gets the exact in-process bytes.
        let full = mbfi_serve::submit(
            addr,
            &GridRequest {
                threads: 2,
                priority: 0,
                cells: grid.clone(),
            },
        )
        .expect("warm-cache submission");
        assert_eq!(full.deduped, grid.len() as u64, "all cells deduped");
        assert_eq!(full.report, in_process(&grid, threads, None));

        server.stop();
        server.join();
    }
}

/// Adaptive (precision-targeted) cells take the engine's round/stop-rule
/// path; the served stream carries `round_done` events and the report still
/// matches the in-process adaptive sweep byte-for-byte.
#[test]
fn adaptive_grids_round_trip_through_the_daemon() {
    let precision = Precision {
        target_half_width_pct: 20.0,
        min_experiments: 6,
        max_experiments: 18,
        interval: IntervalMethod::Wilson,
    };
    let cells: Vec<CellRequest> = ["qsort", "CRC32", "sha"]
        .iter()
        .map(|name| CellRequest {
            workload: name.to_string(),
            size: InputSize::Tiny,
            technique: Technique::InjectOnWrite,
            model: FaultModel::single_bit(),
            experiments: EXPERIMENTS,
            seed: SEED,
            hang_factor: 20,
            precision: Some(precision),
        })
        .collect();
    let server = spawn_server(2);
    let (outcome, monitor) = client(server.addr(), cells.clone(), 0)
        .join()
        .expect("adaptive client");
    assert!(
        monitor.verify().is_empty(),
        "adaptive stream inconsistent: {:?}",
        monitor.verify()
    );
    assert!(
        monitor.cells.iter().all(|c| c.rounds > 0),
        "adaptive cells report their rounds"
    );
    assert_eq!(outcome.report, in_process(&cells, 2, Some(precision)));
    server.stop();
    server.join();
}

fn raw_request(addr: std::net::SocketAddr, line: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    BufReader::new(stream)
        .lines()
        .map_while(Result::ok)
        .collect()
}

/// Hostile and flaky clients are contained: malformed requests get an error
/// frame (not a dead daemon), a client that disconnects mid-stream leaves
/// its cells running for everyone else, and the `shutdown` verb drains
/// before the listener goes away.
#[test]
fn hostile_clients_are_contained_and_shutdown_drains() {
    let server = spawn_server(1);
    let addr = server.addr();

    // Malformed requests: error frame, connection closed, daemon alive.
    for bad in [
        "not json at all",
        "{\"cmd\":\"explode\"}",
        "{\"cmd\":\"submit\",\"cells\":[{\"workload\":42}]}",
        "{\"cmd\":\"submit\",\"cells\":[]}",
    ] {
        let frames = raw_request(addr, bad);
        assert_eq!(frames.len(), 1, "exactly one error frame for {bad:?}");
        let msg = mbfi_serve::protocol::parse_error(&frames[0])
            .unwrap_or_else(|| panic!("error frame for {bad:?}, got {}", frames[0]));
        assert!(!msg.is_empty());
    }
    // Unknown workloads are rejected before any cell is claimed.
    let err = mbfi_serve::submit(
        addr,
        &GridRequest {
            threads: 0,
            priority: 0,
            cells: vec![CellRequest {
                workload: "qsrot".to_string(),
                ..full_grid()[0].clone()
            }],
        },
    )
    .expect_err("unknown workload must be rejected");
    assert!(err.to_string().contains("unknown workload"), "got: {err}");

    // A client that submits and immediately vanishes: its cells keep
    // running on the detached collectors, so a second client asking for the
    // same cells follows those executions to a full, correct report.
    let cells: Vec<CellRequest> = full_grid().into_iter().take(2).collect();
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let line = mbfi_serve::Request::Submit(mbfi_serve::SubmitRequest {
            threads: 0,
            priority: 0,
            cells: cells.clone(),
        })
        .to_line();
        stream.write_all(line.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send newline");
        let mut ack = String::new();
        BufReader::new(&stream).read_line(&mut ack).expect("ack");
        assert!(ack.contains("\"ok\":true"), "got: {ack}");
        // Drop the connection mid-stream.
    }
    let survivor = mbfi_serve::submit(
        addr,
        &GridRequest {
            threads: 0,
            priority: 0,
            cells: cells.clone(),
        },
    )
    .expect("second client completes despite the first's disconnect");
    assert_eq!(
        survivor.deduped, 2,
        "cells stayed owned by the ghost client"
    );
    assert_eq!(survivor.report, in_process(&cells, 1, None));

    // Graceful shutdown: the verb acks, in-flight work drains, and then the
    // listener is gone.
    mbfi_serve::shutdown(addr).expect("shutdown verb");
    server.join();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener closed after drain"
    );
}
