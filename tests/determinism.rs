//! Reproducibility guarantees: identical seeds must give identical campaigns,
//! experiments and analyses, regardless of thread count.

use mbfi_core::pruning::LocationAnalysis;
use mbfi_core::{
    Campaign, CampaignSpec, Experiment, ExperimentSpec, FaultModel, GoldenRun, Technique, WinSize,
};
use mbfi_workloads::{workload_by_name, InputSize};

#[test]
fn experiments_with_the_same_spec_are_identical() {
    let w = workload_by_name("dijkstra").unwrap();
    let module = w.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).unwrap();
    for i in 0..10 {
        let spec = ExperimentSpec::sample(
            Technique::InjectOnRead,
            FaultModel::multi_bit(3, WinSize::Random { lo: 2, hi: 10 }),
            &golden,
            99,
            i,
            20,
        );
        let a = Experiment::run(&module, &golden, &spec);
        let b = Experiment::run(&module, &golden, &spec);
        assert_eq!(a, b, "experiment {i} is not reproducible");
    }
}

/// The core determinism contract: the same `seed` in a `CampaignSpec` gives
/// a byte-identical `CampaignResult` across two independent runs (all fields,
/// via `PartialEq`), under the in-repo SplitMix64/xoshiro256** PRNG.
#[test]
fn same_campaign_seed_gives_identical_results() {
    let w = workload_by_name("qsort").unwrap();
    let module = w.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).unwrap();
    for technique in Technique::ALL {
        let spec = CampaignSpec {
            technique,
            model: FaultModel::multi_bit(3, WinSize::Random { lo: 2, hi: 50 }),
            experiments: 60,
            seed: 0xDE7E_3713,
            hang_factor: 20,
            threads: 0,
        };
        let a = Campaign::run(&module, &golden, &spec);
        let b = Campaign::run(&module, &golden, &spec);
        assert_eq!(a, b, "{technique}: same seed must give identical campaigns");
    }
}

#[test]
fn campaigns_are_thread_count_invariant() {
    let w = workload_by_name("bfs").unwrap();
    let module = w.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).unwrap();
    let base = CampaignSpec {
        technique: Technique::InjectOnWrite,
        model: FaultModel::multi_bit(2, WinSize::Fixed(4)),
        experiments: 80,
        seed: 1234,
        hang_factor: 20,
        threads: 1,
    };
    let serial = Campaign::run(&module, &golden, &base);
    let parallel = Campaign::run(&module, &golden, &CampaignSpec { threads: 4, ..base });
    assert_eq!(serial.counts, parallel.counts);
    assert_eq!(serial.activation_histogram, parallel.activation_histogram);
    assert_eq!(
        serial.crash_activation_histogram,
        parallel.crash_activation_histogram
    );
}

#[test]
fn different_seeds_give_different_campaigns() {
    let w = workload_by_name("spmv").unwrap();
    let module = w.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).unwrap();
    let spec_a = CampaignSpec {
        technique: Technique::InjectOnRead,
        model: FaultModel::single_bit(),
        experiments: 100,
        seed: 1,
        hang_factor: 20,
        threads: 0,
    };
    let spec_b = CampaignSpec { seed: 2, ..spec_a };
    let a = Campaign::run(&module, &golden, &spec_a);
    let b = Campaign::run(&module, &golden, &spec_b);
    // With different seeds the campaigns target different locations; it would
    // be extraordinarily unlikely for every single outcome count to coincide
    // *and* the activation histograms to match exactly.
    assert!(
        a.counts != b.counts || a.activation_histogram != b.activation_histogram,
        "different seeds produced identical campaigns"
    );
}

#[test]
fn location_analysis_is_reproducible() {
    let w = workload_by_name("histo").unwrap();
    let module = w.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).unwrap();
    let run = |seed| {
        LocationAnalysis::run(
            &module,
            &golden,
            Technique::InjectOnWrite,
            FaultModel::multi_bit(3, WinSize::Fixed(1)),
            50,
            seed,
            20,
        )
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.matrix, b.matrix);
    let c = run(8);
    assert!(a.matrix != c.matrix || a.transition2() == c.transition2());
}

#[test]
fn golden_runs_are_stable_across_captures() {
    let w = workload_by_name("FFT").unwrap();
    let module = w.build_module(InputSize::Tiny);
    let a = GoldenRun::capture(&module).unwrap();
    let b = GoldenRun::capture(&module).unwrap();
    assert_eq!(a, b);
}
