//! The soundness contract of the bit-level static pruner, as a test suite:
//! for **every** registry workload, (a) injecting any (instruction,
//! register, bit) site the [`BitLevelPruner`] claims dead produces a Benign
//! run whose output bytes are identical to the golden run, and (b) a pruned
//! campaign — experiments with provable results synthesized instead of
//! executed — is byte-identical to the unpruned [`Campaign::run_compiled`]
//! result with the same spec, at every thread count.
//!
//! [`BitLevelPruner`]: mbfi::core::BitLevelPruner
//! [`Campaign::run_compiled`]: mbfi::core::Campaign::run_compiled

use mbfi::core::{BitLevelPruner, Campaign, CampaignSpec, FaultModel, GoldenRun, Technique};
use mbfi::ir::CompiledModule;
use mbfi::workloads::{all_workloads, InputSize};

/// Claimed-dead sites injected per technique per workload.
const SITES_PER_TECHNIQUE: usize = 8;
/// Experiments per pruned-vs-unpruned campaign pair.
const EXPERIMENTS: usize = 30;

#[test]
fn statically_dead_sites_run_benign_and_byte_identical_on_every_workload() {
    for w in all_workloads() {
        let module = w.build_module(InputSize::Tiny);
        let code = CompiledModule::lower(&module);
        let golden = GoldenRun::capture_compiled(&code)
            .unwrap_or_else(|e| panic!("golden run of {} failed: {e}", w.name()));
        let pruner = BitLevelPruner::analyze(&code);
        let counts = pruner.pc_execution_counts(&code, &golden);

        for technique in Technique::ALL {
            let seed = 0xDEAD ^ golden.dynamic_instrs ^ technique.is_write() as u64;
            let sites = pruner.sample_dead_sites(&counts, technique, SITES_PER_TECHNIQUE, seed);
            assert!(
                !sites.is_empty(),
                "{} {technique}: the analysis proved no dead bits on executed code",
                w.name()
            );
            for site in &sites {
                pruner
                    .check_dead_site(&code, &golden, site)
                    .unwrap_or_else(|e| panic!("{} {technique}: {e}", w.name()));
            }
        }
    }
}

#[test]
fn pruned_campaigns_are_byte_identical_to_unpruned_at_every_thread_count() {
    for w in all_workloads() {
        let module = w.build_module(InputSize::Tiny);
        let code = CompiledModule::lower(&module);
        let golden = GoldenRun::capture_compiled(&code)
            .unwrap_or_else(|e| panic!("golden run of {} failed: {e}", w.name()));
        let pruner = BitLevelPruner::analyze(&code);

        for technique in Technique::ALL {
            let base = CampaignSpec {
                technique,
                model: FaultModel::single_bit(),
                experiments: EXPERIMENTS,
                seed: 0xB17F ^ golden.dynamic_instrs,
                threads: 1,
                ..CampaignSpec::default()
            };
            let unpruned = Campaign::run_compiled(&code, &golden, &base);
            for threads in [1usize, 3] {
                let spec = CampaignSpec { threads, ..base };
                let pruned = pruner.run_campaign_pruned(&code, &golden, &spec);
                // `spec.threads` echoes the knob; every payload byte must
                // match the unpruned reference.
                let mut normalized = pruned.result.clone();
                normalized.spec.threads = base.threads;
                assert_eq!(
                    normalized,
                    unpruned,
                    "{} {technique} threads={threads}: pruned campaign diverged",
                    w.name()
                );
                // The skipped/executed bookkeeping must partition the total.
                assert_eq!(
                    pruned.skipped + pruned.executed(),
                    unpruned.total(),
                    "{} {technique}: skipped/executed split does not partition",
                    w.name()
                );
                assert_eq!(pruned.skipped, pruned.skipped_counts.total());
                assert_eq!(pruned.executed(), pruned.executed_counts.total());
            }
        }
    }
}
