//! The sweep engine's determinism contract, as a test suite: for the coarse
//! default grid over **all 15** registry workloads, whole-grid sweep results
//! are byte-identical to running each cell through the serial per-campaign
//! runner — outcome counts, SDC/detection/benign proportions, warnings and
//! per-experiment `InjectionRecord`s — and invariant across sweep thread
//! counts (1, 4, 8) and batch sizes.

use mbfi_bench::harness::{self, CampaignGrid, HarnessConfig};
use mbfi_core::{
    Campaign, CampaignResult, Experiment, ExperimentSpec, FaultModel, Outcome, Sweep,
    SweepCampaign, SweepConfig, Technique, WinSize,
};

/// Experiments per cell.  The coarse artifact grid has 62 cells per workload
/// (2 × (1 single + 6 same-register + 6 × 4 multi-register)), so this keeps
/// the suite at a few thousand experiments per grid pass.
const EXPERIMENTS: usize = 3;

fn grid_cfg(threads: usize) -> HarnessConfig {
    HarnessConfig {
        experiments: EXPERIMENTS,
        threads,
        ..HarnessConfig::default()
    }
}

/// The deduplicated cell list of the coarse artifact grid, in a canonical
/// order (mirrors `CampaignGrid::request_artifact_grid`).
fn artifact_cells(cfg: &HarnessConfig) -> Vec<(Technique, FaultModel)> {
    let mut cells = Vec::new();
    for technique in Technique::ALL {
        cells.push((technique, FaultModel::single_bit()));
        for &m in &cfg.max_mbf_values() {
            cells.push((technique, FaultModel::multi_bit(m, WinSize::Fixed(0))));
            for &win in &cfg.win_size_values() {
                cells.push((technique, FaultModel::multi_bit(m, win)));
            }
        }
    }
    cells
}

/// Collect every grid cell's result in canonical order.
fn collect(run: &harness::GridRun, cfg: &HarnessConfig) -> Vec<CampaignResult> {
    let mut out = Vec::new();
    for w in 0..run.data.len() {
        for &(technique, model) in &artifact_cells(cfg) {
            out.push(run.get(w, technique, model).clone());
        }
    }
    out
}

/// Sweep results equal serial `Campaign::run_compiled` per cell, for every
/// registry workload over the whole coarse grid — including the Wald-interval
/// proportions derived from the counts.
#[test]
fn sweep_grid_matches_serial_campaigns_for_every_workload() {
    let cfg = grid_cfg(4);
    let mut grid = CampaignGrid::new(&cfg);
    grid.request_artifact_grid();
    let run = grid.run();
    assert_eq!(run.data.len(), 15, "the default grid covers all workloads");
    assert_eq!(run.cell_count(), 15 * artifact_cells(&cfg).len());
    assert!(
        run.warnings.is_empty(),
        "default grid warns: {:?}",
        run.warnings
    );

    // The serial side re-derives its artifacts without replay stores; the
    // replay and sweep contracts compose, so results must still be identical.
    let serial_cfg = HarnessConfig {
        replay: false,
        ..cfg.clone()
    };
    let serial_data = harness::prepare(&serial_cfg);
    for (w, data) in serial_data.iter().enumerate() {
        for &(technique, model) in &artifact_cells(&cfg) {
            let serial = Campaign::run_compiled(
                &data.code,
                &data.golden,
                &cfg.campaign_spec(technique, model),
            );
            let swept = run.get(w, technique, model);
            assert_eq!(
                swept,
                &serial,
                "{} {technique} {}: sweep cell differs from the serial campaign",
                data.name,
                model.label()
            );
            // Field-level spot checks on the derived statistics the figures
            // print (equality of counts implies these, but they are the
            // acceptance surface).
            assert_eq!(swept.sdc_proportion(), serial.sdc_proportion());
            assert_eq!(
                swept.proportion(Outcome::Benign),
                serial.proportion(Outcome::Benign)
            );
            assert_eq!(swept.counts.detection_pct(), serial.counts.detection_pct());
        }
    }
}

/// The same grid at 1, 4 and 8 sweep threads produces bit-identical results
/// and warnings.
#[test]
fn sweep_grid_is_invariant_across_thread_counts() {
    let reference_cfg = grid_cfg(1);
    let reference = {
        let mut grid = CampaignGrid::new(&reference_cfg);
        grid.request_artifact_grid();
        grid.run()
    };
    let reference_cells = collect(&reference, &reference_cfg);
    for threads in [4usize, 8] {
        let cfg = grid_cfg(threads);
        let mut grid = CampaignGrid::new(&cfg);
        grid.request_artifact_grid();
        let run = grid.run();
        let cells = collect(&run, &cfg);
        assert_eq!(reference_cells.len(), cells.len());
        for (a, b) in reference_cells.iter().zip(&cells) {
            // `spec.threads` intentionally records what was asked for; all
            // result payloads must be identical.
            assert_eq!(a.counts, b.counts, "threads={threads}: counts diverged");
            assert_eq!(a.activation_histogram, b.activation_histogram);
            assert_eq!(a.crash_activation_histogram, b.crash_activation_histogram);
            assert_eq!(a.warnings, b.warnings);
        }
        assert_eq!(reference.warnings, run.warnings);
    }
}

/// Per-experiment injection records from a keep-records sweep equal serial
/// per-experiment execution, in experiment-index order, for a sample of
/// cells on real workloads.
#[test]
fn sweep_records_match_per_experiment_execution() {
    let cfg = HarnessConfig {
        experiments: 10,
        workload_filter: Some(vec!["qsort".into(), "CRC32".into()]),
        ..HarnessConfig::default()
    };
    let data = harness::prepare(&cfg);
    let units: Vec<_> = data.iter().map(|w| w.sweep_unit()).collect();
    let mut campaigns = Vec::new();
    for unit in 0..units.len() {
        for technique in Technique::ALL {
            for model in [
                FaultModel::single_bit(),
                FaultModel::multi_bit(3, WinSize::Fixed(0)),
                FaultModel::multi_bit(5, WinSize::Random { lo: 2, hi: 10 }),
            ] {
                campaigns.push(SweepCampaign {
                    unit,
                    spec: cfg.campaign_spec(technique, model),
                });
            }
        }
    }
    let report = Sweep::run(
        &units,
        &campaigns,
        &SweepConfig {
            threads: 8,
            batch_size: 3,
            keep_records: true,
            precision: None,
        },
    );
    for (cell, swept) in campaigns.iter().zip(&report.results) {
        let w = &data[cell.unit];
        assert_eq!(swept.records.len(), cfg.experiments);
        let (validated, _) = cell.spec.validate();
        for (i, spec) in ExperimentSpec::sample_campaign(&validated, &w.golden)
            .iter()
            .enumerate()
        {
            // Serial side runs without the store: replay transparency and
            // sweep determinism compose down to the injection-record level.
            let serial = Experiment::run_compiled(&w.code, &w.golden, spec, None);
            assert_eq!(
                swept.records[i],
                serial.injections,
                "{} {} {}: records of experiment {i} diverged",
                w.name,
                cell.spec.technique,
                cell.spec.model.label()
            );
        }
    }
}
