//! The adaptive-sampling determinism contract, as a test suite: for the
//! coarse default grid over **all 15** registry workloads, adaptive sweep
//! results — realized experiment counts, outcome counts, histograms,
//! warnings and the reported interval status — are byte-identical across
//! sweep thread counts (1, 4, 8) and batch sizes, every stopped cell either
//! meets the half-width target or spent its whole `max_experiments` budget,
//! and an adaptive cell equals a fixed-n campaign of exactly the realized
//! length.

use mbfi_bench::harness::{CampaignGrid, GridRun, HarnessConfig};
use mbfi_core::{Campaign, CampaignResult, CampaignSpec, FaultModel, Precision, Technique};

/// Wide target / tiny bounds so the whole 930-cell grid stays a few
/// thousand experiments per pass: extreme cells stop at the 4-experiment
/// floor, mid cells keep sampling, the hardest hit the 12-experiment cap.
const PRECISION: Precision = Precision {
    target_half_width_pct: 28.0,
    min_experiments: 4,
    max_experiments: 12,
    interval: mbfi_core::IntervalMethod::Wilson,
};

fn grid_cfg(threads: usize, sweep_batch: usize) -> HarnessConfig {
    HarnessConfig {
        threads,
        sweep_batch,
        precision: Some(PRECISION),
        ..HarnessConfig::default()
    }
}

fn run_grid(cfg: &HarnessConfig) -> GridRun {
    let mut grid = CampaignGrid::new(cfg);
    grid.request_artifact_grid();
    grid.run()
}

/// Everything that must match between two runs of the same adaptive grid
/// (`spec.threads` intentionally records the knob and is excluded).
fn assert_cells_identical(a: &CampaignResult, b: &CampaignResult, what: &str) {
    assert_eq!(a.spec.experiments, b.spec.experiments, "{what}: realized n");
    assert_eq!(a.counts, b.counts, "{what}: counts");
    assert_eq!(
        a.activation_histogram, b.activation_histogram,
        "{what}: activation histogram"
    );
    assert_eq!(
        a.crash_activation_histogram, b.crash_activation_histogram,
        "{what}: crash histogram"
    );
    assert_eq!(a.warnings, b.warnings, "{what}: warnings");
    assert_eq!(a.adaptive, b.adaptive, "{what}: adaptive status");
}

/// Adaptive sweep counts are byte-identical across thread counts and batch
/// sizes on all 15 workloads — the stop decision depends only on merged
/// round state, never on scheduling.
#[test]
fn adaptive_grid_is_invariant_across_threads_and_batch_sizes() {
    let reference = run_grid(&grid_cfg(1, 1));
    assert_eq!(reference.data.len(), 15, "the grid covers every workload");
    for (threads, sweep_batch) in [(4usize, 0usize), (8, 0), (4, 7)] {
        let other = run_grid(&grid_cfg(threads, sweep_batch));
        assert_eq!(reference.cell_count(), other.cell_count());
        for (a, b) in reference.results().iter().zip(other.results()) {
            assert_cells_identical(
                a,
                b,
                &format!(
                    "threads={threads} batch={sweep_batch} {} {}",
                    a.spec.technique,
                    a.spec.model.label()
                ),
            );
        }
        assert_eq!(reference.warnings, other.warnings);
    }
}

/// Every stopped cell's realized half-width meets the target, or the cell
/// ran its entire budget; the cell budgets genuinely adapt (some cells stop
/// at the floor, some sample past it).
#[test]
fn every_cell_meets_the_target_or_exhausts_its_budget() {
    let run = run_grid(&grid_cfg(4, 0));
    let mut at_floor = 0usize;
    let mut past_floor = 0usize;
    for r in run.results() {
        let status = r.adaptive.expect("adaptive cells carry a status");
        let n = r.total();
        assert_eq!(n, r.spec.experiments as u64);
        assert_eq!(n, status.experiments());
        assert!(
            (PRECISION.min_experiments as u64..=PRECISION.max_experiments as u64).contains(&n),
            "realized n {n} outside the precision bounds"
        );
        assert!(
            status.realized_half_width_pct() <= PRECISION.target_half_width_pct
                || n == PRECISION.max_experiments as u64,
            "{} {}: stopped at n={n} with half-width {:.2} pts",
            r.spec.technique,
            r.spec.model.label(),
            status.realized_half_width_pct()
        );
        assert_eq!(
            status.reached_target,
            status.realized_half_width_pct() <= PRECISION.target_half_width_pct
        );
        if n == PRECISION.min_experiments as u64 {
            at_floor += 1;
        } else {
            past_floor += 1;
        }
    }
    assert!(
        at_floor > 0,
        "no cell stopped at the floor — target too hard"
    );
    assert!(
        past_floor > 0,
        "no cell sampled past the floor — target too easy"
    );
}

/// An adaptive cell's counts equal a fixed-n campaign of exactly the
/// realized length: the executed experiment set is a pure index prefix,
/// with or without replay stores.
#[test]
fn adaptive_cells_equal_fixed_n_campaigns_of_realized_length() {
    let cfg = HarnessConfig {
        workload_filter: Some(vec!["qsort".into(), "CRC32".into()]),
        precision: Some(Precision {
            target_half_width_pct: 20.0,
            min_experiments: 6,
            max_experiments: 30,
            ..Precision::default()
        }),
        ..HarnessConfig::default()
    };
    let mut grid = CampaignGrid::new(&cfg);
    grid.request_single_bit();
    let run = grid.run();
    for (w, data) in run.data.iter().enumerate() {
        for technique in Technique::ALL {
            let adaptive = run.get(w, technique, FaultModel::single_bit());
            let realized = adaptive.total() as usize;
            assert!(realized >= 6);
            let fixed = Campaign::run_compiled(
                &data.code,
                &data.golden,
                &CampaignSpec {
                    technique,
                    model: FaultModel::single_bit(),
                    experiments: realized,
                    seed: cfg.seed,
                    hang_factor: cfg.hang_factor,
                    threads: 1,
                },
            );
            assert_eq!(
                adaptive.counts, fixed.counts,
                "{} {technique}: adaptive prefix diverged from fixed-n",
                data.name
            );
            assert_eq!(adaptive.activation_histogram, fixed.activation_histogram);
        }
    }
}
