//! The three pruning layers of the paper, exercised end-to-end on real
//! workloads: activation bounding (RQ1), pessimistic-configuration search
//! (RQ2-RQ4) and location sensitivity (RQ5).

use mbfi_core::pruning::{ActivationAnalysis, LocationAnalysis, PessimisticAnalysis};
use mbfi_core::{Campaign, CampaignSpec, FaultModel, GoldenRun, Technique, WinSize};
use mbfi_workloads::{workload_by_name, InputSize};

#[test]
fn activation_analysis_bounds_max_mbf_like_rq1() {
    // max-MBF = 30 campaigns activate far fewer errors than 30 because most
    // experiments crash or finish first.
    let w = workload_by_name("qsort").unwrap();
    let module = w.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).unwrap();

    let mut campaigns = Vec::new();
    for win in [WinSize::Fixed(1), WinSize::Fixed(10), WinSize::Fixed(100)] {
        campaigns.push(Campaign::run(
            &module,
            &golden,
            &CampaignSpec {
                technique: Technique::InjectOnRead,
                model: FaultModel::multi_bit(30, win),
                experiments: 60,
                seed: 21,
                hang_factor: 20,
                threads: 0,
            },
        ));
    }
    let analysis = ActivationAnalysis::from_campaigns(campaigns.iter());
    assert_eq!(analysis.total, 180);
    // The suggested bound for 95% coverage should be far below 30.
    let bound = analysis.suggested_bound(0.95);
    assert!(
        bound < 30,
        "suggested bound {bound} should prune max-MBF = 30"
    );
    let (le5, six_to_ten, gt10) = analysis.fig3_buckets();
    assert!((le5 + six_to_ten + gt10 - 1.0).abs() < 1e-9);

    let crash = ActivationAnalysis::crashes_from_campaigns(campaigns.iter());
    assert!(crash.total <= analysis.total);
}

#[test]
fn pessimistic_analysis_compares_single_and_multi_bit_models() {
    let w = workload_by_name("susan_corners").unwrap();
    let module = w.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).unwrap();

    let single = Campaign::run(
        &module,
        &golden,
        &CampaignSpec {
            technique: Technique::InjectOnWrite,
            model: FaultModel::single_bit(),
            experiments: 80,
            seed: 31,
            hang_factor: 20,
            threads: 0,
        },
    );
    let mut multi = Vec::new();
    for max_mbf in [2u32, 3, 5] {
        for win in [WinSize::Fixed(1), WinSize::Fixed(10)] {
            multi.push(Campaign::run(
                &module,
                &golden,
                &CampaignSpec {
                    technique: Technique::InjectOnWrite,
                    model: FaultModel::multi_bit(max_mbf, win),
                    experiments: 80,
                    seed: 31,
                    hang_factor: 20,
                    threads: 0,
                },
            ));
        }
    }
    let analysis = PessimisticAnalysis::default();
    let cmp = analysis.compare(&single, &multi);
    assert!(cmp.worst_multi.sdc_pct >= 0.0);
    assert!(cmp.sufficient_max_mbf >= 2 && cmp.sufficient_max_mbf <= 5);
    // The winner reported by table3_entry must agree with compare().
    let entry = analysis.table3_entry(&multi);
    assert_eq!(entry.model, cmp.worst_multi.model);
    assert!((entry.sdc_pct - cmp.worst_multi.sdc_pct).abs() < 1e-12);
}

#[test]
fn location_analysis_finds_prunable_locations_like_rq5() {
    let w = workload_by_name("dijkstra").unwrap();
    let module = w.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).unwrap();

    let analysis = LocationAnalysis::run(
        &module,
        &golden,
        Technique::InjectOnRead,
        FaultModel::multi_bit(2, WinSize::Fixed(4)),
        150,
        41,
        20,
    );
    assert_eq!(analysis.matrix.total(), 150);
    // Transition probabilities are proper probabilities.
    assert!(analysis.transition1() >= 0.0 && analysis.transition1() <= 1.0);
    assert!(analysis.transition2() >= 0.0 && analysis.transition2() <= 1.0);
    // A pointer-heavy workload such as dijkstra has a substantial fraction of
    // prunable locations (single-bit detections and SDCs), per Fig. 1.
    assert!(
        analysis.prunable_fraction() > 0.05,
        "prunable fraction unexpectedly small: {}",
        analysis.prunable_fraction()
    );
}

#[test]
fn transition1_is_rarer_than_transition2_in_aggregate() {
    // The paper's headline RQ5 finding: Detection -> SDC transitions are much
    // rarer than Benign -> SDC transitions.  Verify the aggregate trend over a
    // few workloads (individual workloads may deviate with small samples).
    let mut t1_sum = 0.0;
    let mut t2_sum = 0.0;
    for name in ["qsort", "histo", "stringsearch"] {
        let w = workload_by_name(name).unwrap();
        let module = w.build_module(InputSize::Tiny);
        let golden = GoldenRun::capture(&module).unwrap();
        let analysis = LocationAnalysis::run(
            &module,
            &golden,
            Technique::InjectOnWrite,
            FaultModel::multi_bit(3, WinSize::Fixed(1)),
            120,
            59,
            20,
        );
        t1_sum += analysis.transition1();
        t2_sum += analysis.transition2();
    }
    assert!(
        t1_sum <= t2_sum + 0.15,
        "Transition I ({t1_sum:.3}) should not dominate Transition II ({t2_sum:.3})"
    );
}
