//! Exhaustive property checks for the bit-level transfer functions.
//!
//! For every [`BinOp`] and [`CastOp`], across randomized operands and live
//! masks: flipping any operand bit the transfer function calls *dead* (i.e.
//! outside the returned demand mask) must never change the operator's
//! concrete result within the live destination bits, and must never change
//! whether the operator traps.  This is the per-operator core of the pruner's
//! soundness contract (dead ⇒ byte-identical outcome); the evaluation oracle
//! is the real interpreter semantics in `mbfi_vm::ops`.

use mbfi::ir::bitflow::{binop_demands, cast_demand, cast_result_mask};
use mbfi::ir::{BinOp, CastOp, Type};
use mbfi::vm::ops::{eval_binary, eval_cast};
use mbfi::vm::Value;

/// Deterministic SplitMix64 for seeding the randomized operand sets.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Edge-case payloads plus seeded random ones.
fn payloads(seed: u64, random: usize) -> Vec<u64> {
    let mut v = vec![0, 1, u64::MAX, 1u64 << 63, 0x5555_5555_5555_5555];
    let mut rng = SplitMix64(seed);
    v.extend((0..random).map(|_| rng.next()));
    v
}

/// A spread of live-destination masks for one instruction type.
fn live_masks(ty: Type, seed: u64) -> Vec<u64> {
    let m = ty.bit_mask();
    let mut rng = SplitMix64(seed);
    let r1 = rng.next();
    let r2 = rng.next();
    let single = 1u64 << (rng.next() % 64);
    vec![0, 1, m, r1 & m, r2, single]
}

const INT_TYPES: [Type; 6] = [
    Type::I1,
    Type::I8,
    Type::I16,
    Type::I32,
    Type::I64,
    Type::Ptr,
];

/// Assert that flipping `bit` of the chosen operand leaves trap behaviour
/// and the live result bits unchanged.
#[allow(clippy::too_many_arguments)]
fn assert_binop_flip_dead(
    op: BinOp,
    ty: Type,
    a: Value,
    b: Value,
    live: u64,
    flip_lhs: bool,
    bit: u32,
) {
    let (a2, b2) = if flip_lhs {
        (Value::new(a.ty, a.bits ^ (1u64 << bit)), b)
    } else {
        (a, Value::new(b.ty, b.bits ^ (1u64 << bit)))
    };
    let base = eval_binary(op, ty, a, b);
    let alt = eval_binary(op, ty, a2, b2);
    let side = if flip_lhs { "lhs" } else { "rhs" };
    match (base, alt) {
        (Ok(x), Ok(y)) => assert_eq!(
            x.bits & live,
            y.bits & live,
            "{op:?} {ty:?}: dead {side} bit {bit} changed live result \
             (a={:#x} b={:#x} live={live:#x})",
            a.bits,
            b.bits,
        ),
        (Err(x), Err(y)) => assert_eq!(
            x, y,
            "{op:?} {ty:?}: dead {side} bit {bit} changed the trap kind"
        ),
        (base, alt) => panic!(
            "{op:?} {ty:?}: dead {side} bit {bit} changed trap behaviour \
             (a={:#x} b={:#x}: {base:?} vs {alt:?})",
            a.bits, b.bits,
        ),
    }
}

#[test]
fn binop_demands_are_sound_for_variable_operands() {
    let values = payloads(0xB17F_0001, 7);
    for op in BinOp::ALL {
        if op.is_float() {
            // Float demand is fully live (all 64 payload bits reach
            // `as_f64`): there are no dead bits to check.
            let (la, lb) = binop_demands(op, Type::F64, None, None, 1);
            assert_eq!((la, lb), (u64::MAX, u64::MAX));
            continue;
        }
        for ty in INT_TYPES {
            for (i, &ab) in values.iter().enumerate() {
                let bb = values[(i * 7 + 3) % values.len()];
                let (a, b) = (Value::new(Type::I64, ab), Value::new(Type::I64, bb));
                for live in live_masks(ty, 0xD1CE + i as u64) {
                    let (la, lb) = binop_demands(op, ty, None, None, live);
                    for bit in 0..64u32 {
                        if la & (1u64 << bit) == 0 {
                            assert_binop_flip_dead(op, ty, a, b, live, true, bit);
                        }
                        if lb & (1u64 << bit) == 0 {
                            assert_binop_flip_dead(op, ty, a, b, live, false, bit);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn binop_demands_are_sound_with_a_constant_operand() {
    let values = payloads(0xB17F_0002, 5);
    for op in BinOp::ALL {
        if op.is_float() {
            continue;
        }
        for ty in INT_TYPES {
            let m = ty.bit_mask();
            for (i, &ab) in values.iter().enumerate() {
                let c = values[(i * 5 + 2) % values.len()] & m;
                let a = Value::new(Type::I64, ab);
                let cv = Value::new(Type::I64, c);
                for live in live_masks(ty, 0xC0DE + i as u64) {
                    // Constant on the right: only the variable lhs is an
                    // injectable operand, so only its dead bits are checked.
                    let (la, _) = binop_demands(op, ty, None, Some(c), live);
                    for bit in 0..64u32 {
                        if la & (1u64 << bit) == 0 {
                            assert_binop_flip_dead(op, ty, a, cv, live, true, bit);
                        }
                    }
                    // Constant on the left (matters for and/or refinement).
                    let (_, lb) = binop_demands(op, ty, Some(c), None, live);
                    for bit in 0..64u32 {
                        if lb & (1u64 << bit) == 0 {
                            assert_binop_flip_dead(op, ty, cv, a, live, false, bit);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn cast_demands_are_sound_for_every_operator_and_type_pair() {
    let values = payloads(0xB17F_0003, 7);
    for op in CastOp::ALL {
        for from_ty in Type::ALL {
            for to_ty in Type::ALL {
                let result_mask = cast_result_mask(op, to_ty);
                for (i, &vb) in values.iter().enumerate() {
                    let v = Value::new(Type::I64, vb);
                    for live in live_masks(to_ty, 0xCA57 + i as u64) {
                        let demand = cast_demand(op, from_ty, to_ty, live);
                        let base = eval_cast(op, from_ty, to_ty, v);
                        let observe = live & result_mask;
                        for bit in 0..64u32 {
                            if demand & (1u64 << bit) != 0 {
                                continue;
                            }
                            let v2 = Value::new(Type::I64, vb ^ (1u64 << bit));
                            let alt = eval_cast(op, from_ty, to_ty, v2);
                            assert_eq!(
                                base.bits & observe,
                                alt.bits & observe,
                                "{op:?} {from_ty:?}->{to_ty:?}: dead bit {bit} changed \
                                 live result (v={vb:#x} live={live:#x})"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn fully_live_destinations_demand_every_result_influencing_bit() {
    // Sanity inversion: with every destination bit live, flipping a bit the
    // transfer function *does* demand must be able to change the result for
    // at least one operand pair (no operator is accidentally all-dead).
    for op in [BinOp::Add, BinOp::And, BinOp::Xor, BinOp::Shl] {
        for ty in [Type::I8, Type::I32, Type::I64] {
            let m = ty.bit_mask();
            let (la, lb) = binop_demands(op, ty, None, None, m);
            assert_ne!(la, 0, "{op:?} {ty:?}: lhs demand collapsed to zero");
            if !matches!(op, BinOp::Shl) {
                assert_ne!(lb, 0, "{op:?} {ty:?}: rhs demand collapsed to zero");
            }
        }
    }
    for op in [CastOp::Trunc, CastOp::ZExt, CastOp::SExt, CastOp::Bitcast] {
        let d = cast_demand(op, Type::I32, Type::I64, u64::MAX);
        assert_ne!(d, 0, "{op:?}: source demand collapsed to zero");
    }
}
