//! The determinism contract of the snapshot & replay engine, as a test
//! suite: for **every** registry workload, campaigns executed through a
//! checkpoint store — at several checkpoint intervals K — are byte-identical
//! to full re-execution (same outcome counts, same histograms, and the same
//! per-experiment results field for field).

use mbfi_core::replay::{last_quartile_target, CheckpointConfig, CheckpointStore};
use mbfi_core::{
    Campaign, CampaignSpec, Experiment, ExperimentSpec, FaultModel, GoldenRun, Technique, WinSize,
};
use mbfi_workloads::{all_workloads, InputSize};

/// The checkpoint intervals the suite sweeps.  K = 1 snapshots at every
/// instruction boundary, so it also exercises the memory-budget truncation on
/// longer workloads; K = 64 leaves long tails to replay.
const INTERVALS: [u64; 3] = [1, 7, 64];

/// Per-store memory budget, deliberately small enough that K = 1 captures of
/// the longer workloads truncate.
const BUDGET_BYTES: usize = 8 << 20;

#[test]
fn replay_campaigns_are_byte_identical_for_every_workload() {
    for w in all_workloads() {
        let module = w.build_module(InputSize::Tiny);
        let golden = GoldenRun::capture(&module)
            .unwrap_or_else(|e| panic!("golden run of {} failed: {e}", w.name()));
        let spec = CampaignSpec {
            technique: Technique::InjectOnRead,
            model: FaultModel::multi_bit(2, WinSize::Fixed(8)),
            experiments: 6,
            seed: 0xE90 ^ golden.dynamic_instrs,
            hang_factor: 8,
            threads: 2,
        };
        let full = Campaign::run(&module, &golden, &spec);
        for k in INTERVALS {
            let store = CheckpointStore::capture(
                &module,
                &golden,
                CheckpointConfig {
                    interval: k,
                    max_bytes: BUDGET_BYTES,
                },
            )
            .unwrap_or_else(|e| panic!("capture of {} (K={k}) failed: {e}", w.name()));
            let replayed = Campaign::run_with_store(&module, &golden, &spec, Some(&store));
            assert_eq!(
                full,
                replayed,
                "{} K={k}: replayed campaign differs from full execution",
                w.name()
            );
        }
    }
}

#[test]
fn replay_experiments_are_byte_identical_for_every_workload() {
    for w in all_workloads() {
        let module = w.build_module(InputSize::Tiny);
        let golden = GoldenRun::capture(&module)
            .unwrap_or_else(|e| panic!("golden run of {} failed: {e}", w.name()));
        for k in INTERVALS {
            let store = CheckpointStore::capture(
                &module,
                &golden,
                CheckpointConfig {
                    interval: k,
                    max_bytes: BUDGET_BYTES,
                },
            )
            .unwrap_or_else(|e| panic!("capture of {} (K={k}) failed: {e}", w.name()));
            for (i, technique) in [Technique::InjectOnRead, Technique::InjectOnWrite]
                .into_iter()
                .enumerate()
            {
                let spec = ExperimentSpec::sample(
                    technique,
                    FaultModel::multi_bit(3, WinSize::Random { lo: 1, hi: 32 }),
                    &golden,
                    0x1DE7 + k,
                    i as u64,
                    8,
                );
                let full = Experiment::run(&module, &golden, &spec);
                let replayed = Experiment::run_with_store(&module, &golden, &spec, Some(&store));
                assert_eq!(
                    full,
                    replayed,
                    "{} K={k} {technique}: per-experiment result differs under replay \
                     (spec: {spec:?})",
                    w.name()
                );
            }
        }
    }
}

/// Injections forced deep into the run — the case the replay engine exists
/// for — restore the deepest checkpoints and must still match exactly.
#[test]
fn late_injections_replay_identically() {
    for name in ["qsort", "CRC32", "histo"] {
        let w = mbfi_workloads::workload_by_name(name).unwrap();
        let module = w.build_module(InputSize::Tiny);
        let golden = GoldenRun::capture(&module).unwrap();
        let store = CheckpointStore::capture(
            &module,
            &golden,
            CheckpointConfig {
                interval: (golden.dynamic_instrs / 64).max(1),
                max_bytes: BUDGET_BYTES,
            },
        )
        .unwrap();
        for technique in Technique::ALL {
            let candidates = golden.candidates(technique);
            for i in 0..8u64 {
                let mut spec = ExperimentSpec::sample(
                    technique,
                    FaultModel::multi_bit(4, WinSize::Fixed(0)),
                    &golden,
                    0x1A7E,
                    i,
                    8,
                );
                spec.first_target = last_quartile_target(candidates, spec.first_target);
                let full = Experiment::run(&module, &golden, &spec);
                let replayed = Experiment::run_with_store(&module, &golden, &spec, Some(&store));
                assert_eq!(full, replayed, "{name} {technique} late injection {i}");
            }
        }
    }
}
