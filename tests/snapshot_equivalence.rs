//! The copy-on-write determinism contract, as a test suite: for **every**
//! registry workload, campaign results are byte-identical across the full
//! grid of replay {off, on} × CoW {on, off} × worker threads {1, 4, 8}.
//! CoW forking and O(dirty-chunk) restores are pure execution-cost
//! optimisations — no sampled target, injected value, outcome, or histogram
//! may move, and the per-experiment results must match field for field.
//!
//! Kept as one `#[test]` on purpose: the CoW switch is process-global
//! (`set_cow_enabled`), so the grid must not run concurrently with itself.
//! The suite lives in its own integration-test binary, which is its own
//! process, so toggling here cannot race the rest of the workspace tests.

use mbfi_core::replay::{CheckpointConfig, CheckpointStore};
use mbfi_core::{Campaign, CampaignSpec, FaultModel, GoldenRun, Technique, WinSize};
use mbfi_ir::CompiledModule;
use mbfi_vm::set_cow_enabled;
use mbfi_workloads::{all_workloads, InputSize};

const THREADS: [usize; 3] = [1, 4, 8];

#[test]
fn cow_campaigns_are_byte_identical_across_replay_cow_and_threads() {
    for w in all_workloads() {
        let module = w.build_module(InputSize::Tiny);
        let code = CompiledModule::lower(&module);
        let golden = GoldenRun::capture_compiled(&code)
            .unwrap_or_else(|e| panic!("golden run of {} failed: {e}", w.name()));
        let store = CheckpointStore::capture_compiled(
            &code,
            &golden,
            CheckpointConfig::with_interval((golden.dynamic_instrs / 16).max(1)),
        )
        .unwrap_or_else(|e| panic!("capture of {} failed: {e}", w.name()));
        let mut spec = CampaignSpec {
            technique: Technique::InjectOnRead,
            model: FaultModel::multi_bit(2, WinSize::Fixed(8)),
            experiments: 6,
            seed: 0x5EC0 ^ golden.dynamic_instrs,
            hang_factor: 8,
            threads: 1,
        };

        // Baseline: deep-copy restores, no checkpoint store, single worker.
        set_cow_enabled(false);
        let baseline = Campaign::run_compiled(&code, &golden, &spec);

        for replay in [false, true] {
            for cow in [false, true] {
                for threads in THREADS {
                    spec.threads = threads;
                    set_cow_enabled(cow);
                    let mut got = if replay {
                        Campaign::run_compiled_with_store(&code, &golden, &spec, Some(&store))
                    } else {
                        Campaign::run_compiled(&code, &golden, &spec)
                    };
                    // The result echoes its spec; the thread count is the one
                    // knob the grid legitimately varies.
                    got.spec.threads = baseline.spec.threads;
                    assert_eq!(
                        baseline,
                        got,
                        "{}: campaign diverged at replay={replay} cow={cow} threads={threads}",
                        w.name()
                    );
                }
            }
        }
    }
    // Leave the process-global switch at its default for anything that runs
    // after this test in the same binary.
    set_cow_enabled(true);
}
