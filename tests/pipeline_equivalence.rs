//! The behaviour-transparency contract of the compiled execution pipeline,
//! as a test suite: for **every** registry workload, the flat-bytecode
//! interpreter (`mbfi_vm::Vm` on a `CompiledModule`) and the legacy tree
//! walker (`mbfi_vm::WalkerVm` on the `Module`) produce identical results —
//! golden runs (output, instruction count, execution profile) and seeded
//! single-/multi-bit fault-injection experiments (outcome, activation count,
//! dynamic-instruction count and every `InjectionRecord`, field for field).

use mbfi::core::{
    Campaign, CampaignSpec, Experiment, ExperimentSpec, FaultModel, GoldenRun, Technique, WinSize,
};
use mbfi::ir::CompiledModule;
use mbfi::vm::{CountingHook, Limits, Vm, WalkerVm};
use mbfi::workloads::{all_workloads, InputSize};
use mbfi_core::outcome::OutcomeCounts;

/// Fault models the differential campaigns sweep: the single bit-flip
/// baseline, a same-register multi-bit burst, and a windowed multi-bit model
/// with a randomised window.
fn models() -> Vec<FaultModel> {
    vec![
        FaultModel::single_bit(),
        FaultModel::multi_bit(4, WinSize::Fixed(0)),
        FaultModel::multi_bit(3, WinSize::Random { lo: 1, hi: 32 }),
    ]
}

const EXPERIMENTS_PER_CAMPAIGN: u64 = 4;
const HANG_FACTOR: u64 = 8;

#[test]
fn golden_runs_are_identical_on_both_pipelines() {
    for w in all_workloads() {
        let module = w.build_module(InputSize::Tiny);
        let code = CompiledModule::lower(&module);

        let mut walker_hook = CountingHook::new();
        let walked = WalkerVm::new(&module, Limits::default()).run(&mut walker_hook);
        let mut compiled_hook = CountingHook::new();
        let compiled = Vm::new(&code, Limits::default()).run(&mut compiled_hook);

        assert_eq!(
            walked,
            compiled,
            "{}: golden run differs between walker and compiled paths",
            w.name()
        );
        assert_eq!(
            walker_hook.profile(),
            compiled_hook.profile(),
            "{}: execution profile differs between walker and compiled paths",
            w.name()
        );
        // The GoldenRun the campaigns consume is the compiled one.
        let golden = GoldenRun::capture_compiled(&code)
            .unwrap_or_else(|e| panic!("golden run of {} failed: {e}", w.name()));
        assert_eq!(golden.output, walked.output);
        assert_eq!(golden.dynamic_instrs, walked.dynamic_instrs);
    }
}

#[test]
fn seeded_campaign_experiments_are_identical_on_both_pipelines() {
    for w in all_workloads() {
        let module = w.build_module(InputSize::Tiny);
        let code = CompiledModule::lower(&module);
        let golden = GoldenRun::capture_compiled(&code)
            .unwrap_or_else(|e| panic!("golden run of {} failed: {e}", w.name()));

        for technique in Technique::ALL {
            for model in models() {
                let seed = 0xD1FF ^ golden.dynamic_instrs ^ model.max_mbf as u64;
                for i in 0..EXPERIMENTS_PER_CAMPAIGN {
                    let spec =
                        ExperimentSpec::sample(technique, model, &golden, seed, i, HANG_FACTOR);
                    let legacy = Experiment::run_legacy(&module, &golden, &spec);
                    let compiled = Experiment::run_compiled(&code, &golden, &spec, None);
                    // Full field-for-field equality: outcome, activation
                    // count, dynamic instructions and every InjectionRecord
                    // (ordinal, dyn_index, register, bit, operand index,
                    // before/after bits).
                    assert_eq!(
                        legacy,
                        compiled,
                        "{} {technique} {} experiment {i}: legacy and compiled results differ",
                        w.name(),
                        model.label()
                    );
                }
            }
        }
    }
}

/// The threaded `Campaign` runner (compiled path) aggregates to exactly the
/// outcome counts obtained by running the same seeded specs one by one on
/// the legacy walker.
#[test]
fn campaign_aggregates_match_legacy_per_experiment_outcomes() {
    for w in all_workloads() {
        let module = w.build_module(InputSize::Tiny);
        let code = CompiledModule::lower(&module);
        let golden = GoldenRun::capture_compiled(&code)
            .unwrap_or_else(|e| panic!("golden run of {} failed: {e}", w.name()));

        let spec = CampaignSpec {
            technique: Technique::InjectOnWrite,
            model: FaultModel::multi_bit(2, WinSize::Fixed(8)),
            experiments: EXPERIMENTS_PER_CAMPAIGN as usize,
            seed: 0xCA4A ^ golden.dynamic_instrs,
            hang_factor: HANG_FACTOR,
            threads: 2,
        };
        let campaign = Campaign::run_compiled(&code, &golden, &spec);

        let mut legacy_counts = OutcomeCounts::default();
        for i in 0..EXPERIMENTS_PER_CAMPAIGN {
            let exp_spec = ExperimentSpec::sample(
                spec.technique,
                spec.model,
                &golden,
                spec.seed,
                i,
                spec.hang_factor,
            );
            let r = Experiment::run_legacy(&module, &golden, &exp_spec);
            legacy_counts.record(r.outcome);
        }
        assert_eq!(
            campaign.counts,
            legacy_counts,
            "{}: compiled campaign counts differ from legacy per-experiment outcomes",
            w.name()
        );
    }
}
