//! The telemetry plane's observer contract, as a test suite: attaching a
//! [`TelemetryHub`] at any level to a sweep, a campaign or a pruned campaign
//! must leave every result byte-identical to the untelemetered run across
//! sweep thread counts (1, 4, 8); the hub's snapshot totals must exactly
//! equal the authoritative `SweepReport`; and the drained JSONL event stream
//! must replay through [`MonitorState`] — the `mbfi-monitor` pipeline — into
//! a verified, complete picture with the same per-cell tallies.

use mbfi_bench::harness::{self, HarnessConfig, WorkloadData};
use mbfi_core::{
    BitLevelPruner, Campaign, FaultModel, Metric, MonitorState, Precision, Sweep, SweepCampaign,
    SweepConfig, SweepReport, SweepUnit, Technique, TelemetryHub, TelemetryLevel, WinSize,
};

const EXPERIMENTS: usize = 8;

fn fixture() -> Vec<WorkloadData> {
    let cfg = HarnessConfig {
        experiments: EXPERIMENTS,
        workload_filter: Some(vec!["qsort".into(), "CRC32".into()]),
        ..HarnessConfig::default()
    };
    harness::prepare(&cfg)
}

/// Both techniques, a single-bit and a windowed multi-bit model per
/// workload — enough cells to exercise batching, stealing and the stream.
fn cells(units: usize) -> Vec<SweepCampaign> {
    let cfg = HarnessConfig {
        experiments: EXPERIMENTS,
        ..HarnessConfig::default()
    };
    let mut out = Vec::new();
    for unit in 0..units {
        for technique in Technique::ALL {
            for model in [
                FaultModel::single_bit(),
                FaultModel::multi_bit(3, WinSize::Fixed(100)),
            ] {
                out.push(SweepCampaign {
                    unit,
                    spec: cfg.campaign_spec(technique, model),
                });
            }
        }
    }
    out
}

fn config(threads: usize, precision: Option<Precision>) -> SweepConfig {
    SweepConfig {
        threads,
        batch_size: 3,
        keep_records: false,
        precision,
    }
}

fn report_total(report: &SweepReport) -> u64 {
    report.results.iter().map(|r| r.result.total()).sum()
}

/// Telemetry at every level is invisible in the results: fixed-n and
/// adaptive sweeps return byte-identical reports with and without a hub, at
/// 1, 4 and 8 worker threads.
#[test]
fn telemetered_sweep_is_byte_identical_across_levels_and_threads() {
    let data = fixture();
    let units: Vec<SweepUnit<'_>> = data.iter().map(WorkloadData::sweep_unit).collect();
    let cells = cells(units.len());
    let precision = Precision {
        target_half_width_pct: 25.0,
        min_experiments: 4,
        max_experiments: 12,
        interval: mbfi_core::IntervalMethod::Wilson,
    };
    for precision in [None, Some(precision)] {
        for threads in [1usize, 4, 8] {
            let config = config(threads, precision);
            let base = Sweep::run(&units, &cells, &config);
            for level in [TelemetryLevel::Counters, TelemetryLevel::Full] {
                let hub = TelemetryHub::new(level);
                let report = Sweep::run_with(&units, &cells, &config, &hub);
                assert_eq!(
                    report,
                    base,
                    "telemetry={} threads={threads} adaptive={}: report diverged",
                    level.label(),
                    precision.is_some()
                );
            }
        }
    }
}

/// The hub's snapshot agrees with the authoritative report: the experiment
/// counter, per-cell tallies, finished flags, worker accounting and — at
/// Full — the latency histogram all reconcile.
#[test]
fn hub_snapshot_totals_equal_sweep_report() {
    let data = fixture();
    let units: Vec<SweepUnit<'_>> = data.iter().map(WorkloadData::sweep_unit).collect();
    let cells = cells(units.len());
    let config = config(4, None);
    for level in [TelemetryLevel::Counters, TelemetryLevel::Full] {
        let hub = TelemetryHub::new(level);
        let report = Sweep::run_with(&units, &cells, &config, &hub);
        let snapshot = hub.snapshot();
        let total = report_total(&report);
        assert_eq!(snapshot.counter(Metric::ExperimentsRun), total);
        assert_eq!(snapshot.counter(Metric::CellsFinished), cells.len() as u64);
        assert!(snapshot.counter(Metric::BatchesRun) > 0);
        assert_eq!(snapshot.cells.len(), cells.len());
        for (cell, r) in snapshot.cells.iter().zip(&report.results) {
            assert_eq!(cell.done, r.result.total());
            assert_eq!(cell.counts, r.result.counts);
            assert!(cell.finished);
        }
        assert_eq!(snapshot.threads, config.threads);
        let worker_total: u64 = snapshot.workers.iter().map(|w| w.experiments).sum();
        assert_eq!(worker_total, total, "per-worker tallies cover every run");
        // Experiment latency is a Full-level cost; Counters must not pay it.
        match level {
            TelemetryLevel::Full => assert_eq!(snapshot.latency.count, total),
            _ => assert_eq!(snapshot.latency.count, 0),
        }
        // The merged fault-free profile is republished from the sweep units.
        assert!(snapshot.profile.dynamic_instrs > 0);
    }
}

/// The JSONL stream drained from a Full-level hub replays through
/// [`MonitorState`] — exactly what `mbfi-monitor --headless` does — into a
/// gap-free, verified state whose per-cell totals equal the `SweepReport`.
#[test]
fn drained_stream_replays_into_clean_monitor_state() {
    let data = fixture();
    let units: Vec<SweepUnit<'_>> = data.iter().map(WorkloadData::sweep_unit).collect();
    let cells = cells(units.len());
    let config = config(8, None);
    let hub = TelemetryHub::new(TelemetryLevel::Full);
    let report = Sweep::run_with(&units, &cells, &config, &hub);
    let jsonl = hub.drain_jsonl();
    assert!(jsonl.ends_with('\n'), "stream is one event per line");

    let mut state = MonitorState::new();
    for line in jsonl.lines() {
        state
            .apply_line(line)
            .unwrap_or_else(|e| panic!("stream line failed to decode: {e}\n{line}"));
    }
    let problems = state.verify();
    assert!(problems.is_empty(), "monitor verify failed: {problems:?}");
    assert!(state.finished, "stream must end in sweep_finished");
    assert_eq!(state.threads, config.threads);
    assert_eq!(state.reported_total, Some(report_total(&report)));
    let (total, counts) = state.totals();
    assert_eq!(total, report_total(&report));
    assert_eq!(state.cells.len(), report.results.len());
    for (cell, r) in state.cells.iter().zip(&report.results) {
        assert_eq!(cell.done, r.result.total());
        assert_eq!(cell.counts, r.result.counts);
        assert_eq!(cell.reported, Some((r.result.total(), r.result.counts)));
        assert!(cell.finished);
    }
    let merged_sdc: u64 = report
        .results
        .iter()
        .map(|r| r.result.counts.get(mbfi_core::Outcome::Sdc))
        .sum();
    assert_eq!(counts.get(mbfi_core::Outcome::Sdc), merged_sdc);

    // The renderers consume the same state without panicking and agree on
    // the headline numbers.
    let headless = mbfi_bench::render_headless(&state);
    assert!(headless.starts_with("done |"));
    assert!(headless.contains(&format!("{total} experiments")));
}

/// The single-campaign and pruned-campaign telemetry entry points are
/// observers too: identical results, and the pruning metrics account for
/// every experiment.
#[test]
fn campaign_and_pruning_telemetry_observe_without_perturbing() {
    let data = fixture();
    let w = &data[0];
    let cfg = HarnessConfig {
        experiments: EXPERIMENTS,
        ..HarnessConfig::default()
    };
    let spec = cfg.campaign_spec(Technique::InjectOnRead, FaultModel::single_bit());

    let base = Campaign::run_compiled(&w.code, &w.golden, &spec);
    let hub = TelemetryHub::new(TelemetryLevel::Full);
    let observed = Campaign::run_compiled_telemetry(&w.code, &w.golden, &spec, None, &hub);
    assert_eq!(observed, base, "campaign telemetry perturbed the result");
    assert_eq!(
        hub.snapshot().counter(Metric::ExperimentsRun),
        base.counts.total()
    );

    let pruner = BitLevelPruner::analyze(&w.code);
    let plain = pruner.run_campaign_pruned(&w.code, &w.golden, &spec);
    let hub = TelemetryHub::new(TelemetryLevel::Counters);
    let pruned = pruner.run_campaign_pruned_with(&w.code, &w.golden, &spec, &hub);
    assert_eq!(pruned.result, plain.result);
    assert_eq!(pruned.skipped, plain.skipped);
    let snapshot = hub.snapshot();
    assert_eq!(
        snapshot.counter(Metric::PruneSkippedExperiments),
        pruned.skipped
    );
    assert_eq!(
        snapshot.counter(Metric::PruneSkippedExperiments)
            + snapshot.counter(Metric::PruneExecutedExperiments),
        pruned.result.counts.total(),
        "pruning metrics must account for every experiment"
    );
}
