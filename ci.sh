#!/usr/bin/env bash
# Tier-1 verification plus lint, in one command, fully offline.
#
#   ./ci.sh          # build + test + clippy
#   ./ci.sh bench    # additionally run the three bench harnesses (fast knobs)
#
# The workspace has zero external dependencies by design (see README.md), so
# everything runs with --offline; if any step needs the network, that is a
# regression.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo clippy --all-targets --offline -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

# Telemetry smoke: a tiny full-telemetry grid run writes a JSONL event
# stream, and `mbfi-monitor --headless` replays it — its verify() step
# exits non-zero unless the accumulated per-cell totals exactly equal the
# authoritative cell_finished / sweep_finished tallies (i.e. the monitor
# agrees with the SweepReport).
echo "==> telemetry smoke: fig1 (MBFI_TELEMETRY=full) | mbfi-monitor --headless"
TELEM_DIR="$(mktemp -d)"
trap 'rm -rf "$TELEM_DIR"' EXIT
MBFI_TELEMETRY=full MBFI_TELEMETRY_OUT="$TELEM_DIR/events.jsonl" \
    MBFI_EXPERIMENTS=10 MBFI_WORKLOADS=qsort cargo run --release --offline -q \
    -p mbfi-bench --bin fig1 -- --out-dir "$TELEM_DIR"
cargo run --release --offline -q -p mbfi-bench --bin mbfi-monitor -- \
    --headless "$TELEM_DIR/events.jsonl" | tee "$TELEM_DIR/monitor.txt"
grep -q "verify: ok" "$TELEM_DIR/monitor.txt"
grep -q "20 experiments" "$TELEM_DIR/monitor.txt"

# Campaign-service smoke: start the daemon on an ephemeral port, submit a
# tiny grid with --compare (exits non-zero unless the served report is
# byte-identical to the in-process Sweep::run of the same cells), then the
# shutdown verb must drain in-flight work and let the daemon exit cleanly.
echo "==> serve smoke: mbfi-serve daemon / submit --compare / shutdown"
SERVE_DIR="$(mktemp -d)"
trap 'rm -rf "$TELEM_DIR" "$SERVE_DIR"' EXIT
MBFI_SERVE_PORT=0 cargo run --release --offline -q -p mbfi-serve \
    --bin mbfi-serve -- daemon --addr-file "$SERVE_DIR/addr" \
    > "$SERVE_DIR/daemon.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 100); do [[ -s "$SERVE_DIR/addr" ]] && break; sleep 0.1; done
[[ -s "$SERVE_DIR/addr" ]] || { echo "daemon never wrote its address"; exit 1; }
SERVE_ADDR="$(cat "$SERVE_DIR/addr")"
MBFI_EXPERIMENTS=10 cargo run --release --offline -q -p mbfi-serve \
    --bin mbfi-serve -- submit --connect "$SERVE_ADDR" \
    --workloads qsort,CRC32 --experiments 10 --compare --quiet \
    | tee "$SERVE_DIR/submit.txt"
grep -q "byte-identical" "$SERVE_DIR/submit.txt"
cargo run --release --offline -q -p mbfi-serve \
    --bin mbfi-serve -- shutdown --connect "$SERVE_ADDR"
wait "$SERVE_PID"
grep -q "drained and stopped" "$SERVE_DIR/daemon.log"

if [[ "${1:-}" == "bench" ]]; then
    # Smoke-run the plain-Rust bench harnesses; each writes BENCH_<suite>.json.
    export MBFI_BENCH_SAMPLES="${MBFI_BENCH_SAMPLES:-3}"
    export MBFI_BENCH_ITERS="${MBFI_BENCH_ITERS:-1}"
    export MBFI_BENCH_OUT="${MBFI_BENCH_OUT:-.}"
    for suite in campaigns injector workloads; do
        echo "==> cargo bench -p mbfi-bench --bench $suite"
        cargo bench --offline -p mbfi-bench --bench "$suite"
    done

    # Snapshot & replay engine: first the self-verifying mode (exits non-zero
    # if any replayed experiment differs from full re-execution), then a tiny
    # timing run that writes BENCH_replay.json.
    echo "==> cargo run --release -p mbfi-bench --bin replay_bench -- --check"
    MBFI_EXPERIMENTS=8 cargo run --release --offline -q -p mbfi-bench \
        --bin replay_bench -- --check --out-dir "$MBFI_BENCH_OUT"
    echo "==> cargo run --release -p mbfi-bench --bin replay_bench"
    MBFI_EXPERIMENTS=16 MBFI_BENCH_SAMPLES=3 cargo run --release --offline -q \
        -p mbfi-bench --bin replay_bench -- --out-dir "$MBFI_BENCH_OUT"

    # Compiled pipeline vs legacy walker: golden-run MIPS and campaign
    # experiments/sec on both paths, written to BENCH_exec.json (the run also
    # cross-checks that both paths produce identical results).
    echo "==> cargo run --release -p mbfi-bench --bin exec_bench"
    MBFI_EXPERIMENTS=16 MBFI_BENCH_SAMPLES=3 cargo run --release --offline -q \
        -p mbfi-bench --bin exec_bench -- --out-dir "$MBFI_BENCH_OUT"

    # Whole-grid sweep engine: first the self-verifying mode (every sweep
    # cell compared byte-for-byte against the serial per-campaign runner on a
    # 2-workload sub-grid, at sweep thread counts 1 and 4), then a small
    # timing run that writes BENCH_sweep.json.
    echo "==> cargo run --release -p mbfi-bench --bin sweep_bench -- --check"
    cargo run --release --offline -q -p mbfi-bench \
        --bin sweep_bench -- --check
    echo "==> cargo run --release -p mbfi-bench --bin sweep_bench"
    MBFI_EXPERIMENTS=10 MBFI_WORKLOADS=qsort,histo,CRC32 cargo run --release \
        --offline -q -p mbfi-bench --bin sweep_bench -- --out-dir "$MBFI_BENCH_OUT"

    # Adaptive precision-targeted sampling: first the self-verifying mode
    # (adaptive grid byte-identical at sweep thread counts 1, 4 and 8, and
    # every stopped cell meets the half-width target or spent its whole
    # budget), then a small timing run that writes BENCH_adaptive.json with
    # the experiments-saved and wall-clock ratios vs fixed-n at equal
    # realized precision.
    echo "==> cargo run --release -p mbfi-bench --bin adaptive_bench -- --check"
    cargo run --release --offline -q -p mbfi-bench \
        --bin adaptive_bench -- --check
    echo "==> cargo run --release -p mbfi-bench --bin adaptive_bench"
    MBFI_PRECISION=5,40 MBFI_WORKLOADS=qsort,sad cargo run --release \
        --offline -q -p mbfi-bench --bin adaptive_bench -- --out-dir "$MBFI_BENCH_OUT"

    # Bit-level static pruning: first the self-verifying mode (every sampled
    # claimed-dead site across all workloads injected and required to be
    # byte-identical to golden; pruned campaigns byte-identical to unpruned
    # at thread counts 1, 4 and 8; independent-seed SDC/Detection within the
    # 95% intervals), then a small timing run that writes BENCH_prune.json
    # with the per-workload statically-pruned fractions.
    echo "==> cargo run --release -p mbfi-bench --bin prune_bench -- --check"
    cargo run --release --offline -q -p mbfi-bench \
        --bin prune_bench -- --check
    echo "==> cargo run --release -p mbfi-bench --bin prune_bench"
    MBFI_EXPERIMENTS=20 cargo run --release --offline -q -p mbfi-bench \
        --bin prune_bench -- --out-dir "$MBFI_BENCH_OUT"

    # Copy-on-write snapshot forking: first the self-verifying mode (dirty-
    # chunk accounting cross-checks, plus CoW campaigns byte-identical to
    # deep-copy-restore campaigns on all 15 workloads at thread counts 1, 4
    # and 8), then a small timing run that writes BENCH_snapshot.json with
    # the late-injection and uniform-grid exp/s ratios.
    echo "==> cargo run --release -p mbfi-bench --bin snapshot_bench -- --check"
    cargo run --release --offline -q -p mbfi-bench \
        --bin snapshot_bench -- --check
    echo "==> cargo run --release -p mbfi-bench --bin snapshot_bench"
    MBFI_EXPERIMENTS=16 cargo run --release --offline -q -p mbfi-bench \
        --bin snapshot_bench -- --out-dir "$MBFI_BENCH_OUT"

    # Telemetry plane: first the self-verifying mode (telemetered sweeps
    # byte-identical to telemetry-off at thread counts 1, 4 and 8; hub
    # snapshot and replayed JSONL monitor totals equal to the SweepReport),
    # then a small timing run that writes BENCH_telemetry.json with the
    # off/counters/full overhead comparison.
    echo "==> cargo run --release -p mbfi-bench --bin telemetry_bench -- --check"
    cargo run --release --offline -q -p mbfi-bench \
        --bin telemetry_bench -- --check
    echo "==> cargo run --release -p mbfi-bench --bin telemetry_bench"
    cargo run --release --offline -q -p mbfi-bench \
        --bin telemetry_bench -- --out-dir "$MBFI_BENCH_OUT"

    # Campaign service: first the self-verifying mode (two concurrent
    # overlapping clients at engine thread counts 1, 4 and 8: served
    # reports byte-identical to in-process Sweep::run, shared cells
    # deduplicated onto exactly one execution, and equal-priority tenants
    # finish within a bounded latency spread), then a small timing run
    # that writes BENCH_serve.json with the N-concurrent-clients vs
    # N-serial-grids and all-cells-shared dedupe comparisons.
    echo "==> cargo run --release -p mbfi-bench --bin serve_bench -- --check"
    cargo run --release --offline -q -p mbfi-bench \
        --bin serve_bench -- --check
    echo "==> cargo run --release -p mbfi-bench --bin serve_bench"
    MBFI_EXPERIMENTS=16 MBFI_WORKLOADS=qsort,histo,CRC32,sha cargo run \
        --release --offline -q -p mbfi-bench --bin serve_bench -- \
        --out-dir "$MBFI_BENCH_OUT"
fi

echo "==> OK"
