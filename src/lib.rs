//! # mbfi
//!
//! Facade crate for the mbfi workspace — a reproduction of *"One Bit is
//! (Not) Enough: An Empirical Study of the Impact of Single and Multiple
//! Bit-Flip Errors"* (DSN 2017).
//!
//! This crate only re-exports the workspace members so that downstream users
//! (and the repository-level integration tests in `tests/`) can depend on a
//! single package:
//!
//! * [`ir`] — the SSA-style intermediate representation and builder API,
//! * [`vm`] — the interpreter exposing every register read/write to hooks,
//! * [`workloads`] — the 15 MiBench / Parboil benchmark programs,
//! * [`core`] — fault models, injection, campaigns, outcomes and pruning,
//! * [`bench`] — the harness regenerating the paper's tables and figures.

pub use mbfi_bench as bench;
pub use mbfi_core as core;
pub use mbfi_ir as ir;
pub use mbfi_vm as vm;
pub use mbfi_workloads as workloads;
