//! `spmv` (Parboil / cpu): product of a sparse matrix in coordinate format
//! with a dense vector.

use crate::inputs;
use crate::workload::{InputSize, Suite, Workload};
use mbfi_ir::{Module, ModuleBuilder, Type};

/// The `spmv` workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct Spmv;

impl Spmv {
    fn dims(size: InputSize) -> (usize, usize) {
        match size {
            InputSize::Tiny => (16, 48),
            InputSize::Small => (32, 160),
        }
    }

    fn matrix(size: InputSize) -> (Vec<i32>, Vec<i32>, Vec<f64>, usize) {
        let (n, extra) = Self::dims(size);
        inputs::coo_matrix(n, extra, 0x5335_0001)
    }

    fn vector(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i % 7) as f64 + 1.0) * 0.5).collect()
    }

    /// Reference sparse matrix-vector product.
    fn multiply(rows: &[i32], cols: &[i32], vals: &[f64], x: &[f64], n: usize) -> Vec<f64> {
        let mut y = vec![0.0f64; n];
        for k in 0..rows.len() {
            let r = rows[k] as usize;
            let c = cols[k] as usize;
            y[r] += vals[k] * x[c];
        }
        y
    }
}

impl Workload for Spmv {
    fn name(&self) -> &'static str {
        "spmv"
    }

    fn package(&self) -> &'static str {
        "cpu"
    }

    fn suite(&self) -> Suite {
        Suite::Parboil
    }

    fn description(&self) -> &'static str {
        "sparse matrix (COO format) times dense vector product"
    }

    fn build_module(&self, size: InputSize) -> Module {
        let (rows, cols, vals, n) = Self::matrix(size);
        let x = Self::vector(n);
        let nnz = rows.len() as i64;
        let ni = n as i64;

        let mut mb = ModuleBuilder::new("spmv");
        let rows_g = mb.global_i32s("rows", &rows);
        let cols_g = mb.global_i32s("cols", &cols);
        let vals_g = mb.global_f64s("vals", &vals);
        let x_g = mb.global_f64s("x", &x);

        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let y = f.alloca(Type::F64, ni);
            f.counted_loop(Type::I64, 0i64, ni, |f, i| {
                f.store_elem(Type::F64, y, i, 0.0f64);
            });

            f.counted_loop(Type::I64, 0i64, nnz, |f, k| {
                let r32 = f.load_elem(Type::I32, rows_g, k);
                let r = f.sext_to_i64(Type::I32, r32);
                let c32 = f.load_elem(Type::I32, cols_g, k);
                let c = f.sext_to_i64(Type::I32, c32);
                let v = f.load_elem(Type::F64, vals_g, k);
                let xc = f.load_elem(Type::F64, x_g, c);
                let prod = f.fmul(v, xc);
                let cur = f.load_elem(Type::F64, y, r);
                let next = f.fadd(cur, prod);
                f.store_elem(Type::F64, y, r, next);
            });

            // Print the first entries and an L1 checksum of the result.
            f.counted_loop(Type::I64, 0i64, 6i64, |f, i| {
                let v = f.load_elem(Type::F64, y, i);
                f.print_f64(v);
            });
            let total = f.slot(Type::F64);
            f.store(Type::F64, 0.0f64, total);
            f.counted_loop(Type::I64, 0i64, ni, |f, i| {
                let v = f.load_elem(Type::F64, y, i);
                let a = f
                    .intrinsic(
                        mbfi_ir::Intrinsic::Fabs,
                        &[mbfi_ir::Operand::Reg(v)],
                        Some(Type::F64),
                    )
                    .unwrap();
                let cur = f.load(Type::F64, total);
                let next = f.fadd(cur, a);
                f.store(Type::F64, next, total);
            });
            let t = f.load(Type::F64, total);
            f.print_f64(t);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        let (rows, cols, vals, n) = Self::matrix(size);
        let x = Self::vector(n);
        let y = Self::multiply(&rows, &cols, &vals, &x, n);
        let mut out = Vec::new();
        for item in y.iter().take(6) {
            out.extend_from_slice(format!("{item:.6}\n").as_bytes());
        }
        let mut total = 0.0f64;
        for item in &y {
            total += item.abs();
        }
        out.extend_from_slice(format!("{total:.6}\n").as_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::execute_workload;

    #[test]
    fn matches_reference_on_both_sizes() {
        for size in InputSize::ALL {
            assert_eq!(
                execute_workload(&Spmv, size),
                Spmv.reference_output(size),
                "mismatch at {size}"
            );
        }
    }

    #[test]
    fn multiply_matches_dense_computation() {
        let (rows, cols, vals, n) = Spmv::matrix(InputSize::Tiny);
        let x = Spmv::vector(n);
        let sparse = Spmv::multiply(&rows, &cols, &vals, &x, n);

        // Dense re-computation.
        let mut dense_matrix = vec![0.0f64; n * n];
        for k in 0..rows.len() {
            dense_matrix[rows[k] as usize * n + cols[k] as usize] += vals[k];
        }
        for (r, expected) in sparse.iter().enumerate() {
            let dense: f64 = (0..n).map(|c| dense_matrix[r * n + c] * x[c]).sum();
            assert!((dense - expected).abs() < 1e-9, "row {r} diverges");
        }
    }

    #[test]
    fn identity_like_diagonal_dominates() {
        let (rows, cols, vals, n) = Spmv::matrix(InputSize::Tiny);
        // The generator always emits the diagonal first, so every row has at
        // least one non-zero and the product is non-trivial.
        let x = Spmv::vector(n);
        let y = Spmv::multiply(&rows, &cols, &vals, &x, n);
        assert!(y.iter().any(|&v| v.abs() > 0.1));
    }
}
