//! `sad` (Parboil / cpu): sum of absolute differences between a reference
//! block and every position of a search frame (the kernel of motion
//! estimation).

use crate::inputs;
use crate::workload::{InputSize, Suite, Workload};
use mbfi_ir::{IcmpPred, Module, ModuleBuilder, Type};

/// Block edge length in pixels.
const BLOCK: usize = 4;

/// The `sad` workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct Sad;

impl Sad {
    fn frame_dim(size: InputSize) -> usize {
        match size {
            InputSize::Tiny => 12,
            InputSize::Small => 20,
        }
    }

    fn frame(size: InputSize) -> Vec<u8> {
        let d = Self::frame_dim(size);
        inputs::random_bytes(0x5AD_0001, d * d)
    }

    fn block(size: InputSize) -> Vec<u8> {
        // Take the block from inside the frame so a perfect match exists.
        let d = Self::frame_dim(size);
        let frame = Self::frame(size);
        let (bx, by) = (d / 3, d / 2);
        let mut block = Vec::with_capacity(BLOCK * BLOCK);
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                block.push(frame[(by + y) * d + (bx + x)]);
            }
        }
        block
    }

    /// Reference SAD sweep returning (min SAD, argmin position index, total).
    fn sweep(frame: &[u8], block: &[u8], d: usize) -> (i64, i64, i64) {
        let positions = d - BLOCK + 1;
        let mut best = i64::MAX;
        let mut best_pos = -1i64;
        let mut total = 0i64;
        for py in 0..positions {
            for px in 0..positions {
                let mut sad = 0i64;
                for y in 0..BLOCK {
                    for x in 0..BLOCK {
                        let f = frame[(py + y) * d + (px + x)] as i64;
                        let b = block[y * BLOCK + x] as i64;
                        sad += (f - b).abs();
                    }
                }
                total += sad;
                if sad < best {
                    best = sad;
                    best_pos = (py * positions + px) as i64;
                }
            }
        }
        (best, best_pos, total)
    }
}

impl Workload for Sad {
    fn name(&self) -> &'static str {
        "sad"
    }

    fn package(&self) -> &'static str {
        "cpu"
    }

    fn suite(&self) -> Suite {
        Suite::Parboil
    }

    fn description(&self) -> &'static str {
        "sum-of-absolute-differences block matching over a search frame"
    }

    fn build_module(&self, size: InputSize) -> Module {
        let d = Self::frame_dim(size) as i64;
        let positions = d - BLOCK as i64 + 1;
        let frame = Self::frame(size);
        let block = Self::block(size);

        let mut mb = ModuleBuilder::new("sad");
        let frame_g = mb.global_bytes("frame", frame);
        let block_g = mb.global_bytes("block", block);

        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let best = f.slot(Type::I64);
            f.store(Type::I64, i64::MAX, best);
            let best_pos = f.slot(Type::I64);
            f.store(Type::I64, -1i64, best_pos);
            let total = f.slot(Type::I64);
            f.store(Type::I64, 0i64, total);

            f.counted_loop(Type::I64, 0i64, positions, |f, py| {
                f.counted_loop(Type::I64, 0i64, positions, |f, px| {
                    let sad = f.slot(Type::I64);
                    f.store(Type::I64, 0i64, sad);
                    f.counted_loop(Type::I64, 0i64, BLOCK as i64, |f, y| {
                        f.counted_loop(Type::I64, 0i64, BLOCK as i64, |f, x| {
                            let fy = f.add(Type::I64, py, y);
                            let frow = f.mul(Type::I64, fy, d);
                            let fx = f.add(Type::I64, px, x);
                            let fidx = f.add(Type::I64, frow, fx);
                            let fp = f.load_elem(Type::I8, frame_g, fidx);
                            let fp64 = f.zext(Type::I8, Type::I64, fp);

                            let brow = f.mul(Type::I64, y, BLOCK as i64);
                            let bidx = f.add(Type::I64, brow, x);
                            let bp = f.load_elem(Type::I8, block_g, bidx);
                            let bp64 = f.zext(Type::I8, Type::I64, bp);

                            let diff = f.sub(Type::I64, fp64, bp64);
                            let neg = f.icmp(IcmpPred::Slt, Type::I64, diff, 0i64);
                            let negated = f.sub(Type::I64, 0i64, diff);
                            let absdiff = f.select(Type::I64, neg, negated, diff);
                            let cur = f.load(Type::I64, sad);
                            let next = f.add(Type::I64, cur, absdiff);
                            f.store(Type::I64, next, sad);
                        });
                    });
                    let s = f.load(Type::I64, sad);
                    let t = f.load(Type::I64, total);
                    let t2 = f.add(Type::I64, t, s);
                    f.store(Type::I64, t2, total);

                    let b = f.load(Type::I64, best);
                    let better = f.icmp(IcmpPred::Slt, Type::I64, s, b);
                    f.if_then(better, |f| {
                        f.store(Type::I64, s, best);
                        let row_pos = f.mul(Type::I64, py, positions);
                        let pos = f.add(Type::I64, row_pos, px);
                        f.store(Type::I64, pos, best_pos);
                    });
                });
            });

            let b = f.load(Type::I64, best);
            f.print_i64(b);
            let p = f.load(Type::I64, best_pos);
            f.print_i64(p);
            let t = f.load(Type::I64, total);
            f.print_i64(t);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        let d = Self::frame_dim(size);
        let (best, best_pos, total) = Self::sweep(&Self::frame(size), &Self::block(size), d);
        let mut out = Vec::new();
        out.extend_from_slice(format!("{best}\n").as_bytes());
        out.extend_from_slice(format!("{best_pos}\n").as_bytes());
        out.extend_from_slice(format!("{total}\n").as_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::execute_workload;

    #[test]
    fn matches_reference_on_both_sizes() {
        for size in InputSize::ALL {
            assert_eq!(
                execute_workload(&Sad, size),
                Sad.reference_output(size),
                "mismatch at {size}"
            );
        }
    }

    #[test]
    fn perfect_match_exists_in_the_frame() {
        let d = Sad::frame_dim(InputSize::Small);
        let (best, best_pos, _) = Sad::sweep(
            &Sad::frame(InputSize::Small),
            &Sad::block(InputSize::Small),
            d,
        );
        assert_eq!(
            best, 0,
            "the block was cut from the frame, so SAD 0 must exist"
        );
        let positions = (d - BLOCK + 1) as i64;
        let (bx, by) = (d as i64 / 3, d as i64 / 2);
        assert_eq!(best_pos, by * positions + bx);
    }

    #[test]
    fn total_sad_is_positive() {
        let d = Sad::frame_dim(InputSize::Tiny);
        let (_, _, total) = Sad::sweep(
            &Sad::frame(InputSize::Tiny),
            &Sad::block(InputSize::Tiny),
            d,
        );
        assert!(total > 0);
    }
}
