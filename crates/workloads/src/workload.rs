//! The [`Workload`] trait and its supporting types.

use mbfi_ir::Module;
use std::fmt;

/// Which benchmark suite a workload is modelled after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// MiBench: commercially representative embedded programs.
    MiBench,
    /// Parboil: scientific and commercial throughput computing programs.
    Parboil,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::MiBench => f.write_str("MiBench"),
            Suite::Parboil => f.write_str("Parboil"),
        }
    }
}

/// Input scale for a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InputSize {
    /// A minimal input used by unit tests and doc examples.
    Tiny,
    /// The default input of the experiment harness, analogous to MiBench's
    /// "small" inputs (§III-D of the paper).
    #[default]
    Small,
}

impl InputSize {
    /// Both sizes, smallest first.
    pub const ALL: [InputSize; 2] = [InputSize::Tiny, InputSize::Small];
}

impl fmt::Display for InputSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputSize::Tiny => f.write_str("tiny"),
            InputSize::Small => f.write_str("small"),
        }
    }
}

/// A benchmark program that can be expressed in IR and independently checked.
pub trait Workload: Send + Sync {
    /// Program name as used in the paper's tables (e.g. `basicmath`).
    fn name(&self) -> &'static str;

    /// Package within its suite (e.g. `automotive`, `telecomm`, `base`, `cpu`).
    fn package(&self) -> &'static str;

    /// Which suite the workload is modelled after.
    fn suite(&self) -> Suite;

    /// One-line description of what the program computes.
    fn description(&self) -> &'static str;

    /// Build the workload as an IR module for the given input size.
    fn build_module(&self, size: InputSize) -> Module;

    /// Compute the byte-exact expected output with a pure-Rust oracle.
    fn reference_output(&self, size: InputSize) -> Vec<u8>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_impls() {
        assert_eq!(Suite::MiBench.to_string(), "MiBench");
        assert_eq!(Suite::Parboil.to_string(), "Parboil");
        assert_eq!(InputSize::Tiny.to_string(), "tiny");
        assert_eq!(InputSize::Small.to_string(), "small");
        assert_eq!(InputSize::default(), InputSize::Small);
        assert_eq!(InputSize::ALL.len(), 2);
    }
}
