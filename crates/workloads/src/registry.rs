//! The registry of all 15 benchmark workloads (Table II of the paper).

use crate::workload::{InputSize, Workload};
use mbfi_ir::Module;
use mbfi_vm::{Limits, RunOutcome, Vm};

/// All 15 workloads, in the order Table II lists them.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(crate::basicmath::BasicMath),
        Box::new(crate::qsort::QSort),
        Box::new(crate::susan::SusanCorners),
        Box::new(crate::susan::SusanEdges),
        Box::new(crate::susan::SusanSmoothing),
        Box::new(crate::fft::Fft),
        Box::new(crate::fft::Ifft),
        Box::new(crate::crc32::Crc32),
        Box::new(crate::dijkstra::Dijkstra),
        Box::new(crate::sha::Sha),
        Box::new(crate::stringsearch::StringSearch),
        Box::new(crate::bfs::Bfs),
        Box::new(crate::histo::Histo),
        Box::new(crate::sad::Sad),
        Box::new(crate::spmv::Spmv),
    ]
}

/// Look up a workload by its (case-insensitive) name.
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

/// Execute a workload module in the VM and return its output.
///
/// # Panics
///
/// Panics if the fault-free run traps or exceeds the instruction limit —
/// a workload that cannot complete its golden run is a bug.
pub fn execute_module(module: &Module) -> Vec<u8> {
    let result = Vm::run_golden(module, Limits::default());
    match result.outcome {
        RunOutcome::Completed { .. } => result.output,
        RunOutcome::Trapped(trap) => panic!("golden run of '{}' trapped: {trap}", module.name),
        RunOutcome::InstrLimitExceeded => {
            panic!(
                "golden run of '{}' exceeded the instruction limit",
                module.name
            )
        }
    }
}

/// Execute a workload at a given input size and return its output.
pub fn execute_workload(workload: &dyn Workload, size: InputSize) -> Vec<u8> {
    execute_module(&workload.build_module(size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbfi_ir::verify_module;
    use std::collections::HashSet;

    #[test]
    fn registry_has_the_15_programs_of_table2() {
        let all = all_workloads();
        assert_eq!(all.len(), 15);
        let names: HashSet<_> = all.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 15, "workload names must be unique");
        for expected in [
            "basicmath",
            "qsort",
            "susan_corners",
            "susan_edges",
            "susan_smoothing",
            "FFT",
            "IFFT",
            "CRC32",
            "dijkstra",
            "sha",
            "stringsearch",
            "bfs",
            "histo",
            "sad",
            "spmv",
        ] {
            assert!(names.contains(expected), "missing workload {expected}");
        }
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(workload_by_name("crc32").is_some());
        assert!(workload_by_name("Basicmath").is_some());
        assert!(workload_by_name("nonexistent").is_none());
    }

    #[test]
    fn every_workload_module_verifies() {
        for w in all_workloads() {
            let module = w.build_module(InputSize::Tiny);
            if let Err(errors) = verify_module(&module) {
                panic!("workload {} fails verification: {:?}", w.name(), errors);
            }
        }
    }

    #[test]
    fn every_workload_matches_its_reference_oracle_on_tiny_input() {
        for w in all_workloads() {
            let out = execute_workload(w.as_ref(), InputSize::Tiny);
            let expected = w.reference_output(InputSize::Tiny);
            assert_eq!(
                out,
                expected,
                "workload {} diverges from its oracle (tiny input)\n IR: {}\n rust: {}",
                w.name(),
                String::from_utf8_lossy(&out),
                String::from_utf8_lossy(&expected)
            );
            assert!(!out.is_empty(), "workload {} produced no output", w.name());
        }
    }

    #[test]
    fn every_workload_matches_its_reference_oracle_on_small_input() {
        for w in all_workloads() {
            let out = execute_workload(w.as_ref(), InputSize::Small);
            let expected = w.reference_output(InputSize::Small);
            assert_eq!(
                out,
                expected,
                "workload {} diverges from its oracle (small input)",
                w.name()
            );
        }
    }

    #[test]
    fn workload_metadata_is_populated() {
        for w in all_workloads() {
            assert!(!w.name().is_empty());
            assert!(!w.package().is_empty());
            assert!(!w.description().is_empty());
        }
    }
}
