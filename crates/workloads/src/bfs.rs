//! `bfs` (Parboil / base): breadth-first search computing shortest-path cost
//! (in hops) from a single source to every reachable node of an irregular
//! graph in CSR form.

use crate::inputs;
use crate::workload::{InputSize, Suite, Workload};
use mbfi_ir::{IcmpPred, Module, ModuleBuilder, Type};

/// The `bfs` workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct Bfs;

impl Bfs {
    fn nodes(size: InputSize) -> usize {
        match size {
            InputSize::Tiny => 24,
            InputSize::Small => 72,
        }
    }

    fn graph(size: InputSize) -> (Vec<i32>, Vec<i32>) {
        let n = Self::nodes(size);
        inputs::csr_graph(n, n, 0xBF5_0001)
    }

    /// Reference BFS returning per-node hop counts (-1 = unreachable).
    fn costs(offsets: &[i32], neighbours: &[i32], n: usize) -> Vec<i32> {
        let mut cost = vec![-1i32; n];
        let mut queue = std::collections::VecDeque::new();
        cost[0] = 0;
        queue.push_back(0usize);
        while let Some(u) = queue.pop_front() {
            for k in offsets[u]..offsets[u + 1] {
                let v = neighbours[k as usize] as usize;
                if cost[v] < 0 {
                    cost[v] = cost[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        cost
    }
}

impl Workload for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn package(&self) -> &'static str {
        "base"
    }

    fn suite(&self) -> Suite {
        Suite::Parboil
    }

    fn description(&self) -> &'static str {
        "breadth-first search over a CSR graph from a single source node"
    }

    fn build_module(&self, size: InputSize) -> Module {
        let n = Self::nodes(size) as i64;
        let (offsets, neighbours) = Self::graph(size);

        let mut mb = ModuleBuilder::new("bfs");
        let offsets_g = mb.global_i32s("row_offsets", &offsets);
        let neighbours_g = mb.global_i32s("neighbours", &neighbours);

        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let cost = f.alloca(Type::I32, n);
            let queue = f.alloca(Type::I32, n);
            f.counted_loop(Type::I64, 0i64, n, |f, i| {
                f.store_elem(Type::I32, cost, i, -1i32);
            });
            f.store_elem(Type::I32, cost, 0i64, 0i32);
            f.store_elem(Type::I32, queue, 0i64, 0i32);

            let head = f.slot(Type::I64);
            f.store(Type::I64, 0i64, head);
            let tail = f.slot(Type::I64);
            f.store(Type::I64, 1i64, tail);

            // while head < tail
            let loop_head = f.new_block("bfs.head");
            let loop_body = f.new_block("bfs.body");
            let loop_exit = f.new_block("bfs.exit");
            f.br(loop_head);

            f.switch_to(loop_head);
            let h = f.load(Type::I64, head);
            let t = f.load(Type::I64, tail);
            let more = f.icmp(IcmpPred::Slt, Type::I64, h, t);
            f.cond_br(more, loop_body, loop_exit);

            f.switch_to(loop_body);
            let h2 = f.load(Type::I64, head);
            let u32v = f.load_elem(Type::I32, queue, h2);
            let u = f.sext_to_i64(Type::I32, u32v);
            let h_next = f.add(Type::I64, h2, 1i64);
            f.store(Type::I64, h_next, head);

            let row_start = f.load_elem(Type::I32, offsets_g, u);
            let row_start64 = f.sext_to_i64(Type::I32, row_start);
            let u_plus = f.add(Type::I64, u, 1i64);
            let row_end = f.load_elem(Type::I32, offsets_g, u_plus);
            let row_end64 = f.sext_to_i64(Type::I32, row_end);
            let cu = f.load_elem(Type::I32, cost, u);

            f.counted_loop(Type::I64, row_start64, row_end64, |f, k| {
                let v32 = f.load_elem(Type::I32, neighbours_g, k);
                let v = f.sext_to_i64(Type::I32, v32);
                let cv = f.load_elem(Type::I32, cost, v);
                let unseen = f.icmp(IcmpPred::Slt, Type::I32, cv, 0i32);
                f.if_then(unseen, |f| {
                    let new_cost = f.add(Type::I32, cu, 1i32);
                    f.store_elem(Type::I32, cost, v, new_cost);
                    let tv = f.load(Type::I64, tail);
                    f.store_elem(Type::I32, queue, tv, v32);
                    let t_next = f.add(Type::I64, tv, 1i64);
                    f.store(Type::I64, t_next, tail);
                });
            });
            f.br(loop_head);

            f.switch_to(loop_exit);
            // Print per-node costs, then visited count and total cost.
            let visited = f.slot(Type::I64);
            f.store(Type::I64, 0i64, visited);
            let total = f.slot(Type::I64);
            f.store(Type::I64, 0i64, total);
            f.counted_loop(Type::I64, 0i64, n, |f, i| {
                let c = f.load_elem(Type::I32, cost, i);
                f.print_i64(c);
                let reached = f.icmp(IcmpPred::Sge, Type::I32, c, 0i32);
                f.if_then(reached, |f| {
                    let vc = f.load(Type::I64, visited);
                    let vc2 = f.add(Type::I64, vc, 1i64);
                    f.store(Type::I64, vc2, visited);
                    let c64 = f.sext_to_i64(Type::I32, c);
                    let tt = f.load(Type::I64, total);
                    let tt2 = f.add(Type::I64, tt, c64);
                    f.store(Type::I64, tt2, total);
                });
            });
            let vc = f.load(Type::I64, visited);
            f.print_i64(vc);
            let tt = f.load(Type::I64, total);
            f.print_i64(tt);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        let n = Self::nodes(size);
        let (offsets, neighbours) = Self::graph(size);
        let costs = Self::costs(&offsets, &neighbours, n);
        let mut out = Vec::new();
        let mut visited = 0i64;
        let mut total = 0i64;
        for &c in &costs {
            out.extend_from_slice(format!("{c}\n").as_bytes());
            if c >= 0 {
                visited += 1;
                total += c as i64;
            }
        }
        out.extend_from_slice(format!("{visited}\n").as_bytes());
        out.extend_from_slice(format!("{total}\n").as_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::execute_workload;

    #[test]
    fn matches_reference_on_both_sizes() {
        for size in InputSize::ALL {
            assert_eq!(
                execute_workload(&Bfs, size),
                Bfs.reference_output(size),
                "mismatch at {size}"
            );
        }
    }

    #[test]
    fn graph_is_fully_reachable() {
        let n = Bfs::nodes(InputSize::Small);
        let (offsets, neighbours) = Bfs::graph(InputSize::Small);
        let costs = Bfs::costs(&offsets, &neighbours, n);
        assert_eq!(costs[0], 0);
        assert!(
            costs.iter().all(|&c| c >= 0),
            "ring backbone keeps the graph connected"
        );
    }

    #[test]
    fn bfs_costs_on_a_known_graph() {
        // Path graph 0-1-2-3.
        let offsets = vec![0, 1, 3, 5, 6];
        let neighbours = vec![1, 0, 2, 1, 3, 2];
        assert_eq!(Bfs::costs(&offsets, &neighbours, 4), vec![0, 1, 2, 3]);
    }
}
