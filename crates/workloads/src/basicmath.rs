//! `basicmath` (MiBench / automotive): mathematical calculations such as
//! integer square roots, angle conversions and cubic-equation root finding
//! on a set of constants.

use crate::workload::{InputSize, Suite, Workload};
use mbfi_ir::{IcmpPred, Module, ModuleBuilder, Operand, Type};

/// The `basicmath` workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct BasicMath;

impl BasicMath {
    /// Number of integer square roots / angle steps per input size.
    fn scale(size: InputSize) -> (i64, i64) {
        match size {
            InputSize::Tiny => (40, 90),
            InputSize::Small => (200, 360),
        }
    }

    /// Cubic equation coefficient sets `(a, b, c)` for `x^3 + a x^2 + b x + c`.
    fn cubics() -> Vec<(f64, f64, f64)> {
        vec![
            (-6.0, 11.0, -6.0),
            (1.5, -4.0, 2.0),
            (0.0, -7.0, 6.0),
            (2.0, -3.0, -10.0),
        ]
    }
}

impl Workload for BasicMath {
    fn name(&self) -> &'static str {
        "basicmath"
    }

    fn package(&self) -> &'static str {
        "automotive"
    }

    fn suite(&self) -> Suite {
        Suite::MiBench
    }

    fn description(&self) -> &'static str {
        "integer square roots, degree/radian conversion and cubic-root finding on constants"
    }

    fn build_module(&self, size: InputSize) -> Module {
        let (nsqrt, nangle) = Self::scale(size);
        let cubics = Self::cubics();

        let mut mb = ModuleBuilder::new("basicmath");
        let coeffs: Vec<f64> = cubics.iter().flat_map(|(a, b, c)| [*a, *b, *c]).collect();
        let coeff_table = mb.global_f64s("cubic_coeffs", &coeffs);

        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);

            // Part 1: integer square roots of v = 3*i*i + 7, accumulated.
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, nsqrt, |f, i| {
                let sq = f.mul(Type::I64, i, i);
                let three_sq = f.mul(Type::I64, sq, 3i64);
                let v = f.add(Type::I64, three_sq, 7i64);
                let vf = f.sitofp(Type::I64, v);
                let root = f.sqrt(vf);
                let iroot = f.fptosi(Type::I64, root);
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, iroot);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);

            // Part 2: degree -> radian conversion, accumulating sin(rad).
            let fsum = f.slot(Type::F64);
            f.store(Type::F64, 0.0f64, fsum);
            f.counted_loop(Type::I64, 0i64, nangle, |f, d| {
                let df = f.sitofp(Type::I64, d);
                let rad = f.fmul(df, std::f64::consts::PI / 180.0);
                let s = f.sin(rad);
                let cur = f.load(Type::F64, fsum);
                let next = f.fadd(cur, s);
                f.store(Type::F64, next, fsum);
            });
            let rads = f.load(Type::F64, fsum);
            f.print_f64(rads);

            // Part 3: Newton iterations on each cubic x^3 + a x^2 + b x + c.
            let ncubics = cubics.len() as i64;
            f.counted_loop(Type::I64, 0i64, ncubics, |f, k| {
                let base = f.mul(Type::I64, k, 3i64);
                let a = f.load_elem(Type::F64, coeff_table, base);
                let b_idx = f.add(Type::I64, base, 1i64);
                let b = f.load_elem(Type::F64, coeff_table, b_idx);
                let c_idx = f.add(Type::I64, base, 2i64);
                let c = f.load_elem(Type::F64, coeff_table, c_idx);

                let x = f.slot(Type::F64);
                f.store(Type::F64, 4.0f64, x);
                f.counted_loop(Type::I64, 0i64, 20i64, |f, _| {
                    let xv = f.load(Type::F64, x);
                    // fx = ((x + a) * x + b) * x + c
                    let t1 = f.fadd(xv, a);
                    let t2 = f.fmul(t1, xv);
                    let t3 = f.fadd(t2, b);
                    let t4 = f.fmul(t3, xv);
                    let fx = f.fadd(t4, c);
                    // dfx = (3x + 2a) * x + b
                    let d1 = f.fmul(xv, 3.0f64);
                    let two_a = f.fmul(a, 2.0f64);
                    let d2 = f.fadd(d1, two_a);
                    let d3 = f.fmul(d2, xv);
                    let dfx = f.fadd(d3, b);
                    let step = f.fdiv(fx, dfx);
                    let next = f.fsub(xv, step);
                    f.store(Type::F64, next, x);
                });
                let root = f.load(Type::F64, x);
                f.print_f64(root);
                let _ = k;
            });

            // Part 4: a final integer touch mixing the results (mod arithmetic).
            let t = f.load(Type::I64, acc);
            let mixed = f.srem(Type::I64, t, 9973i64);
            let check = f.icmp(IcmpPred::Sge, Type::I64, mixed, 0i64);
            let adjusted = f.select(
                Type::I64,
                check,
                mixed,
                Operand::Const(mbfi_ir::Constant::i64(0)),
            );
            f.print_i64(adjusted);

            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        let (nsqrt, nangle) = Self::scale(size);
        let mut out = Vec::new();

        let mut acc: i64 = 0;
        for i in 0..nsqrt {
            let v = 3 * i * i + 7;
            acc += (v as f64).sqrt() as i64;
        }
        out.extend_from_slice(format!("{acc}\n").as_bytes());

        let mut fsum = 0.0f64;
        for d in 0..nangle {
            let rad = d as f64 * (std::f64::consts::PI / 180.0);
            fsum += rad.sin();
        }
        out.extend_from_slice(format!("{fsum:.6}\n").as_bytes());

        for (a, b, c) in Self::cubics() {
            let mut x = 4.0f64;
            for _ in 0..20 {
                let fx = ((x + a) * x + b) * x + c;
                let dfx = (3.0 * x + 2.0 * a) * x + b;
                x -= fx / dfx;
            }
            out.extend_from_slice(format!("{x:.6}\n").as_bytes());
        }

        let mixed = acc % 9973;
        let adjusted = if mixed >= 0 { mixed } else { 0 };
        out.extend_from_slice(format!("{adjusted}\n").as_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::execute_workload;

    #[test]
    fn matches_reference_on_both_sizes() {
        for size in InputSize::ALL {
            assert_eq!(
                execute_workload(&BasicMath, size),
                BasicMath.reference_output(size),
                "mismatch at {size}"
            );
        }
    }

    #[test]
    fn cubic_roots_converge_to_known_values() {
        // x^3 - 6x^2 + 11x - 6 has roots 1, 2, 3; Newton from 4.0 converges to 3.
        let text = String::from_utf8(BasicMath.reference_output(InputSize::Tiny)).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].starts_with("3.000000"));
    }

    #[test]
    fn output_scales_with_input_size() {
        let tiny = BasicMath.reference_output(InputSize::Tiny);
        let small = BasicMath.reference_output(InputSize::Small);
        assert_ne!(tiny, small);
    }
}
