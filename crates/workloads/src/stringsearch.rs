//! `stringsearch` (MiBench / office): case-insensitive substring search of
//! several patterns in an ASCII text.

use crate::inputs;
use crate::workload::{InputSize, Suite, Workload};
use mbfi_ir::{IcmpPred, Module, ModuleBuilder, Type};

/// The `stringsearch` workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct StringSearch;

impl StringSearch {
    fn text(size: InputSize) -> Vec<u8> {
        let len = match size {
            InputSize::Tiny => 192,
            InputSize::Small => 768,
        };
        inputs::ascii_text(len)
    }

    fn patterns() -> Vec<&'static [u8]> {
        vec![
            b"QUICK".as_slice(),
            b"lazy dog".as_slice(),
            b"42".as_slice(),
            b"FOX JUMPS".as_slice(),
            b"zebra".as_slice(),
            b"0123".as_slice(),
        ]
    }

    fn to_lower(b: u8) -> u8 {
        if b.is_ascii_uppercase() {
            b + 32
        } else {
            b
        }
    }

    /// Case-insensitive search returning (first index or -1, match count).
    fn search(text: &[u8], pattern: &[u8]) -> (i64, i64) {
        if pattern.is_empty() || pattern.len() > text.len() {
            return (-1, 0);
        }
        let mut first: i64 = -1;
        let mut count: i64 = 0;
        for start in 0..=(text.len() - pattern.len()) {
            let mut matched = true;
            for (k, &p) in pattern.iter().enumerate() {
                if Self::to_lower(text[start + k]) != Self::to_lower(p) {
                    matched = false;
                    break;
                }
            }
            if matched {
                count += 1;
                if first < 0 {
                    first = start as i64;
                }
            }
        }
        (first, count)
    }
}

impl Workload for StringSearch {
    fn name(&self) -> &'static str {
        "stringsearch"
    }

    fn package(&self) -> &'static str {
        "office"
    }

    fn suite(&self) -> Suite {
        Suite::MiBench
    }

    fn description(&self) -> &'static str {
        "case-insensitive substring search of several patterns in an ASCII text"
    }

    fn build_module(&self, size: InputSize) -> Module {
        let text = Self::text(size);
        let text_len = text.len() as i64;
        let patterns = Self::patterns();

        let mut mb = ModuleBuilder::new("stringsearch");
        let text_g = mb.global_bytes("text", text);
        // Pack patterns into one blob with an offset/length table.
        let mut blob = Vec::new();
        let mut offsets = Vec::new();
        let mut lengths = Vec::new();
        for p in &patterns {
            offsets.push(blob.len() as i32);
            lengths.push(p.len() as i32);
            blob.extend_from_slice(p);
        }
        let blob_g = mb.global_bytes("patterns", blob);
        let offsets_g = mb.global_i32s("pattern_offsets", &offsets);
        let lengths_g = mb.global_i32s("pattern_lengths", &lengths);

        // to_lower(c: i32) -> i32
        let to_lower = mb.declare("to_lower", &[(Type::I32, "c")], Some(Type::I32));
        let main = mb.declare("main", &[], None);

        {
            let mut f = mb.define(to_lower);
            let c = f.param(0);
            let ge_a = f.icmp(IcmpPred::Sge, Type::I32, c, 'A' as i32);
            let le_z = f.icmp(IcmpPred::Sle, Type::I32, c, 'Z' as i32);
            let upper = f.and(Type::I1, ge_a, le_z);
            let lowered = f.add(Type::I32, c, 32i32);
            let out = f.select(Type::I32, upper, lowered, c);
            f.ret(out);
        }

        {
            let mut f = mb.define(main);
            let npat = patterns.len() as i64;
            let total_matches = f.slot(Type::I64);
            f.store(Type::I64, 0i64, total_matches);

            f.counted_loop(Type::I64, 0i64, npat, |f, p| {
                let off = f.load_elem(Type::I32, offsets_g, p);
                let off64 = f.sext_to_i64(Type::I32, off);
                let len = f.load_elem(Type::I32, lengths_g, p);
                let len64 = f.sext_to_i64(Type::I32, len);

                let first = f.slot(Type::I64);
                f.store(Type::I64, -1i64, first);
                let count = f.slot(Type::I64);
                f.store(Type::I64, 0i64, count);

                let last_start = f.sub(Type::I64, text_len, len64);
                let end = f.add(Type::I64, last_start, 1i64);
                f.counted_loop(Type::I64, 0i64, end, |f, start| {
                    let matched = f.slot(Type::I64);
                    f.store(Type::I64, 1i64, matched);
                    f.counted_loop(Type::I64, 0i64, len64, |f, k| {
                        let still = f.load(Type::I64, matched);
                        let active = f.icmp(IcmpPred::Ne, Type::I64, still, 0i64);
                        f.if_then(active, |f| {
                            let tidx = f.add(Type::I64, start, k);
                            let tb = f.load_elem(Type::I8, text_g, tidx);
                            let tb32 = f.zext(Type::I8, Type::I32, tb);
                            let tl = f
                                .call(to_lower, &[mbfi_ir::Operand::Reg(tb32)], Some(Type::I32))
                                .unwrap();
                            let pidx = f.add(Type::I64, off64, k);
                            let pb = f.load_elem(Type::I8, blob_g, pidx);
                            let pb32 = f.zext(Type::I8, Type::I32, pb);
                            let pl = f
                                .call(to_lower, &[mbfi_ir::Operand::Reg(pb32)], Some(Type::I32))
                                .unwrap();
                            let differ = f.icmp(IcmpPred::Ne, Type::I32, tl, pl);
                            f.if_then(differ, |f| {
                                f.store(Type::I64, 0i64, matched);
                            });
                        });
                    });
                    let hit = f.load(Type::I64, matched);
                    let is_hit = f.icmp(IcmpPred::Ne, Type::I64, hit, 0i64);
                    f.if_then(is_hit, |f| {
                        let c = f.load(Type::I64, count);
                        let c2 = f.add(Type::I64, c, 1i64);
                        f.store(Type::I64, c2, count);
                        let fv = f.load(Type::I64, first);
                        let unset = f.icmp(IcmpPred::Slt, Type::I64, fv, 0i64);
                        f.if_then(unset, |f| {
                            f.store(Type::I64, start, first);
                        });
                    });
                });

                let fv = f.load(Type::I64, first);
                f.print_i64(fv);
                let cv = f.load(Type::I64, count);
                f.print_i64(cv);
                let t = f.load(Type::I64, total_matches);
                let t2 = f.add(Type::I64, t, cv);
                f.store(Type::I64, t2, total_matches);
            });

            let total = f.load(Type::I64, total_matches);
            f.print_i64(total);
            f.ret_void();
        }

        mb.set_entry(main);
        mb.finish()
    }

    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        let text = Self::text(size);
        let mut out = Vec::new();
        let mut total = 0i64;
        for p in Self::patterns() {
            let (first, count) = Self::search(&text, p);
            out.extend_from_slice(format!("{first}\n").as_bytes());
            out.extend_from_slice(format!("{count}\n").as_bytes());
            total += count;
        }
        out.extend_from_slice(format!("{total}\n").as_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::execute_workload;

    #[test]
    fn matches_reference_on_both_sizes() {
        for size in InputSize::ALL {
            assert_eq!(
                execute_workload(&StringSearch, size),
                StringSearch.reference_output(size),
                "mismatch at {size}"
            );
        }
    }

    #[test]
    fn search_is_case_insensitive() {
        let (first, count) = StringSearch::search(b"The QUICK brown fox", b"quick");
        assert_eq!(first, 4);
        assert_eq!(count, 1);
    }

    #[test]
    fn missing_pattern_reports_minus_one() {
        let (first, count) = StringSearch::search(b"hello world", b"zebra");
        assert_eq!(first, -1);
        assert_eq!(count, 0);
        let (first, count) = StringSearch::search(b"hi", b"a longer pattern");
        assert_eq!(first, -1);
        assert_eq!(count, 0);
    }

    #[test]
    fn some_patterns_are_found_in_the_corpus() {
        let text = String::from_utf8(StringSearch.reference_output(InputSize::Small)).unwrap();
        let total: i64 = text.lines().last().unwrap().parse().unwrap();
        assert!(total > 0, "the corpus should contain some of the patterns");
    }
}
