//! `histo` (Parboil / base): 2-D saturating histogram with a maximum bin
//! count of 255.

use crate::inputs;
use crate::workload::{InputSize, Suite, Workload};
use mbfi_ir::{IcmpPred, Module, ModuleBuilder, Type};

/// Histogram dimensions (bins = `WIDTH * HEIGHT`).
const HIST_WIDTH: usize = 16;
/// Histogram height.
const HIST_HEIGHT: usize = 8;
/// Saturation limit per bin.
const SATURATION: i32 = 255;

/// The `histo` workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct Histo;

impl Histo {
    fn input(size: InputSize) -> Vec<u8> {
        let len = match size {
            InputSize::Tiny => 512,
            InputSize::Small => 3072,
        };
        // Skew the data so that some bins saturate (as in the Parboil input,
        // which is highly non-uniform).
        let raw = inputs::random_bytes(0x415_0001, len);
        raw.iter()
            .map(|&b| if b % 2 == 0 { b % 4 } else { b % 128 })
            .collect()
    }

    fn bins() -> usize {
        HIST_WIDTH * HIST_HEIGHT
    }

    /// Reference histogram.
    fn histogram(data: &[u8]) -> Vec<i32> {
        let mut bins = vec![0i32; Self::bins()];
        for &d in data {
            let idx = d as usize % Self::bins();
            if bins[idx] < SATURATION {
                bins[idx] += 1;
            }
        }
        bins
    }
}

impl Workload for Histo {
    fn name(&self) -> &'static str {
        "histo"
    }

    fn package(&self) -> &'static str {
        "base"
    }

    fn suite(&self) -> Suite {
        Suite::Parboil
    }

    fn description(&self) -> &'static str {
        "2-D saturating histogram (max bin count 255) of a skewed byte stream"
    }

    fn build_module(&self, size: InputSize) -> Module {
        let data = Self::input(size);
        let n = data.len() as i64;
        let nbins = Self::bins() as i64;

        let mut mb = ModuleBuilder::new("histo");
        let data_g = mb.global_bytes("input", data);

        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let bins = f.alloca(Type::I32, nbins);
            f.counted_loop(Type::I64, 0i64, nbins, |f, i| {
                f.store_elem(Type::I32, bins, i, 0i32);
            });

            f.counted_loop(Type::I64, 0i64, n, |f, i| {
                let b = f.load_elem(Type::I8, data_g, i);
                let b64 = f.zext(Type::I8, Type::I64, b);
                let idx = f.srem(Type::I64, b64, nbins);
                let cur = f.load_elem(Type::I32, bins, idx);
                let below = f.icmp(IcmpPred::Slt, Type::I32, cur, SATURATION);
                f.if_then(below, |f| {
                    let next = f.add(Type::I32, cur, 1i32);
                    f.store_elem(Type::I32, bins, idx, next);
                });
            });

            // Print summary rows: per histogram row, the row sum; then the
            // number of saturated bins, non-zero bins, and a weighted checksum.
            let saturated = f.slot(Type::I64);
            f.store(Type::I64, 0i64, saturated);
            let nonzero = f.slot(Type::I64);
            f.store(Type::I64, 0i64, nonzero);
            let checksum = f.slot(Type::I64);
            f.store(Type::I64, 0i64, checksum);

            f.counted_loop(Type::I64, 0i64, HIST_HEIGHT as i64, |f, row| {
                let row_sum = f.slot(Type::I64);
                f.store(Type::I64, 0i64, row_sum);
                f.counted_loop(Type::I64, 0i64, HIST_WIDTH as i64, |f, col| {
                    let base = f.mul(Type::I64, row, HIST_WIDTH as i64);
                    let idx = f.add(Type::I64, base, col);
                    let v = f.load_elem(Type::I32, bins, idx);
                    let v64 = f.sext_to_i64(Type::I32, v);
                    let rs = f.load(Type::I64, row_sum);
                    let rs2 = f.add(Type::I64, rs, v64);
                    f.store(Type::I64, rs2, row_sum);

                    let is_sat = f.icmp(IcmpPred::Sge, Type::I32, v, SATURATION);
                    f.if_then(is_sat, |f| {
                        let s = f.load(Type::I64, saturated);
                        let s2 = f.add(Type::I64, s, 1i64);
                        f.store(Type::I64, s2, saturated);
                    });
                    let is_nz = f.icmp(IcmpPred::Sgt, Type::I32, v, 0i32);
                    f.if_then(is_nz, |f| {
                        let z = f.load(Type::I64, nonzero);
                        let z2 = f.add(Type::I64, z, 1i64);
                        f.store(Type::I64, z2, nonzero);
                    });
                    let ip1 = f.add(Type::I64, idx, 1i64);
                    let w = f.mul(Type::I64, v64, ip1);
                    let cs = f.load(Type::I64, checksum);
                    let cs2 = f.add(Type::I64, cs, w);
                    f.store(Type::I64, cs2, checksum);
                });
                let rs = f.load(Type::I64, row_sum);
                f.print_i64(rs);
            });

            let s = f.load(Type::I64, saturated);
            f.print_i64(s);
            let z = f.load(Type::I64, nonzero);
            f.print_i64(z);
            let cs = f.load(Type::I64, checksum);
            f.print_i64(cs);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        let bins = Self::histogram(&Self::input(size));
        let mut out = Vec::new();
        let mut saturated = 0i64;
        let mut nonzero = 0i64;
        let mut checksum = 0i64;
        for row in 0..HIST_HEIGHT {
            let mut row_sum = 0i64;
            for col in 0..HIST_WIDTH {
                let idx = row * HIST_WIDTH + col;
                let v = bins[idx] as i64;
                row_sum += v;
                if bins[idx] >= SATURATION {
                    saturated += 1;
                }
                if bins[idx] > 0 {
                    nonzero += 1;
                }
                checksum += v * (idx as i64 + 1);
            }
            out.extend_from_slice(format!("{row_sum}\n").as_bytes());
        }
        out.extend_from_slice(format!("{saturated}\n").as_bytes());
        out.extend_from_slice(format!("{nonzero}\n").as_bytes());
        out.extend_from_slice(format!("{checksum}\n").as_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::execute_workload;

    #[test]
    fn matches_reference_on_both_sizes() {
        for size in InputSize::ALL {
            assert_eq!(
                execute_workload(&Histo, size),
                Histo.reference_output(size),
                "mismatch at {size}"
            );
        }
    }

    #[test]
    fn histogram_counts_every_sample_until_saturation() {
        let data = Histo::input(InputSize::Tiny);
        let bins = Histo::histogram(&data);
        let total: i64 = bins.iter().map(|&b| b as i64).sum();
        assert!(total <= data.len() as i64);
        assert!(bins.iter().all(|&b| b <= SATURATION));
    }

    #[test]
    fn skewed_input_saturates_at_least_one_bin_on_small() {
        let bins = Histo::histogram(&Histo::input(InputSize::Small));
        assert!(
            bins.contains(&SATURATION),
            "the skewed input should saturate a bin, max was {}",
            bins.iter().max().unwrap()
        );
    }
}
