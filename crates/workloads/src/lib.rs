//! # mbfi-workloads
//!
//! The benchmark programs used by the fault-injection study, re-implemented
//! against the `mbfi-ir` builder API.  The paper evaluates 15 programs from
//! two suites:
//!
//! * **MiBench** — basicmath, qsort, susan (corners / edges / smoothing),
//!   FFT, IFFT, CRC32, dijkstra, sha, stringsearch;
//! * **Parboil** — bfs, histo, sad, spmv.
//!
//! Every workload provides
//!
//! * [`Workload::build_module`] — the program as an IR [`mbfi_ir::Module`]
//!   whose only observable output is what it prints, and
//! * [`Workload::reference_output`] — an independent, pure-Rust oracle that
//!   computes the byte-exact expected output.
//!
//! Inputs are scaled down relative to the original suites (the paper uses
//! MiBench's *small* inputs) so that a fault-free run is thousands to a few
//! hundred thousand dynamic instructions; the input-size knob
//! ([`InputSize`]) selects between a tiny CI-friendly input and the default
//! "small" input used by the experiment harness.

pub mod basicmath;
pub mod bfs;
pub mod crc32;
pub mod dijkstra;
pub mod fft;
pub mod histo;
pub mod inputs;
pub mod qsort;
pub mod registry;
pub mod sad;
pub mod sha;
pub mod spmv;
pub mod stringsearch;
pub mod susan;
pub mod workload;

pub use registry::{all_workloads, workload_by_name};
pub use workload::{InputSize, Suite, Workload};
