//! `dijkstra` (MiBench / network): single-source shortest paths over an
//! adjacency-matrix graph using Dijkstra's algorithm.

use crate::inputs;
use crate::workload::{InputSize, Suite, Workload};
use mbfi_ir::{IcmpPred, Module, ModuleBuilder, Type};

/// A large-but-safe "infinite" distance (fits in i32 without overflow when
/// adding edge weights).
const INF: i32 = 1_000_000;

/// The `dijkstra` workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct Dijkstra;

impl Dijkstra {
    fn nodes(size: InputSize) -> usize {
        match size {
            InputSize::Tiny => 10,
            InputSize::Small => 20,
        }
    }

    fn matrix(size: InputSize) -> Vec<i32> {
        let n = Self::nodes(size);
        inputs::adjacency_matrix(n, n * 2, SEED)
    }

    /// Reference Dijkstra over the adjacency matrix.
    fn shortest_paths(matrix: &[i32], n: usize) -> Vec<i32> {
        let mut dist = vec![INF; n];
        let mut visited = vec![false; n];
        dist[0] = 0;
        for _ in 0..n {
            let mut best = INF;
            let mut u = n;
            for (i, &d) in dist.iter().enumerate() {
                if !visited[i] && d < best {
                    best = d;
                    u = i;
                }
            }
            if u == n {
                break;
            }
            visited[u] = true;
            for v in 0..n {
                let w = matrix[u * n + v];
                if w > 0 && dist[u] + w < dist[v] {
                    dist[v] = dist[u] + w;
                }
            }
        }
        dist
    }
}

/// Seed for the deterministic input graph.
const SEED: u64 = 0xD170_5727;

impl Workload for Dijkstra {
    fn name(&self) -> &'static str {
        "dijkstra"
    }

    fn package(&self) -> &'static str {
        "network"
    }

    fn suite(&self) -> Suite {
        Suite::MiBench
    }

    fn description(&self) -> &'static str {
        "single-source shortest paths over an adjacency-matrix graph"
    }

    fn build_module(&self, size: InputSize) -> Module {
        let n = Self::nodes(size) as i64;
        let matrix = Self::matrix(size);

        let mut mb = ModuleBuilder::new("dijkstra");
        let adj = mb.global_i32s("adjacency", &matrix);

        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let dist = f.alloca(Type::I32, n);
            let visited = f.alloca(Type::I32, n);

            // Initialise dist = INF (except source) and visited = 0.
            f.counted_loop(Type::I64, 0i64, n, |f, i| {
                f.store_elem(Type::I32, dist, i, INF);
                f.store_elem(Type::I32, visited, i, 0i32);
            });
            f.store_elem(Type::I32, dist, 0i64, 0i32);

            // Main loop: pick the unvisited node with the smallest distance,
            // then relax its outgoing edges.
            f.counted_loop(Type::I64, 0i64, n, |f, _| {
                let best = f.slot(Type::I32);
                f.store(Type::I32, INF, best);
                let best_idx = f.slot(Type::I64);
                f.store(Type::I64, -1i64, best_idx);

                f.counted_loop(Type::I64, 0i64, n, |f, i| {
                    let seen = f.load_elem(Type::I32, visited, i);
                    let unseen = f.icmp(IcmpPred::Eq, Type::I32, seen, 0i32);
                    f.if_then(unseen, |f| {
                        let d = f.load_elem(Type::I32, dist, i);
                        let b = f.load(Type::I32, best);
                        let closer = f.icmp(IcmpPred::Slt, Type::I32, d, b);
                        f.if_then(closer, |f| {
                            f.store(Type::I32, d, best);
                            f.store(Type::I64, i, best_idx);
                        });
                    });
                });

                let u = f.load(Type::I64, best_idx);
                let found = f.icmp(IcmpPred::Sge, Type::I64, u, 0i64);
                f.if_then(found, |f| {
                    f.store_elem(Type::I32, visited, u, 1i32);
                    let du = f.load_elem(Type::I32, dist, u);
                    let row = f.mul(Type::I64, u, n);
                    f.counted_loop(Type::I64, 0i64, n, |f, v| {
                        let idx = f.add(Type::I64, row, v);
                        let w = f.load_elem(Type::I32, adj, idx);
                        let has_edge = f.icmp(IcmpPred::Sgt, Type::I32, w, 0i32);
                        f.if_then(has_edge, |f| {
                            let cand = f.add(Type::I32, du, w);
                            let dv = f.load_elem(Type::I32, dist, v);
                            let better = f.icmp(IcmpPred::Slt, Type::I32, cand, dv);
                            f.if_then(better, |f| {
                                f.store_elem(Type::I32, dist, v, cand);
                            });
                        });
                    });
                });
            });

            // Print every distance, then their sum.
            let total = f.slot(Type::I64);
            f.store(Type::I64, 0i64, total);
            f.counted_loop(Type::I64, 0i64, n, |f, i| {
                let d = f.load_elem(Type::I32, dist, i);
                f.print_i64(d);
                let d64 = f.sext_to_i64(Type::I32, d);
                let cur = f.load(Type::I64, total);
                let next = f.add(Type::I64, cur, d64);
                f.store(Type::I64, next, total);
            });
            let sum = f.load(Type::I64, total);
            f.print_i64(sum);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        let n = Self::nodes(size);
        let matrix = Self::matrix(size);
        let dist = Self::shortest_paths(&matrix, n);
        let mut out = Vec::new();
        let mut sum: i64 = 0;
        for d in &dist {
            out.extend_from_slice(format!("{d}\n").as_bytes());
            sum += *d as i64;
        }
        out.extend_from_slice(format!("{sum}\n").as_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::execute_workload;

    #[test]
    fn matches_reference_on_both_sizes() {
        for size in InputSize::ALL {
            assert_eq!(
                execute_workload(&Dijkstra, size),
                Dijkstra.reference_output(size),
                "mismatch at {size}"
            );
        }
    }

    #[test]
    fn all_nodes_are_reachable() {
        let n = Dijkstra::nodes(InputSize::Small);
        let dist = Dijkstra::shortest_paths(&Dijkstra::matrix(InputSize::Small), n);
        assert_eq!(dist[0], 0);
        assert!(dist.iter().all(|&d| d < INF), "graph must be connected");
    }

    #[test]
    fn shortest_paths_on_a_known_graph() {
        // 3 nodes: 0-1 weight 2, 1-2 weight 3, 0-2 weight 10 => dist = [0, 2, 5].
        #[rustfmt::skip]
        let m = vec![
            0, 2, 10,
            2, 0, 3,
            10, 3, 0,
        ];
        assert_eq!(Dijkstra::shortest_paths(&m, 3), vec![0, 2, 5]);
    }
}
