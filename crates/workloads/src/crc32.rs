//! `CRC32` (MiBench / telecomm): table-driven 32-bit cyclic redundancy check
//! over an ASCII buffer (the original processes a sound file).

use crate::inputs;
use crate::workload::{InputSize, Suite, Workload};
use mbfi_ir::{IcmpPred, Module, ModuleBuilder, Type};

/// The CRC-32 polynomial (reflected form).
pub const CRC32_POLY: u32 = 0xEDB8_8320;

/// The `CRC32` workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct Crc32;

impl Crc32 {
    fn input(size: InputSize) -> Vec<u8> {
        let len = match size {
            InputSize::Tiny => 160,
            InputSize::Small => 1024,
        };
        inputs::ascii_text(len)
    }

    /// Reference CRC-32 (bitwise definition, identical to the table version).
    pub fn crc32(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (CRC32_POLY & mask);
            }
        }
        !crc
    }
}

impl Workload for Crc32 {
    fn name(&self) -> &'static str {
        "CRC32"
    }

    fn package(&self) -> &'static str {
        "telecomm"
    }

    fn suite(&self) -> Suite {
        Suite::MiBench
    }

    fn description(&self) -> &'static str {
        "table-driven 32-bit cyclic redundancy check over an ASCII buffer"
    }

    fn build_module(&self, size: InputSize) -> Module {
        let data = Self::input(size);
        let n = data.len() as i64;

        let mut mb = ModuleBuilder::new("CRC32");
        let buffer = mb.global_bytes("buffer", data);

        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);

            // Build the 256-entry CRC table on the stack, exactly as the
            // MiBench implementation precomputes it.
            let table = f.alloca(Type::I32, 256i64);
            f.counted_loop(Type::I64, 0i64, 256i64, |f, i| {
                let c = f.slot(Type::I32);
                let i32v = f.trunc(Type::I64, Type::I32, i);
                f.store(Type::I32, i32v, c);
                f.counted_loop(Type::I64, 0i64, 8i64, |f, _| {
                    let cur = f.load(Type::I32, c);
                    let lsb = f.and(Type::I32, cur, 1i32);
                    let shifted = f.lshr(Type::I32, cur, 1i32);
                    let is_set = f.icmp(IcmpPred::Ne, Type::I32, lsb, 0i32);
                    let xored = f.xor(Type::I32, shifted, CRC32_POLY as i32);
                    let next = f.select(Type::I32, is_set, xored, shifted);
                    f.store(Type::I32, next, c);
                });
                let entry = f.load(Type::I32, c);
                f.store_elem(Type::I32, table, i, entry);
            });

            // crc = 0xFFFFFFFF; per byte: crc = (crc >> 8) ^ table[(crc ^ byte) & 0xff]
            let crc = f.slot(Type::I32);
            f.store(Type::I32, -1i32, crc);
            f.counted_loop(Type::I64, 0i64, n, |f, i| {
                let byte = f.load_elem(Type::I8, buffer, i);
                let byte32 = f.zext(Type::I8, Type::I32, byte);
                let cur = f.load(Type::I32, crc);
                let mix = f.xor(Type::I32, cur, byte32);
                let idx32 = f.and(Type::I32, mix, 0xffi32);
                let idx = f.zext(Type::I32, Type::I64, idx32);
                let entry = f.load_elem(Type::I32, table, idx);
                let hi = f.lshr(Type::I32, cur, 8i32);
                let next = f.xor(Type::I32, hi, entry);
                f.store(Type::I32, next, crc);
            });
            let final_crc = f.load(Type::I32, crc);
            let inverted = f.xor(Type::I32, final_crc, -1i32);
            let wide = f.zext(Type::I32, Type::I64, inverted);
            f.print_i64(wide);

            // Also report the number of bytes processed, like the original
            // prints the file length alongside the CRC.
            f.print_i64(n);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        let data = Self::input(size);
        let crc = Self::crc32(&data);
        let mut out = Vec::new();
        out.extend_from_slice(format!("{}\n", crc as u64).as_bytes());
        out.extend_from_slice(format!("{}\n", data.len()).as_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::execute_workload;

    #[test]
    fn matches_reference_on_both_sizes() {
        for size in InputSize::ALL {
            assert_eq!(
                execute_workload(&Crc32, size),
                Crc32.reference_output(size),
                "mismatch at {size}"
            );
        }
    }

    #[test]
    fn crc_matches_known_test_vector() {
        // The classic check value for "123456789".
        assert_eq!(Crc32::crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(Crc32::crc32(b""), 0);
    }

    #[test]
    fn different_inputs_give_different_crcs() {
        let a = Crc32::crc32(&Crc32::input(InputSize::Tiny));
        let b = Crc32::crc32(&Crc32::input(InputSize::Small));
        assert_ne!(a, b);
    }
}
