//! `susan` (MiBench / automotive): image smoothing, edge detection and
//! corner detection over a black & white image of a rectangle.
//!
//! The three SUSAN variants of the paper (`susan_corners`, `susan_edges`,
//! `susan_smoothing`) share the same synthetic input image and differ only in
//! the per-pixel kernel, exactly like the original program's `-c`/`-e`/`-s`
//! modes.  The kernels here are simplified (3×3 neighbourhoods, integer
//! arithmetic) but keep the original structure: nested loops over pixels with
//! neighbourhood loads, branches on brightness thresholds and accumulation
//! into summary statistics.

use crate::inputs;
use crate::workload::{InputSize, Suite, Workload};
use mbfi_ir::{IcmpPred, Module, ModuleBuilder, Operand, Reg, Type};

/// Brightness-difference threshold shared by the three kernels.
const THRESHOLD: i32 = 27;

fn image_dims(size: InputSize) -> (usize, usize) {
    match size {
        InputSize::Tiny => (14, 14),
        InputSize::Small => (26, 26),
    }
}

fn image(size: InputSize) -> Vec<u8> {
    let (w, h) = image_dims(size);
    inputs::rectangle_image(w, h)
}

/// Which SUSAN kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    Smoothing,
    Edges,
    Corners,
}

/// Shared IR builder for the three variants.
fn build_susan(kernel: Kernel, size: InputSize) -> Module {
    let (w, h) = image_dims(size);
    let (wi, hi) = (w as i64, h as i64);
    let img_data = image(size);

    let name = match kernel {
        Kernel::Smoothing => "susan_smoothing",
        Kernel::Edges => "susan_edges",
        Kernel::Corners => "susan_corners",
    };
    let mut mb = ModuleBuilder::new(name);
    let img = mb.global_bytes("image", img_data);

    let main = mb.declare("main", &[], None);
    {
        let mut f = mb.define(main);
        let acc = f.slot(Type::I64);
        f.store(Type::I64, 0i64, acc);
        let count = f.slot(Type::I64);
        f.store(Type::I64, 0i64, count);

        // for y in 1..h-1, x in 1..w-1
        f.counted_loop(Type::I64, 1i64, hi - 1, |f, y| {
            f.counted_loop(Type::I64, 1i64, wi - 1, |f, x| {
                let row = f.mul(Type::I64, y, wi);
                let centre_idx = f.add(Type::I64, row, x);
                let centre = f.load_elem(Type::I8, img, centre_idx);
                let centre32 = f.zext(Type::I8, Type::I32, centre);

                // Walk the 3x3 neighbourhood.
                let nsum = f.slot(Type::I64); // sum of neighbour pixels (smoothing)
                f.store(Type::I64, 0i64, nsum);
                let usan = f.slot(Type::I64); // neighbours similar to the centre
                f.store(Type::I64, 0i64, usan);
                let grad = f.slot(Type::I64); // sum of |neighbour - centre|
                f.store(Type::I64, 0i64, grad);

                f.counted_loop(Type::I64, -1i64, 2i64, |f, dy| {
                    f.counted_loop(Type::I64, -1i64, 2i64, |f, dx| {
                        let ny = f.add(Type::I64, y, dy);
                        let nx = f.add(Type::I64, x, dx);
                        let nrow = f.mul(Type::I64, ny, wi);
                        let nidx = f.add(Type::I64, nrow, nx);
                        let np = f.load_elem(Type::I8, img, nidx);
                        let np32 = f.zext(Type::I8, Type::I32, np);
                        let np64 = f.zext(Type::I32, Type::I64, np32);

                        let cur_sum = f.load(Type::I64, nsum);
                        let next_sum = f.add(Type::I64, cur_sum, np64);
                        f.store(Type::I64, next_sum, nsum);

                        let diff = f.sub(Type::I32, np32, centre32);
                        let neg = f.icmp(IcmpPred::Slt, Type::I32, diff, 0i32);
                        let negated = f.sub(Type::I32, 0i32, diff);
                        let absdiff = f.select(Type::I32, neg, negated, diff);
                        let absdiff64 = f.sext_to_i64(Type::I32, absdiff);

                        let cur_grad = f.load(Type::I64, grad);
                        let next_grad = f.add(Type::I64, cur_grad, absdiff64);
                        f.store(Type::I64, next_grad, grad);

                        let similar = f.icmp(IcmpPred::Slt, Type::I32, absdiff, THRESHOLD);
                        f.if_then(similar, |f| {
                            let cur_u = f.load(Type::I64, usan);
                            let next_u = f.add(Type::I64, cur_u, 1i64);
                            f.store(Type::I64, next_u, usan);
                        });
                    });
                });

                match kernel {
                    Kernel::Smoothing => {
                        // Smoothed pixel = mean of the 3x3 neighbourhood.
                        let s = f.load(Type::I64, nsum);
                        let mean = f.sdiv(Type::I64, s, 9i64);
                        let cur = f.load(Type::I64, acc);
                        let next = f.add(Type::I64, cur, mean);
                        f.store(Type::I64, next, acc);
                        let cur_c = f.load(Type::I64, count);
                        let next_c = f.add(Type::I64, cur_c, 1i64);
                        f.store(Type::I64, next_c, count);
                    }
                    Kernel::Edges => {
                        // Edge response = total absolute gradient; count pixels
                        // whose response exceeds a threshold.
                        let g = f.load(Type::I64, grad);
                        let cur = f.load(Type::I64, acc);
                        let next = f.add(Type::I64, cur, g);
                        f.store(Type::I64, next, acc);
                        let is_edge = f.icmp(IcmpPred::Sgt, Type::I64, g, 200i64);
                        f.if_then(is_edge, |f| {
                            let cur_c = f.load(Type::I64, count);
                            let next_c = f.add(Type::I64, cur_c, 1i64);
                            f.store(Type::I64, next_c, count);
                        });
                    }
                    Kernel::Corners => {
                        // Corner when the USAN area (similar neighbours,
                        // centre included) is small.
                        let u = f.load(Type::I64, usan);
                        let is_corner = f.icmp(IcmpPred::Sle, Type::I64, u, 4i64);
                        f.if_then(is_corner, |f| {
                            let cur_c = f.load(Type::I64, count);
                            let next_c = f.add(Type::I64, cur_c, 1i64);
                            f.store(Type::I64, next_c, count);
                            // Accumulate corner coordinates as a signature.
                            let pos = f.mul(Type::I64, y, 1000i64);
                            let sig = f.add(Type::I64, pos, x);
                            let cur = f.load(Type::I64, acc);
                            let next = f.add(Type::I64, cur, sig);
                            f.store(Type::I64, next, acc);
                        });
                    }
                }
            });
        });

        let a: Reg = f.load(Type::I64, acc);
        f.print_i64(a);
        let c: Reg = f.load(Type::I64, count);
        f.print_i64(c);
        // A mixed checksum to make silent corruption of either value visible.
        let mix = f.mul(Type::I64, a, 31i64);
        let check = f.add(Type::I64, mix, Operand::Reg(c));
        f.print_i64(check);
        f.ret_void();
    }
    mb.set_entry(main);
    mb.finish()
}

/// Shared Rust oracle for the three variants.
fn reference_susan(kernel: Kernel, size: InputSize) -> Vec<u8> {
    let (w, h) = image_dims(size);
    let img = image(size);
    let mut acc: i64 = 0;
    let mut count: i64 = 0;
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let centre = img[y * w + x] as i32;
            let mut nsum: i64 = 0;
            let mut usan: i64 = 0;
            let mut grad: i64 = 0;
            for dy in -1i64..2 {
                for dx in -1i64..2 {
                    let ny = (y as i64 + dy) as usize;
                    let nx = (x as i64 + dx) as usize;
                    let np = img[ny * w + nx] as i32;
                    nsum += np as i64;
                    let absdiff = (np - centre).abs();
                    grad += absdiff as i64;
                    if absdiff < THRESHOLD {
                        usan += 1;
                    }
                }
            }
            match kernel {
                Kernel::Smoothing => {
                    acc += nsum / 9;
                    count += 1;
                }
                Kernel::Edges => {
                    acc += grad;
                    if grad > 200 {
                        count += 1;
                    }
                }
                Kernel::Corners => {
                    if usan <= 4 {
                        count += 1;
                        acc += y as i64 * 1000 + x as i64;
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    out.extend_from_slice(format!("{acc}\n").as_bytes());
    out.extend_from_slice(format!("{count}\n").as_bytes());
    out.extend_from_slice(format!("{}\n", acc * 31 + count).as_bytes());
    out
}

/// The `susan_corners` workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct SusanCorners;

/// The `susan_edges` workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct SusanEdges;

/// The `susan_smoothing` workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct SusanSmoothing;

impl Workload for SusanCorners {
    fn name(&self) -> &'static str {
        "susan_corners"
    }
    fn package(&self) -> &'static str {
        "automotive"
    }
    fn suite(&self) -> Suite {
        Suite::MiBench
    }
    fn description(&self) -> &'static str {
        "USAN-style corner detection on a black & white rectangle image"
    }
    fn build_module(&self, size: InputSize) -> Module {
        build_susan(Kernel::Corners, size)
    }
    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        reference_susan(Kernel::Corners, size)
    }
}

impl Workload for SusanEdges {
    fn name(&self) -> &'static str {
        "susan_edges"
    }
    fn package(&self) -> &'static str {
        "automotive"
    }
    fn suite(&self) -> Suite {
        Suite::MiBench
    }
    fn description(&self) -> &'static str {
        "gradient-based edge detection on a black & white rectangle image"
    }
    fn build_module(&self, size: InputSize) -> Module {
        build_susan(Kernel::Edges, size)
    }
    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        reference_susan(Kernel::Edges, size)
    }
}

impl Workload for SusanSmoothing {
    fn name(&self) -> &'static str {
        "susan_smoothing"
    }
    fn package(&self) -> &'static str {
        "automotive"
    }
    fn suite(&self) -> Suite {
        Suite::MiBench
    }
    fn description(&self) -> &'static str {
        "3x3 mean smoothing of a black & white rectangle image"
    }
    fn build_module(&self, size: InputSize) -> Module {
        build_susan(Kernel::Smoothing, size)
    }
    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        reference_susan(Kernel::Smoothing, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::execute_workload;

    #[test]
    fn all_variants_match_reference_on_both_sizes() {
        let workloads: [&dyn Workload; 3] = [&SusanCorners, &SusanEdges, &SusanSmoothing];
        for w in workloads {
            for size in InputSize::ALL {
                assert_eq!(
                    execute_workload(w, size),
                    w.reference_output(size),
                    "{} mismatch at {size}",
                    w.name()
                );
            }
        }
    }

    #[test]
    fn corners_finds_the_rectangle_corners() {
        let text = String::from_utf8(reference_susan(Kernel::Corners, InputSize::Small)).unwrap();
        let count: i64 = text.lines().nth(1).unwrap().parse().unwrap();
        assert!(
            count >= 4,
            "a rectangle has at least four corners, found {count}"
        );
        assert!(count < 40, "corner detector fires too often: {count}");
    }

    #[test]
    fn edges_finds_the_rectangle_outline() {
        let text = String::from_utf8(reference_susan(Kernel::Edges, InputSize::Small)).unwrap();
        let count: i64 = text.lines().nth(1).unwrap().parse().unwrap();
        let (w, h) = image_dims(InputSize::Small);
        assert!(count > 10, "the rectangle outline should produce edges");
        assert!(count < (w * h) as i64 / 2, "edges should be sparse");
    }

    #[test]
    fn smoothing_preserves_mean_brightness_roughly() {
        let (w, h) = image_dims(InputSize::Small);
        let img = image(InputSize::Small);
        let text = String::from_utf8(reference_susan(Kernel::Smoothing, InputSize::Small)).unwrap();
        let acc: i64 = text.lines().next().unwrap().parse().unwrap();
        let count: i64 = text.lines().nth(1).unwrap().parse().unwrap();
        let smoothed_mean = acc / count;
        let raw_mean: i64 = img.iter().map(|&p| p as i64).sum::<i64>() / (w as i64 * h as i64);
        assert!((smoothed_mean - raw_mean).abs() < 30);
    }

    #[test]
    fn variants_produce_distinct_outputs() {
        let a = reference_susan(Kernel::Corners, InputSize::Tiny);
        let b = reference_susan(Kernel::Edges, InputSize::Tiny);
        let c = reference_susan(Kernel::Smoothing, InputSize::Tiny);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }
}
