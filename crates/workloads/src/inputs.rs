//! Deterministic input generation shared by IR builders and Rust oracles.
//!
//! All inputs are derived from a small linear-congruential generator so that
//! the IR module's global initialisers and the reference implementation see
//! exactly the same data without depending on external files (the original
//! suites ship input files; see DESIGN.md for the substitution rationale).

/// A tiny deterministic PRNG (Numerical Recipes LCG).
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Lcg {
        Lcg {
            state: seed.wrapping_mul(6364136223846793005).wrapping_add(1),
        }
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.state >> 33) as u32
    }

    /// Uniform value in `0..bound` (bound must be non-zero).
    pub fn next_below(&mut self, bound: u32) -> u32 {
        self.next_u32() % bound
    }

    /// Uniform `i32` in `lo..hi`.
    pub fn next_range(&mut self, lo: i32, hi: i32) -> i32 {
        lo + (self.next_below((hi - lo) as u32) as i32)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.next_u32() as f64 / (u32::MAX as f64 + 1.0)
    }
}

/// Pseudo-random `i32` vector.
pub fn random_i32s(seed: u64, len: usize, lo: i32, hi: i32) -> Vec<i32> {
    let mut lcg = Lcg::new(seed);
    (0..len).map(|_| lcg.next_range(lo, hi)).collect()
}

/// Pseudo-random byte vector.
pub fn random_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut lcg = Lcg::new(seed);
    (0..len).map(|_| (lcg.next_u32() & 0xff) as u8).collect()
}

/// A synthetic black & white image of a filled rectangle on a plain
/// background — the input shape the susan benchmarks use ("a black & white
/// image of a rectangle", Table II).  Pixels are 0 (background) or 200
/// (rectangle), with mild deterministic noise.
pub fn rectangle_image(width: usize, height: usize) -> Vec<u8> {
    let mut img = vec![20u8; width * height];
    let (x0, y0) = (width / 4, height / 4);
    let (x1, y1) = (3 * width / 4, 3 * height / 4);
    let mut lcg = Lcg::new(0x5A5A);
    for y in 0..height {
        for x in 0..width {
            let inside = x >= x0 && x < x1 && y >= y0 && y < y1;
            let base = if inside { 200u8 } else { 20u8 };
            let noise = (lcg.next_below(5)) as u8;
            img[y * width + x] = base.saturating_add(noise);
        }
    }
    img
}

/// A synthetic text corpus for CRC32 / sha / stringsearch: a repeated,
/// slightly varied ASCII sentence.
pub fn ascii_text(len: usize) -> Vec<u8> {
    const BASE: &[u8] = b"the quick brown fox jumps over the lazy dog 0123456789 ";
    let mut out = Vec::with_capacity(len);
    let mut lcg = Lcg::new(0xA5C11);
    while out.len() < len {
        for &b in BASE {
            if out.len() >= len {
                break;
            }
            // Occasionally flip the case of a letter for variety.
            let b = if b.is_ascii_lowercase() && lcg.next_below(17) == 0 {
                b.to_ascii_uppercase()
            } else {
                b
            };
            out.push(b);
        }
    }
    out
}

/// A random connected adjacency matrix with `n` nodes; `0` means no edge.
/// Weights are in `1..=9`.  The graph is made connected by a ring backbone.
pub fn adjacency_matrix(n: usize, extra_edges: usize, seed: u64) -> Vec<i32> {
    let mut m = vec![0i32; n * n];
    let mut lcg = Lcg::new(seed);
    for i in 0..n {
        let j = (i + 1) % n;
        let w = lcg.next_range(1, 10);
        m[i * n + j] = w;
        m[j * n + i] = w;
    }
    for _ in 0..extra_edges {
        let i = lcg.next_below(n as u32) as usize;
        let j = lcg.next_below(n as u32) as usize;
        if i != j {
            let w = lcg.next_range(1, 10);
            m[i * n + j] = w;
            m[j * n + i] = w;
        }
    }
    m
}

/// An undirected graph in compressed adjacency-list form (CSR), returned as
/// `(row_offsets, neighbours)`, connected via a ring plus random chords.
pub fn csr_graph(n: usize, extra_edges: usize, seed: u64) -> (Vec<i32>, Vec<i32>) {
    let mut adj: Vec<Vec<i32>> = vec![Vec::new(); n];
    let add = |adj: &mut Vec<Vec<i32>>, a: usize, b: usize| {
        if a != b && !adj[a].contains(&(b as i32)) {
            adj[a].push(b as i32);
            adj[b].push(a as i32);
        }
    };
    for i in 0..n {
        add(&mut adj, i, (i + 1) % n);
    }
    let mut lcg = Lcg::new(seed);
    for _ in 0..extra_edges {
        let a = lcg.next_below(n as u32) as usize;
        let b = lcg.next_below(n as u32) as usize;
        add(&mut adj, a, b);
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut neighbours = Vec::new();
    offsets.push(0);
    for list in &adj {
        neighbours.extend_from_slice(list);
        offsets.push(neighbours.len() as i32);
    }
    (offsets, neighbours)
}

/// A sparse matrix in coordinate (COO) format: `(rows, cols, values, n)` with
/// roughly `nnz` non-zeros on an `n x n` matrix (always includes the diagonal).
pub fn coo_matrix(n: usize, nnz_extra: usize, seed: u64) -> (Vec<i32>, Vec<i32>, Vec<f64>, usize) {
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    let mut lcg = Lcg::new(seed);
    for i in 0..n {
        rows.push(i as i32);
        cols.push(i as i32);
        vals.push(1.0 + lcg.next_f64() * 4.0);
    }
    for _ in 0..nnz_extra {
        let r = lcg.next_below(n as u32) as i32;
        let c = lcg.next_below(n as u32) as i32;
        rows.push(r);
        cols.push(c);
        vals.push(lcg.next_f64() * 2.0 - 1.0);
    }
    (rows, cols, vals, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let a: Vec<u32> = {
            let mut l = Lcg::new(7);
            (0..10).map(|_| l.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut l = Lcg::new(7);
            (0..10).map(|_| l.next_u32()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut l = Lcg::new(8);
            (0..10).map(|_| l.next_u32()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_are_respected() {
        let mut l = Lcg::new(3);
        for _ in 0..100 {
            let v = l.next_range(-5, 5);
            assert!((-5..5).contains(&v));
            let f = l.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(l.next_below(7) < 7);
        }
    }

    #[test]
    fn rectangle_image_has_two_intensity_regions() {
        let img = rectangle_image(16, 16);
        assert_eq!(img.len(), 256);
        let bright = img.iter().filter(|&&p| p > 100).count();
        assert!(bright > 32 && bright < 160);
    }

    #[test]
    fn ascii_text_is_ascii_and_exact_length() {
        let t = ascii_text(333);
        assert_eq!(t.len(), 333);
        assert!(t.iter().all(|b| b.is_ascii()));
    }

    #[test]
    fn adjacency_matrix_is_symmetric_and_connected_ring() {
        let n = 12;
        let m = adjacency_matrix(n, 10, 1);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(m[i * n + j], m[j * n + i]);
            }
            assert!(m[i * n + (i + 1) % n] > 0);
        }
    }

    #[test]
    fn csr_graph_offsets_are_monotone() {
        let (offsets, neighbours) = csr_graph(20, 15, 2);
        assert_eq!(offsets.len(), 21);
        assert_eq!(*offsets.last().unwrap() as usize, neighbours.len());
        for w in offsets.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(neighbours.iter().all(|&v| (v as usize) < 20));
    }

    #[test]
    fn coo_matrix_includes_diagonal() {
        let (rows, cols, vals, n) = coo_matrix(8, 20, 3);
        assert_eq!(n, 8);
        assert_eq!(rows.len(), cols.len());
        assert_eq!(rows.len(), vals.len());
        for i in 0..8 {
            assert!(rows.iter().zip(&cols).any(|(&r, &c)| r == i && c == i));
        }
    }
}
