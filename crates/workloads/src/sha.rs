//! `sha` (MiBench / security): SHA-1 digest of an ASCII buffer.

use crate::inputs;
use crate::workload::{InputSize, Suite, Workload};
use mbfi_ir::{Module, ModuleBuilder, Operand, Type};

/// The `sha` workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct Sha;

impl Sha {
    fn input(size: InputSize) -> Vec<u8> {
        let len = match size {
            InputSize::Tiny => 96,
            InputSize::Small => 512,
        };
        inputs::ascii_text(len)
    }

    /// SHA-1 padding: append `0x80`, zero-fill to 56 mod 64, append the
    /// bit length as a big-endian u64.
    fn pad(message: &[u8]) -> Vec<u8> {
        let mut out = message.to_vec();
        let bit_len = (message.len() as u64) * 8;
        out.push(0x80);
        while out.len() % 64 != 56 {
            out.push(0);
        }
        out.extend_from_slice(&bit_len.to_be_bytes());
        out
    }

    /// Reference SHA-1, returning the five state words.
    pub fn sha1(message: &[u8]) -> [u32; 5] {
        let padded = Self::pad(message);
        let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
        let mut w = [0u32; 80];
        for chunk in padded.chunks_exact(64) {
            for i in 0..16 {
                w[i] = u32::from_be_bytes([
                    chunk[4 * i],
                    chunk[4 * i + 1],
                    chunk[4 * i + 2],
                    chunk[4 * i + 3],
                ]);
            }
            for i in 16..80 {
                w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
            }
            let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
            for (i, &wi) in w.iter().enumerate() {
                let (f, k) = match i {
                    0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                    20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                    40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                    _ => (b ^ c ^ d, 0xCA62C1D6),
                };
                let temp = a
                    .rotate_left(5)
                    .wrapping_add(f)
                    .wrapping_add(e)
                    .wrapping_add(k)
                    .wrapping_add(wi);
                e = d;
                d = c;
                c = b.rotate_left(30);
                b = a;
                a = temp;
            }
            h[0] = h[0].wrapping_add(a);
            h[1] = h[1].wrapping_add(b);
            h[2] = h[2].wrapping_add(c);
            h[3] = h[3].wrapping_add(d);
            h[4] = h[4].wrapping_add(e);
        }
        h
    }
}

impl Workload for Sha {
    fn name(&self) -> &'static str {
        "sha"
    }

    fn package(&self) -> &'static str {
        "security"
    }

    fn suite(&self) -> Suite {
        Suite::MiBench
    }

    fn description(&self) -> &'static str {
        "SHA-1 digest (five 32-bit state words) of an ASCII buffer"
    }

    fn build_module(&self, size: InputSize) -> Module {
        let padded = Self::pad(&Self::input(size));
        let nchunks = (padded.len() / 64) as i64;

        let mut mb = ModuleBuilder::new("sha");
        let msg = mb.global_bytes("message", padded);
        let init = mb.global_i32s(
            "h_init",
            &[
                0x67452301u32 as i32,
                0xEFCDAB89u32 as i32,
                0x98BADCFEu32 as i32,
                0x10325476u32 as i32,
                0xC3D2E1F0u32 as i32,
            ],
        );

        // rotl(x, n) = (x << n) | (x >> (32 - n))
        let rotl = mb.declare(
            "rotl",
            &[(Type::I32, "x"), (Type::I32, "n")],
            Some(Type::I32),
        );
        let main = mb.declare("main", &[], None);

        {
            let mut f = mb.define(rotl);
            let x = f.param(0);
            let n = f.param(1);
            let left = f.shl(Type::I32, x, n);
            let inv = f.sub(Type::I32, 32i32, n);
            let right = f.lshr(Type::I32, x, inv);
            let out = f.or(Type::I32, left, right);
            f.ret(out);
        }

        {
            let mut f = mb.define(main);
            let h = f.alloca(Type::I32, 5i64);
            f.counted_loop(Type::I64, 0i64, 5i64, |f, i| {
                let v = f.load_elem(Type::I32, init, i);
                f.store_elem(Type::I32, h, i, v);
            });
            let w = f.alloca(Type::I32, 80i64);

            f.counted_loop(Type::I64, 0i64, nchunks, |f, chunk| {
                let base = f.mul(Type::I64, chunk, 64i64);

                // Message schedule w[0..16] from big-endian bytes.
                f.counted_loop(Type::I64, 0i64, 16i64, |f, i| {
                    let word_off = f.mul(Type::I64, i, 4i64);
                    let off = f.add(Type::I64, base, word_off);
                    let acc = f.slot(Type::I32);
                    f.store(Type::I32, 0i32, acc);
                    f.counted_loop(Type::I64, 0i64, 4i64, |f, b| {
                        let idx = f.add(Type::I64, off, b);
                        let byte = f.load_elem(Type::I8, msg, idx);
                        let byte32 = f.zext(Type::I8, Type::I32, byte);
                        let cur = f.load(Type::I32, acc);
                        let shifted = f.shl(Type::I32, cur, 8i32);
                        let next = f.or(Type::I32, shifted, byte32);
                        f.store(Type::I32, next, acc);
                    });
                    let word = f.load(Type::I32, acc);
                    f.store_elem(Type::I32, w, i, word);
                });

                // Expand w[16..80].
                f.counted_loop(Type::I64, 16i64, 80i64, |f, i| {
                    let i3 = f.sub(Type::I64, i, 3i64);
                    let w3 = f.load_elem(Type::I32, w, i3);
                    let i8v = f.sub(Type::I64, i, 8i64);
                    let w8 = f.load_elem(Type::I32, w, i8v);
                    let i14 = f.sub(Type::I64, i, 14i64);
                    let w14 = f.load_elem(Type::I32, w, i14);
                    let i16v = f.sub(Type::I64, i, 16i64);
                    let w16 = f.load_elem(Type::I32, w, i16v);
                    let x1 = f.xor(Type::I32, w3, w8);
                    let x2 = f.xor(Type::I32, x1, w14);
                    let x3 = f.xor(Type::I32, x2, w16);
                    let rot = f
                        .call(
                            rotl,
                            &[Operand::Reg(x3), Operand::Const(mbfi_ir::Constant::i32(1))],
                            Some(Type::I32),
                        )
                        .unwrap();
                    f.store_elem(Type::I32, w, i, rot);
                });

                // Working variables.
                let a = f.slot(Type::I32);
                let b = f.slot(Type::I32);
                let c = f.slot(Type::I32);
                let d = f.slot(Type::I32);
                let e = f.slot(Type::I32);
                for (slot, idx) in [(a, 0i64), (b, 1), (c, 2), (d, 3), (e, 4)] {
                    let v = f.load_elem(Type::I32, h, idx);
                    f.store(Type::I32, v, slot);
                }

                f.counted_loop(Type::I64, 0i64, 80i64, |f, i| {
                    let bv = f.load(Type::I32, b);
                    let cv = f.load(Type::I32, c);
                    let dv = f.load(Type::I32, d);

                    let fval = f.slot(Type::I32);
                    let kval = f.slot(Type::I32);
                    let lt20 = f.icmp(mbfi_ir::IcmpPred::Slt, Type::I64, i, 20i64);
                    let lt40 = f.icmp(mbfi_ir::IcmpPred::Slt, Type::I64, i, 40i64);
                    let lt60 = f.icmp(mbfi_ir::IcmpPred::Slt, Type::I64, i, 60i64);
                    f.if_else(
                        lt20,
                        |f| {
                            let bc = f.and(Type::I32, bv, cv);
                            let nb = f.xor(Type::I32, bv, -1i32);
                            let nbd = f.and(Type::I32, nb, dv);
                            let fv = f.or(Type::I32, bc, nbd);
                            f.store(Type::I32, fv, fval);
                            f.store(Type::I32, 0x5A827999u32 as i32, kval);
                        },
                        |f| {
                            f.if_else(
                                lt40,
                                |f| {
                                    let x = f.xor(Type::I32, bv, cv);
                                    let fv = f.xor(Type::I32, x, dv);
                                    f.store(Type::I32, fv, fval);
                                    f.store(Type::I32, 0x6ED9EBA1u32 as i32, kval);
                                },
                                |f| {
                                    f.if_else(
                                        lt60,
                                        |f| {
                                            let bc = f.and(Type::I32, bv, cv);
                                            let bd = f.and(Type::I32, bv, dv);
                                            let cd = f.and(Type::I32, cv, dv);
                                            let o1 = f.or(Type::I32, bc, bd);
                                            let fv = f.or(Type::I32, o1, cd);
                                            f.store(Type::I32, fv, fval);
                                            f.store(Type::I32, 0x8F1BBCDCu32 as i32, kval);
                                        },
                                        |f| {
                                            let x = f.xor(Type::I32, bv, cv);
                                            let fv = f.xor(Type::I32, x, dv);
                                            f.store(Type::I32, fv, fval);
                                            f.store(Type::I32, 0xCA62C1D6u32 as i32, kval);
                                        },
                                    );
                                },
                            );
                        },
                    );

                    let av = f.load(Type::I32, a);
                    let rot5 = f
                        .call(
                            rotl,
                            &[Operand::Reg(av), Operand::Const(mbfi_ir::Constant::i32(5))],
                            Some(Type::I32),
                        )
                        .unwrap();
                    let fv = f.load(Type::I32, fval);
                    let kv = f.load(Type::I32, kval);
                    let ev = f.load(Type::I32, e);
                    let wi = f.load_elem(Type::I32, w, i);
                    let t1 = f.add(Type::I32, rot5, fv);
                    let t2 = f.add(Type::I32, t1, ev);
                    let t3 = f.add(Type::I32, t2, kv);
                    let temp = f.add(Type::I32, t3, wi);

                    let dv2 = f.load(Type::I32, d);
                    f.store(Type::I32, dv2, e);
                    let cv2 = f.load(Type::I32, c);
                    f.store(Type::I32, cv2, d);
                    let bv2 = f.load(Type::I32, b);
                    let rot30 = f
                        .call(
                            rotl,
                            &[
                                Operand::Reg(bv2),
                                Operand::Const(mbfi_ir::Constant::i32(30)),
                            ],
                            Some(Type::I32),
                        )
                        .unwrap();
                    f.store(Type::I32, rot30, c);
                    let av2 = f.load(Type::I32, a);
                    f.store(Type::I32, av2, b);
                    f.store(Type::I32, temp, a);
                });

                for (slot, idx) in [(a, 0i64), (b, 1), (c, 2), (d, 3), (e, 4)] {
                    let hv = f.load_elem(Type::I32, h, idx);
                    let sv = f.load(Type::I32, slot);
                    let sum = f.add(Type::I32, hv, sv);
                    f.store_elem(Type::I32, h, idx, sum);
                }
            });

            f.counted_loop(Type::I64, 0i64, 5i64, |f, i| {
                let v = f.load_elem(Type::I32, h, i);
                let wide = f.zext(Type::I32, Type::I64, v);
                f.print_i64(wide);
            });
            f.ret_void();
        }

        mb.set_entry(main);
        mb.finish()
    }

    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        let digest = Self::sha1(&Self::input(size));
        let mut out = Vec::new();
        for word in digest {
            out.extend_from_slice(format!("{}\n", word as u64).as_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::execute_workload;

    #[test]
    fn matches_reference_on_both_sizes() {
        for size in InputSize::ALL {
            assert_eq!(
                execute_workload(&Sha, size),
                Sha.reference_output(size),
                "mismatch at {size}"
            );
        }
    }

    #[test]
    fn sha1_matches_known_test_vectors() {
        // SHA-1("abc") = a9993e36 4706816a ba3e2571 7850c26c 9cd0d89d
        assert_eq!(
            Sha::sha1(b"abc"),
            [0xa9993e36, 0x4706816a, 0xba3e2571, 0x7850c26c, 0x9cd0d89d]
        );
        // SHA-1("") = da39a3ee 5e6b4b0d 3255bfef 95601890 afd80709
        assert_eq!(
            Sha::sha1(b""),
            [0xda39a3ee, 0x5e6b4b0d, 0x3255bfef, 0x95601890, 0xafd80709]
        );
    }

    #[test]
    fn padding_length_is_a_multiple_of_64() {
        for len in [0usize, 1, 55, 56, 63, 64, 100] {
            let padded = Sha::pad(&vec![0xAA; len]);
            assert_eq!(padded.len() % 64, 0, "padding broken for length {len}");
        }
    }
}
