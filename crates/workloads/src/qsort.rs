//! `qsort` (MiBench / automotive): quicksort over a pseudo-random array,
//! followed by a positional checksum of the sorted data.

use crate::inputs;
use crate::workload::{InputSize, Suite, Workload};
use mbfi_ir::{IcmpPred, Module, ModuleBuilder, Operand, Reg, Type};

/// The `qsort` workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct QSort;

impl QSort {
    fn input(size: InputSize) -> Vec<i32> {
        let len = match size {
            InputSize::Tiny => 48,
            InputSize::Small => 200,
        };
        inputs::random_i32s(0x9_50F7, len, -5_000, 5_000)
    }
}

impl Workload for QSort {
    fn name(&self) -> &'static str {
        "qsort"
    }

    fn package(&self) -> &'static str {
        "automotive"
    }

    fn suite(&self) -> Suite {
        Suite::MiBench
    }

    fn description(&self) -> &'static str {
        "quicksort of a pseudo-random integer array plus a positional checksum"
    }

    fn build_module(&self, size: InputSize) -> Module {
        let data = Self::input(size);
        let n = data.len() as i64;

        let mut mb = ModuleBuilder::new("qsort");
        let array = mb.global_i32s("data", &data);

        // quicksort(arr: ptr, lo: i64, hi: i64)
        let quicksort = mb.declare(
            "quicksort",
            &[(Type::Ptr, "arr"), (Type::I64, "lo"), (Type::I64, "hi")],
            None,
        );
        let main = mb.declare("main", &[], None);

        {
            let mut f = mb.define(quicksort);
            let arr = f.param(0);
            let lo = f.param(1);
            let hi = f.param(2);

            let done = f.icmp(IcmpPred::Sge, Type::I64, lo, hi);
            let ret_bb = f.new_block("early.ret");
            let work_bb = f.new_block("work");
            f.cond_br(done, ret_bb, work_bb);
            f.switch_to(ret_bb);
            f.ret_void();

            f.switch_to(work_bb);
            // Lomuto partition with pivot = arr[hi].
            let pivot = f.load_elem(Type::I32, arr, hi);
            let store_idx = f.slot(Type::I64);
            f.store(Type::I64, lo, store_idx);

            f.counted_loop(Type::I64, lo, hi, |f, j| {
                let vj = f.load_elem(Type::I32, arr, j);
                let lt = f.icmp(IcmpPred::Slt, Type::I32, vj, pivot);
                f.if_then(lt, |f| {
                    let i = f.load(Type::I64, store_idx);
                    let vi = f.load_elem(Type::I32, arr, i);
                    let vj2 = f.load_elem(Type::I32, arr, j);
                    f.store_elem(Type::I32, arr, i, vj2);
                    f.store_elem(Type::I32, arr, j, vi);
                    let inext = f.add(Type::I64, i, 1i64);
                    f.store(Type::I64, inext, store_idx);
                });
            });

            let i = f.load(Type::I64, store_idx);
            let vi = f.load_elem(Type::I32, arr, i);
            let vhi = f.load_elem(Type::I32, arr, hi);
            f.store_elem(Type::I32, arr, i, vhi);
            f.store_elem(Type::I32, arr, hi, vi);

            let left_hi = f.sub(Type::I64, i, 1i64);
            let right_lo = f.add(Type::I64, i, 1i64);
            f.call(
                quicksort,
                &[Operand::Reg(arr), Operand::Reg(lo), Operand::Reg(left_hi)],
                None,
            );
            f.call(
                quicksort,
                &[Operand::Reg(arr), Operand::Reg(right_lo), Operand::Reg(hi)],
                None,
            );
            f.ret_void();
        }

        {
            let mut f = mb.define(main);
            let last = n - 1;
            let arr_slot = f.slot(Type::Ptr);
            // Materialise the global address through a register so the sort
            // operates on pointer-carrying registers, like the original C code.
            f.store(Type::Ptr, array, arr_slot);
            let arr: Reg = f.load(Type::Ptr, arr_slot);
            f.call(
                quicksort,
                &[
                    Operand::Reg(arr),
                    Operand::Const(mbfi_ir::Constant::i64(0)),
                    Operand::Const(mbfi_ir::Constant::i64(last)),
                ],
                None,
            );

            // Positional checksum: sum (i+1) * arr[i], plus order verification.
            let checksum = f.slot(Type::I64);
            f.store(Type::I64, 0i64, checksum);
            let sorted_flag = f.slot(Type::I64);
            f.store(Type::I64, 1i64, sorted_flag);
            f.counted_loop(Type::I64, 0i64, n, |f, i| {
                let v = f.load_elem(Type::I32, arr, i);
                let v64 = f.sext_to_i64(Type::I32, v);
                let ip1 = f.add(Type::I64, i, 1i64);
                let term = f.mul(Type::I64, v64, ip1);
                let cur = f.load(Type::I64, checksum);
                let next = f.add(Type::I64, cur, term);
                f.store(Type::I64, next, checksum);

                let has_prev = f.icmp(IcmpPred::Sgt, Type::I64, i, 0i64);
                f.if_then(has_prev, |f| {
                    let prev_idx = f.sub(Type::I64, i, 1i64);
                    let prev = f.load_elem(Type::I32, arr, prev_idx);
                    let out_of_order = f.icmp(IcmpPred::Sgt, Type::I32, prev, v);
                    f.if_then(out_of_order, |f| {
                        f.store(Type::I64, 0i64, sorted_flag);
                    });
                });
            });
            let cs = f.load(Type::I64, checksum);
            f.print_i64(cs);
            let flag = f.load(Type::I64, sorted_flag);
            f.print_i64(flag);
            let first = f.load_elem(Type::I32, arr, 0i64);
            f.print_i64(first);
            let last_v = f.load_elem(Type::I32, arr, last);
            f.print_i64(last_v);
            f.ret_void();
        }

        mb.set_entry(main);
        mb.finish()
    }

    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        let mut data = Self::input(size);
        data.sort_unstable();
        let mut out = Vec::new();
        let checksum: i64 = data
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as i64 + 1) * v as i64)
            .sum();
        let sorted = data.windows(2).all(|w| w[0] <= w[1]) as i64;
        out.extend_from_slice(format!("{checksum}\n").as_bytes());
        out.extend_from_slice(format!("{sorted}\n").as_bytes());
        out.extend_from_slice(format!("{}\n", data[0]).as_bytes());
        out.extend_from_slice(format!("{}\n", data[data.len() - 1]).as_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::execute_workload;

    #[test]
    fn matches_reference_on_both_sizes() {
        for size in InputSize::ALL {
            assert_eq!(
                execute_workload(&QSort, size),
                QSort.reference_output(size),
                "mismatch at {size}"
            );
        }
    }

    #[test]
    fn reference_reports_sorted_output() {
        let text = String::from_utf8(QSort.reference_output(InputSize::Tiny)).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[1], "1", "sorted flag must be set");
        let first: i32 = lines[2].parse().unwrap();
        let last: i32 = lines[3].parse().unwrap();
        assert!(first <= last);
    }

    #[test]
    fn input_is_not_already_sorted() {
        let data = QSort::input(InputSize::Small);
        assert!(data.windows(2).any(|w| w[0] > w[1]));
    }
}
