//! `FFT` / `IFFT` (MiBench / telecomm): iterative radix-2 fast Fourier
//! transform (and its inverse) over an array of pseudo-random samples.

use crate::inputs::Lcg;
use crate::workload::{InputSize, Suite, Workload};
use mbfi_ir::{IcmpPred, Intrinsic, Module, ModuleBuilder, Operand, Type};

fn points(size: InputSize) -> usize {
    match size {
        InputSize::Tiny => 16,
        InputSize::Small => 64,
    }
}

fn samples(size: InputSize) -> Vec<f64> {
    let n = points(size);
    let mut lcg = Lcg::new(0xFF7_0001);
    (0..n).map(|_| lcg.next_f64() * 2.0 - 1.0).collect()
}

/// Build the FFT or IFFT module.
fn build_fft(inverse: bool, size: InputSize) -> Module {
    let n = points(size);
    let log2n = n.trailing_zeros() as i64;
    let ni = n as i64;
    let input = samples(size);

    let name = if inverse { "IFFT" } else { "FFT" };
    let mut mb = ModuleBuilder::new(name);
    let input_table = mb.global_f64s("samples", &input);

    let main = mb.declare("main", &[], None);
    {
        let mut f = mb.define(main);
        let re = f.alloca(Type::F64, ni);
        let im = f.alloca(Type::F64, ni);

        // Load the input samples (imaginary parts start at zero).
        f.counted_loop(Type::I64, 0i64, ni, |f, i| {
            let v = f.load_elem(Type::F64, input_table, i);
            f.store_elem(Type::F64, re, i, v);
            f.store_elem(Type::F64, im, i, 0.0f64);
        });

        // Bit-reversal permutation.
        f.counted_loop(Type::I64, 0i64, ni, |f, i| {
            let j_slot = f.slot(Type::I64);
            f.store(Type::I64, 0i64, j_slot);
            let t_slot = f.slot(Type::I64);
            f.store(Type::I64, i, t_slot);
            f.counted_loop(Type::I64, 0i64, log2n, |f, _| {
                let j = f.load(Type::I64, j_slot);
                let t = f.load(Type::I64, t_slot);
                let j2 = f.shl(Type::I64, j, 1i64);
                let bit = f.and(Type::I64, t, 1i64);
                let jn = f.or(Type::I64, j2, bit);
                f.store(Type::I64, jn, j_slot);
                let tn = f.lshr(Type::I64, t, 1i64);
                f.store(Type::I64, tn, t_slot);
            });
            let j = f.load(Type::I64, j_slot);
            let swap = f.icmp(IcmpPred::Slt, Type::I64, i, j);
            f.if_then(swap, |f| {
                let ri = f.load_elem(Type::F64, re, i);
                let rj = f.load_elem(Type::F64, re, j);
                f.store_elem(Type::F64, re, i, rj);
                f.store_elem(Type::F64, re, j, ri);
                let ii = f.load_elem(Type::F64, im, i);
                let ij = f.load_elem(Type::F64, im, j);
                f.store_elem(Type::F64, im, i, ij);
                f.store_elem(Type::F64, im, j, ii);
            });
        });

        // Butterfly stages.
        let sign = if inverse { 1.0 } else { -1.0 };
        f.counted_loop(Type::I64, 1i64, log2n + 1, |f, s| {
            let len = f.shl(Type::I64, 1i64, s);
            let half = f.lshr(Type::I64, len, 1i64);
            let len_f = f.sitofp(Type::I64, len);
            let tau = f.fmul(len_f, 1.0f64);
            let ang = f.fdiv(sign * 2.0 * std::f64::consts::PI, tau);
            let wlen_re = f.cos(ang);
            let wlen_im = f.sin(ang);
            let blocks = f.sdiv(Type::I64, ni, len);

            f.counted_loop(Type::I64, 0i64, blocks, |f, b| {
                let i0 = f.mul(Type::I64, b, len);
                let w_re = f.slot(Type::F64);
                f.store(Type::F64, 1.0f64, w_re);
                let w_im = f.slot(Type::F64);
                f.store(Type::F64, 0.0f64, w_im);

                f.counted_loop(Type::I64, 0i64, half, |f, j| {
                    let idx1 = f.add(Type::I64, i0, j);
                    let idx2 = f.add(Type::I64, idx1, half);
                    let u_re = f.load_elem(Type::F64, re, idx1);
                    let u_im = f.load_elem(Type::F64, im, idx1);
                    let v_re0 = f.load_elem(Type::F64, re, idx2);
                    let v_im0 = f.load_elem(Type::F64, im, idx2);
                    let wr = f.load(Type::F64, w_re);
                    let wi = f.load(Type::F64, w_im);

                    let a = f.fmul(v_re0, wr);
                    let b2 = f.fmul(v_im0, wi);
                    let v_re = f.fsub(a, b2);
                    let c = f.fmul(v_re0, wi);
                    let d = f.fmul(v_im0, wr);
                    let v_im = f.fadd(c, d);

                    let sum_re = f.fadd(u_re, v_re);
                    let sum_im = f.fadd(u_im, v_im);
                    let diff_re = f.fsub(u_re, v_re);
                    let diff_im = f.fsub(u_im, v_im);
                    f.store_elem(Type::F64, re, idx1, sum_re);
                    f.store_elem(Type::F64, im, idx1, sum_im);
                    f.store_elem(Type::F64, re, idx2, diff_re);
                    f.store_elem(Type::F64, im, idx2, diff_im);

                    let nw_a = f.fmul(wr, wlen_re);
                    let nw_b = f.fmul(wi, wlen_im);
                    let nw_re = f.fsub(nw_a, nw_b);
                    let nw_c = f.fmul(wr, wlen_im);
                    let nw_d = f.fmul(wi, wlen_re);
                    let nw_im = f.fadd(nw_c, nw_d);
                    f.store(Type::F64, nw_re, w_re);
                    f.store(Type::F64, nw_im, w_im);
                });
            });
        });

        // Inverse transforms are scaled by 1/n.
        if inverse {
            f.counted_loop(Type::I64, 0i64, ni, |f, i| {
                let r = f.load_elem(Type::F64, re, i);
                let rn = f.fdiv(r, ni as f64);
                f.store_elem(Type::F64, re, i, rn);
                let v = f.load_elem(Type::F64, im, i);
                let vn = f.fdiv(v, ni as f64);
                f.store_elem(Type::F64, im, i, vn);
            });
        }

        // Print the first four bins and an L1 magnitude checksum.
        f.counted_loop(Type::I64, 0i64, 4i64, |f, i| {
            let r = f.load_elem(Type::F64, re, i);
            f.print_f64(r);
            let v = f.load_elem(Type::F64, im, i);
            f.print_f64(v);
        });
        let total = f.slot(Type::F64);
        f.store(Type::F64, 0.0f64, total);
        f.counted_loop(Type::I64, 0i64, ni, |f, i| {
            let r = f.load_elem(Type::F64, re, i);
            let ra = f
                .intrinsic(Intrinsic::Fabs, &[Operand::Reg(r)], Some(Type::F64))
                .unwrap();
            let v = f.load_elem(Type::F64, im, i);
            let va = f
                .intrinsic(Intrinsic::Fabs, &[Operand::Reg(v)], Some(Type::F64))
                .unwrap();
            let cur = f.load(Type::F64, total);
            let t1 = f.fadd(cur, ra);
            let t2 = f.fadd(t1, va);
            f.store(Type::F64, t2, total);
        });
        let checksum = f.load(Type::F64, total);
        f.print_f64(checksum);
        f.ret_void();
    }
    mb.set_entry(main);
    mb.finish()
}

/// Rust oracle mirroring `build_fft` operation for operation.
fn reference_fft(inverse: bool, size: InputSize) -> Vec<u8> {
    let n = points(size);
    let log2n = n.trailing_zeros();
    let input = samples(size);
    let mut re: Vec<f64> = input.clone();
    let mut im: Vec<f64> = vec![0.0; n];

    for i in 0..n {
        let mut j = 0usize;
        let mut t = i;
        for _ in 0..log2n {
            j = (j << 1) | (t & 1);
            t >>= 1;
        }
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }

    let sign = if inverse { 1.0 } else { -1.0 };
    for s in 1..=log2n as usize {
        let len = 1usize << s;
        let half = len >> 1;
        let ang = (sign * 2.0 * std::f64::consts::PI) / (len as f64 * 1.0);
        let wlen_re = ang.cos();
        let wlen_im = ang.sin();
        let blocks = n / len;
        for b in 0..blocks {
            let i0 = b * len;
            let mut wr = 1.0f64;
            let mut wi = 0.0f64;
            for j in 0..half {
                let idx1 = i0 + j;
                let idx2 = idx1 + half;
                let (u_re, u_im) = (re[idx1], im[idx1]);
                let (v_re0, v_im0) = (re[idx2], im[idx2]);
                let v_re = v_re0 * wr - v_im0 * wi;
                let v_im = v_re0 * wi + v_im0 * wr;
                re[idx1] = u_re + v_re;
                im[idx1] = u_im + v_im;
                re[idx2] = u_re - v_re;
                im[idx2] = u_im - v_im;
                let nw_re = wr * wlen_re - wi * wlen_im;
                let nw_im = wr * wlen_im + wi * wlen_re;
                wr = nw_re;
                wi = nw_im;
            }
        }
    }

    if inverse {
        for i in 0..n {
            re[i] /= n as f64;
            im[i] /= n as f64;
        }
    }

    let mut out = Vec::new();
    let print_f64 = |out: &mut Vec<u8>, v: f64| {
        let text = if v.is_finite() {
            format!("{v:.6}\n")
        } else {
            format!("{v}\n")
        };
        out.extend_from_slice(text.as_bytes());
    };
    for i in 0..4 {
        print_f64(&mut out, re[i]);
        print_f64(&mut out, im[i]);
    }
    let mut total = 0.0f64;
    for i in 0..n {
        total += re[i].abs();
        total += im[i].abs();
    }
    print_f64(&mut out, total);
    out
}

/// The `FFT` workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fft;

/// The `IFFT` workload.
#[derive(Debug, Default, Clone, Copy)]
pub struct Ifft;

impl Workload for Fft {
    fn name(&self) -> &'static str {
        "FFT"
    }
    fn package(&self) -> &'static str {
        "telecomm"
    }
    fn suite(&self) -> Suite {
        Suite::MiBench
    }
    fn description(&self) -> &'static str {
        "radix-2 fast Fourier transform over pseudo-random samples"
    }
    fn build_module(&self, size: InputSize) -> Module {
        build_fft(false, size)
    }
    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        reference_fft(false, size)
    }
}

impl Workload for Ifft {
    fn name(&self) -> &'static str {
        "IFFT"
    }
    fn package(&self) -> &'static str {
        "telecomm"
    }
    fn suite(&self) -> Suite {
        Suite::MiBench
    }
    fn description(&self) -> &'static str {
        "inverse radix-2 Fourier transform over pseudo-random samples"
    }
    fn build_module(&self, size: InputSize) -> Module {
        build_fft(true, size)
    }
    fn reference_output(&self, size: InputSize) -> Vec<u8> {
        reference_fft(true, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::execute_workload;

    #[test]
    fn fft_matches_reference_on_both_sizes() {
        for size in InputSize::ALL {
            assert_eq!(
                execute_workload(&Fft, size),
                Fft.reference_output(size),
                "FFT mismatch at {size}"
            );
        }
    }

    #[test]
    fn ifft_matches_reference_on_both_sizes() {
        for size in InputSize::ALL {
            assert_eq!(
                execute_workload(&Ifft, size),
                Ifft.reference_output(size),
                "IFFT mismatch at {size}"
            );
        }
    }

    #[test]
    fn forward_then_inverse_recovers_the_signal() {
        // Validate the transform algebra of the oracle itself: FFT followed by
        // IFFT (on the FFT's output) must recover the original samples.
        let n = points(InputSize::Tiny);
        let input = samples(InputSize::Tiny);
        let mut re = input.clone();
        let mut im = vec![0.0f64; n];
        fft_in_place(&mut re, &mut im, false);
        fft_in_place(&mut re, &mut im, true);
        for i in 0..n {
            re[i] /= n as f64;
            im[i] /= n as f64;
        }
        for i in 0..n {
            assert!((re[i] - input[i]).abs() < 1e-9, "bin {i} diverges");
            assert!(im[i].abs() < 1e-9);
        }
    }

    #[test]
    fn dc_bin_is_the_sample_sum() {
        let input = samples(InputSize::Tiny);
        let mut re = input.clone();
        let mut im = vec![0.0f64; input.len()];
        fft_in_place(&mut re, &mut im, false);
        let expected: f64 = input.iter().sum();
        assert!((re[0] - expected).abs() < 1e-9);
    }

    /// Test-only helper mirroring the oracle's butterfly loop.
    fn fft_in_place(re: &mut [f64], im: &mut [f64], inverse: bool) {
        let n = re.len();
        let log2n = n.trailing_zeros();
        for i in 0..n {
            let mut j = 0usize;
            let mut t = i;
            for _ in 0..log2n {
                j = (j << 1) | (t & 1);
                t >>= 1;
            }
            if i < j {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        let sign = if inverse { 1.0 } else { -1.0 };
        for s in 1..=log2n as usize {
            let len = 1usize << s;
            let half = len >> 1;
            let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
            let (wlen_re, wlen_im) = (ang.cos(), ang.sin());
            for b in 0..(n / len) {
                let i0 = b * len;
                let (mut wr, mut wi) = (1.0f64, 0.0f64);
                for j in 0..half {
                    let (idx1, idx2) = (i0 + j, i0 + j + half);
                    let (u_re, u_im) = (re[idx1], im[idx1]);
                    let v_re = re[idx2] * wr - im[idx2] * wi;
                    let v_im = re[idx2] * wi + im[idx2] * wr;
                    re[idx1] = u_re + v_re;
                    im[idx1] = u_im + v_im;
                    re[idx2] = u_re - v_re;
                    im[idx2] = u_im - v_im;
                    let nw_re = wr * wlen_re - wi * wlen_im;
                    let nw_im = wr * wlen_im + wi * wlen_re;
                    wr = nw_re;
                    wi = nw_im;
                }
            }
        }
    }
}
