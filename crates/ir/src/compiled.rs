//! Flat bytecode lowering: [`CompiledModule`].
//!
//! The tree-shaped [`Module`] is convenient to build and verify, but walking
//! it per dynamic instruction costs three nested `Vec` lookups
//! (`functions[f].blocks[b].instrs[i]`), plus recomputing per-instruction
//! facts (register-read counts, destination presence) that never change.
//! [`CompiledModule::lower`] flattens a module once into
//!
//! * one contiguous pre-decoded instruction array ([`CInstr`]) addressed by
//!   an absolute program counter, with every branch / jump target resolved
//!   to a PC,
//! * a parallel table of per-instruction static metadata ([`InstrMeta`]):
//!   coarse opcode, register-read count, destination flag and the
//!   candidate-set membership of both injection techniques (inject-on-read /
//!   inject-on-write), computed once at lowering time instead of per dynamic
//!   instruction, and
//! * per-function frame layouts ([`FrameLayout`]): entry PC, register types
//!   and parameter registers, everything an interpreter needs to push an
//!   activation record without touching the original module.
//!
//! Lowering is behaviour-transparent: the flat program executes exactly the
//! same dynamic instruction sequence as the tree walker, including the
//! defensive cases (a block without a terminator aborts without counting an
//! instruction, an out-of-range callee traps at call time).  The interpreter
//! in `mbfi-vm` executes `CompiledModule`s; the legacy walker remains
//! available for differential testing.

use crate::function::BlockId;
use crate::instr::{BinOp, CastOp, FcmpPred, IcmpPred, Instr, Intrinsic, Opcode};
use crate::module::{Global, Module};
use crate::types::Type;
use crate::value::{Operand, Reg};
use crate::verify::LintWarning;

/// A pre-decoded instruction in the flat program.
///
/// Mirrors [`Instr`] with control-flow targets resolved to absolute PCs and
/// variable-length payloads boxed so the enum stays compact.  Phi incoming
/// arms keep their predecessor *block index* (phi resolution is inherently
/// block-relative), which the interpreter matches against the frame's
/// predecessor-block field.
#[derive(Debug, Clone, PartialEq)]
pub enum CInstr {
    /// `dest = op ty lhs, rhs`
    Binary {
        /// Destination register.
        dest: Reg,
        /// Operator.
        op: BinOp,
        /// Operand type.
        ty: Type,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dest = icmp pred ty lhs, rhs`
    Icmp {
        /// Destination register (`i1`).
        dest: Reg,
        /// Comparison predicate.
        pred: IcmpPred,
        /// Operand type.
        ty: Type,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dest = fcmp pred lhs, rhs`
    Fcmp {
        /// Destination register (`i1`).
        dest: Reg,
        /// Comparison predicate.
        pred: FcmpPred,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dest = cast op src : from_ty -> to_ty`
    Cast {
        /// Destination register.
        dest: Reg,
        /// Conversion operator.
        op: CastOp,
        /// Source type.
        from_ty: Type,
        /// Destination type.
        to_ty: Type,
        /// Source operand.
        src: Operand,
    },
    /// `dest = select cond, then_val, else_val`
    Select {
        /// Destination register.
        dest: Reg,
        /// Value type.
        ty: Type,
        /// Condition (`i1`).
        cond: Operand,
        /// Value when true.
        then_val: Operand,
        /// Value when false.
        else_val: Operand,
    },
    /// `dest = alloca elem_ty, count`
    Alloca {
        /// Destination pointer register.
        dest: Reg,
        /// Element type.
        elem_ty: Type,
        /// Number of elements.
        count: Operand,
    },
    /// `dest = load ty, addr`
    Load {
        /// Destination register.
        dest: Reg,
        /// Loaded value type.
        ty: Type,
        /// Address operand.
        addr: Operand,
    },
    /// `store ty value, addr`
    Store {
        /// Stored value type.
        ty: Type,
        /// Value operand.
        value: Operand,
        /// Address operand.
        addr: Operand,
    },
    /// `dest = gep base, index * elem_size + offset`
    Gep {
        /// Destination pointer register.
        dest: Reg,
        /// Base pointer operand.
        base: Operand,
        /// Element index operand.
        index: Operand,
        /// Size in bytes of one element.
        elem_size: u64,
        /// Constant byte offset added after scaling.
        offset: i64,
    },
    /// `dest? = call callee(args...)` — `callee` stays a function-table index
    /// (frames need the callee's [`FrameLayout`]); an out-of-range index
    /// traps at call time exactly like the tree walker.
    Call {
        /// Destination register if the callee returns a value.
        dest: Option<Reg>,
        /// Index of the callee in the compiled function table.
        callee: usize,
        /// Argument operands.
        args: Box<[Operand]>,
    },
    /// `dest? = intrinsic name(args...)`
    IntrinsicCall {
        /// Destination register if the intrinsic produces a value.
        dest: Option<Reg>,
        /// Which intrinsic.
        which: Intrinsic,
        /// Argument operands.
        args: Box<[Operand]>,
    },
    /// `dest = phi ty [(pred block index, value), ...]`
    Phi {
        /// Destination register.
        dest: Reg,
        /// Value type.
        ty: Type,
        /// Incoming `(predecessor block index, value)` arms.
        incoming: Box<[(u32, Operand)]>,
    },
    /// Unconditional jump to an absolute PC.
    Jump {
        /// Target PC.
        target: usize,
    },
    /// Conditional branch to one of two absolute PCs.
    CondBr {
        /// Condition operand (`i1`).
        cond: Operand,
        /// Target PC when true.
        then_pc: usize,
        /// Target PC when false.
        else_pc: usize,
    },
    /// Multi-way branch over absolute PCs.
    Switch {
        /// Discriminant operand.
        value: Operand,
        /// Default target PC.
        default_pc: usize,
        /// `(case value, target PC)` pairs.
        cases: Box<[(u64, usize)]>,
    },
    /// `ret value?`
    Ret {
        /// Returned operand, if any.
        value: Option<Operand>,
    },
    /// Executing this aborts the program (counted as a dynamic instruction).
    Unreachable,
    /// Synthesized at the end of a block with no terminator (and for empty
    /// blocks / bodiless functions): aborts the run **without** announcing a
    /// dynamic instruction, reproducing the tree walker's fall-off-the-end
    /// behaviour bit for bit.
    FellOff,
}

/// Static per-instruction facts, computed once at lowering time.
///
/// The interpreter builds each instruction's hook context straight from this
/// table; in particular `reg_reads` replaces the tree walker's per-step
/// `operands().iter().filter(is_reg).count()` (which allocated a `Vec` per
/// dynamic instruction), and the two candidate flags make injection-candidate
/// classification a table lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrMeta {
    /// Coarse opcode (as reported to hooks).
    pub opcode: Opcode,
    /// Static count of *register* operands read by the instruction.  For phi
    /// this counts every register arm, matching the tree walker's reporting.
    pub reg_reads: u16,
    /// Whether the instruction writes a destination register.
    pub has_dest: bool,
    /// Inject-on-read candidate-set membership (`reg_reads > 0`).
    pub is_read_candidate: bool,
    /// Inject-on-write candidate-set membership (`has_dest`).
    pub is_write_candidate: bool,
    /// Originating function index (hook-context provenance).
    pub func: u32,
    /// Originating block index within the function.
    pub block: u32,
    /// Originating instruction index within the block.
    pub instr: u32,
}

/// Everything needed to push an activation record for one function.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameLayout {
    /// Function name (diagnostics only).
    pub name: String,
    /// PC of the function's first instruction.
    pub entry_pc: usize,
    /// Type of every virtual register, by register index.
    pub reg_tys: Box<[Type]>,
    /// Parameter register indices, in order.
    pub params: Box<[u32]>,
    /// Return type, or `None` for `void`.
    pub ret_ty: Option<Type>,
}

impl FrameLayout {
    /// Number of virtual registers in a frame of this function.
    pub fn reg_count(&self) -> usize {
        self.reg_tys.len()
    }
}

/// A module lowered to flat, pre-decoded bytecode.
///
/// Self-contained: it carries the global data images, so an interpreter can
/// build its memory image and execute without the original [`Module`].
/// Lower once per workload and share by reference — `CompiledModule` is
/// `Send + Sync`, and campaigns hand one instance to every worker thread.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModule {
    /// Module name (typically the workload name).
    pub name: String,
    /// The flat instruction array, addressed by absolute PC.
    pub instrs: Vec<CInstr>,
    /// Per-instruction static metadata, parallel to `instrs`.
    pub meta: Vec<InstrMeta>,
    /// Per-function frame layouts; [`CInstr::Call`] indexes this table.
    pub funcs: Vec<FrameLayout>,
    /// Index of the entry function, if any.
    pub entry: Option<usize>,
    /// Global data objects (cloned from the source module for memory setup).
    pub globals: Vec<Global>,
}

impl CompiledModule {
    /// Flatten a (verified) module into pre-decoded bytecode.
    ///
    /// Lowering never fails: structurally odd inputs (blocks without
    /// terminators, empty functions) compile to [`CInstr::FellOff`] markers
    /// that reproduce the tree walker's trap behaviour at run time.
    pub fn lower(module: &Module) -> CompiledModule {
        // Pass 1: assign a PC to every block (accounting for the synthetic
        // FellOff appended to non-terminated blocks) and to every function.
        let mut block_pcs: Vec<Vec<usize>> = Vec::with_capacity(module.functions.len());
        let mut pc = 0usize;
        for func in &module.functions {
            let mut pcs = Vec::with_capacity(func.blocks.len());
            for block in &func.blocks {
                pcs.push(pc);
                pc += block.instrs.len();
                if block.terminator().is_none() {
                    pc += 1; // synthetic FellOff
                }
            }
            block_pcs.push(pcs);
        }
        let total = pc;

        // Pass 2: emit instructions with targets resolved to PCs.
        let mut instrs = Vec::with_capacity(total);
        let mut meta = Vec::with_capacity(total);
        let mut funcs = Vec::with_capacity(module.functions.len());
        for (f, func) in module.functions.iter().enumerate() {
            let pcs = &block_pcs[f];
            // A bodiless function gets an entry PC one past the end, so
            // calling it traps immediately without counting an instruction.
            // (The tree walker panics on this unverified shape instead;
            // trapping is the compiled pipeline's strictly-safer behaviour.)
            let entry_pc = pcs.first().copied().unwrap_or(total);
            funcs.push(FrameLayout {
                name: func.name.clone(),
                entry_pc,
                reg_tys: func.regs.iter().map(|r| r.ty).collect(),
                params: func.params.iter().map(|p| p.0).collect(),
                ret_ty: func.ret_ty,
            });
            let target = |b: BlockId| pcs[b.index()];
            for (b, block) in func.blocks.iter().enumerate() {
                for (i, instr) in block.instrs.iter().enumerate() {
                    instrs.push(lower_instr(instr, &target));
                    meta.push(meta_for(instr, f, b, i));
                }
                if block.terminator().is_none() {
                    instrs.push(CInstr::FellOff);
                    meta.push(InstrMeta {
                        opcode: Opcode::Unreachable,
                        reg_reads: 0,
                        has_dest: false,
                        is_read_candidate: false,
                        is_write_candidate: false,
                        func: f as u32,
                        block: b as u32,
                        instr: block.instrs.len() as u32,
                    });
                }
            }
        }
        debug_assert_eq!(instrs.len(), total);

        CompiledModule {
            name: module.name.clone(),
            instrs,
            meta,
            funcs,
            entry: module.entry.map(|e| e.index()),
            globals: module.globals.clone(),
        }
    }

    /// Flatten a module with [`LowerOptions`]; returns the bytecode plus any
    /// lint warnings the options requested (empty when linting is off).
    pub fn lower_with(module: &Module, opts: LowerOptions) -> (CompiledModule, Vec<LintWarning>) {
        let code = CompiledModule::lower(module);
        let warnings = if opts.lint_dead_defs {
            crate::verify::lint_dead_defs(&code)
        } else {
            Vec::new()
        };
        (code, warnings)
    }

    /// Number of instructions in the flat program.
    pub fn instr_count(&self) -> usize {
        self.instrs.len()
    }

    /// Static count of inject-on-read / inject-on-write candidate
    /// instructions `(read, write)` in the flat program.
    pub fn static_candidates(&self) -> (usize, usize) {
        let read = self.meta.iter().filter(|m| m.is_read_candidate).count();
        let write = self.meta.iter().filter(|m| m.is_write_candidate).count();
        (read, write)
    }

    /// Total static (instruction, register, bit) fault-site space
    /// `(read_bits, write_bits)` under the paper's 64-bit register model —
    /// the denominator the bit-level pruner ([`crate::bitflow`]) collapses.
    pub fn static_site_bits(&self) -> (u64, u64) {
        let reads: u64 = self.meta.iter().map(|m| u64::from(m.reg_reads)).sum();
        let writes = self.meta.iter().filter(|m| m.has_dest).count() as u64;
        (reads * 64, writes * 64)
    }
}

/// Options for [`CompiledModule::lower_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowerOptions {
    /// Run the dead-def lint ([`crate::verify::lint_dead_defs`]) on the
    /// lowered program and return its structured warnings.
    pub lint_dead_defs: bool,
}

fn meta_for(instr: &Instr, func: usize, block: usize, idx: usize) -> InstrMeta {
    // Must agree exactly with what the tree walker reports to hooks:
    // `reg_reads` is the static register-operand count over *all* operands
    // (phi counts every arm, not just the taken one).
    let reg_reads = instr.operands().iter().filter(|o| o.is_reg()).count();
    let has_dest = instr.dest().is_some();
    InstrMeta {
        opcode: instr.opcode(),
        reg_reads: reg_reads as u16,
        has_dest,
        is_read_candidate: reg_reads > 0,
        is_write_candidate: has_dest,
        func: func as u32,
        block: block as u32,
        instr: idx as u32,
    }
}

fn lower_instr(instr: &Instr, target: &impl Fn(BlockId) -> usize) -> CInstr {
    match instr {
        Instr::Binary {
            dest,
            op,
            ty,
            lhs,
            rhs,
        } => CInstr::Binary {
            dest: *dest,
            op: *op,
            ty: *ty,
            lhs: *lhs,
            rhs: *rhs,
        },
        Instr::Icmp {
            dest,
            pred,
            ty,
            lhs,
            rhs,
        } => CInstr::Icmp {
            dest: *dest,
            pred: *pred,
            ty: *ty,
            lhs: *lhs,
            rhs: *rhs,
        },
        Instr::Fcmp {
            dest,
            pred,
            lhs,
            rhs,
            ..
        } => CInstr::Fcmp {
            dest: *dest,
            pred: *pred,
            lhs: *lhs,
            rhs: *rhs,
        },
        Instr::Cast {
            dest,
            op,
            from_ty,
            to_ty,
            src,
        } => CInstr::Cast {
            dest: *dest,
            op: *op,
            from_ty: *from_ty,
            to_ty: *to_ty,
            src: *src,
        },
        Instr::Select {
            dest,
            ty,
            cond,
            then_val,
            else_val,
        } => CInstr::Select {
            dest: *dest,
            ty: *ty,
            cond: *cond,
            then_val: *then_val,
            else_val: *else_val,
        },
        Instr::Alloca {
            dest,
            elem_ty,
            count,
        } => CInstr::Alloca {
            dest: *dest,
            elem_ty: *elem_ty,
            count: *count,
        },
        Instr::Load { dest, ty, addr } => CInstr::Load {
            dest: *dest,
            ty: *ty,
            addr: *addr,
        },
        Instr::Store { ty, value, addr } => CInstr::Store {
            ty: *ty,
            value: *value,
            addr: *addr,
        },
        Instr::Gep {
            dest,
            base,
            index,
            elem_size,
            offset,
        } => CInstr::Gep {
            dest: *dest,
            base: *base,
            index: *index,
            elem_size: *elem_size,
            offset: *offset,
        },
        Instr::Call { dest, callee, args } => CInstr::Call {
            dest: *dest,
            callee: *callee,
            args: args.clone().into_boxed_slice(),
        },
        Instr::IntrinsicCall { dest, which, args } => CInstr::IntrinsicCall {
            dest: *dest,
            which: *which,
            args: args.clone().into_boxed_slice(),
        },
        Instr::Phi { dest, ty, incoming } => CInstr::Phi {
            dest: *dest,
            ty: *ty,
            incoming: incoming.iter().map(|(b, op)| (b.0, *op)).collect(),
        },
        Instr::Br { target: t } => CInstr::Jump { target: target(*t) },
        Instr::CondBr {
            cond,
            then_bb,
            else_bb,
        } => CInstr::CondBr {
            cond: *cond,
            then_pc: target(*then_bb),
            else_pc: target(*else_bb),
        },
        Instr::Switch {
            value,
            default,
            cases,
        } => CInstr::Switch {
            value: *value,
            default_pc: target(*default),
            cases: cases.iter().map(|(v, b)| (*v, target(*b))).collect(),
        },
        Instr::Ret { value } => CInstr::Ret { value: *value },
        Instr::Unreachable => CInstr::Unreachable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::function::Block;
    use crate::module::Module;
    use crate::types::Type;

    fn sample_module() -> Module {
        let mut mb = ModuleBuilder::new("lower");
        let helper = mb.declare("helper", &[(Type::I64, "x")], Some(Type::I64));
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(helper);
            let x = f.param(0);
            let y = f.add(Type::I64, x, 1i64);
            f.ret(y);
        }
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 4i64, |f, i| {
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, i);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            let v = f
                .call(helper, &[crate::Operand::Reg(total)], Some(Type::I64))
                .unwrap();
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn lowering_preserves_instruction_count_and_entry() {
        let m = sample_module();
        let code = CompiledModule::lower(&m);
        assert_eq!(code.instr_count(), m.static_instr_count());
        assert_eq!(code.entry, m.entry.map(|e| e.index()));
        assert_eq!(code.funcs.len(), m.functions.len());
        assert_eq!(code.meta.len(), code.instrs.len());
        assert_eq!(code.name, m.name);
    }

    #[test]
    fn frame_layouts_mirror_function_tables() {
        let m = sample_module();
        let code = CompiledModule::lower(&m);
        for (func, layout) in m.functions.iter().zip(&code.funcs) {
            assert_eq!(layout.name, func.name);
            assert_eq!(layout.reg_count(), func.reg_count());
            assert_eq!(layout.ret_ty, func.ret_ty);
            assert_eq!(layout.params.len(), func.params.len());
            for (p, lp) in func.params.iter().zip(layout.params.iter()) {
                assert_eq!(p.0, *lp);
            }
            for (r, ty) in func.regs.iter().zip(layout.reg_tys.iter()) {
                assert_eq!(r.ty, *ty);
            }
        }
    }

    #[test]
    fn metadata_matches_the_walker_facts() {
        let m = sample_module();
        let code = CompiledModule::lower(&m);
        let mut pc = 0usize;
        for (f, func) in m.functions.iter().enumerate() {
            for (b, block) in func.blocks.iter().enumerate() {
                for (i, instr) in block.instrs.iter().enumerate() {
                    let meta = &code.meta[pc];
                    assert_eq!(meta.opcode, instr.opcode());
                    assert_eq!(
                        meta.reg_reads as usize,
                        instr.operands().iter().filter(|o| o.is_reg()).count()
                    );
                    assert_eq!(meta.has_dest, instr.dest().is_some());
                    assert_eq!(meta.is_read_candidate, meta.reg_reads > 0);
                    assert_eq!(meta.is_write_candidate, meta.has_dest);
                    assert_eq!(
                        (meta.func as usize, meta.block as usize, meta.instr as usize),
                        (f, b, i)
                    );
                    pc += 1;
                }
            }
        }
        assert_eq!(pc, code.instr_count());
        let (read, write) = code.static_candidates();
        assert!(read > 0 && write > 0 && write <= code.instr_count());
    }

    #[test]
    fn branch_targets_resolve_to_block_start_pcs() {
        let m = sample_module();
        let code = CompiledModule::lower(&m);
        // Every Jump/CondBr/Switch target must be a valid PC whose metadata
        // says "first instruction of some block".
        let is_block_start = |pc: usize| code.meta[pc].instr == 0;
        for instr in &code.instrs {
            match instr {
                CInstr::Jump { target } => assert!(is_block_start(*target)),
                CInstr::CondBr {
                    then_pc, else_pc, ..
                } => {
                    assert!(is_block_start(*then_pc));
                    assert!(is_block_start(*else_pc));
                }
                CInstr::Switch {
                    default_pc, cases, ..
                } => {
                    assert!(is_block_start(*default_pc));
                    for (_, pc) in cases.iter() {
                        assert!(is_block_start(*pc));
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn non_terminated_blocks_get_a_fell_off_marker() {
        // Hand-build a module whose single block has no terminator.
        let mut m = Module::new("broken");
        m.functions.push(crate::Function {
            name: "main".into(),
            params: vec![],
            ret_ty: None,
            regs: vec![],
            blocks: vec![Block::new(None)],
        });
        m.entry = Some(crate::FuncId(0));
        let code = CompiledModule::lower(&m);
        assert_eq!(code.instrs, vec![CInstr::FellOff]);
        assert_eq!(code.funcs[0].entry_pc, 0);
    }

    #[test]
    fn bodiless_functions_compile_to_an_out_of_line_entry() {
        let mut m = Module::new("empty");
        m.functions.push(crate::Function {
            name: "main".into(),
            params: vec![],
            ret_ty: None,
            regs: vec![],
            blocks: vec![],
        });
        m.entry = Some(crate::FuncId(0));
        let code = CompiledModule::lower(&m);
        assert_eq!(code.instr_count(), 0);
        assert_eq!(code.funcs[0].entry_pc, 0);
    }
}
