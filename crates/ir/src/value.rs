//! Registers, constants and operands.
//!
//! A [`Reg`] names a virtual register inside a function.  An [`Operand`] is
//! either a register or an immediate [`Constant`].  The fault model only ever
//! targets register operands — constants are immune, exactly as in LLFI where
//! immediates are not injection candidates.

use crate::types::Type;
use std::fmt;

/// A virtual register identifier, local to a [`crate::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl Reg {
    /// The register's index into the function's register table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// An immediate constant value.
///
/// The payload is always carried as a raw 64-bit pattern; floats store their
/// IEEE-754 encoding.  This is the same representation the VM uses for
/// runtime values, which keeps bit-flips uniform across types.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Constant {
    /// An integer constant of the given integer type.
    Int { ty: Type, bits: u64 },
    /// A floating-point constant of the given float type (bits = IEEE encoding).
    Float { ty: Type, bits: u64 },
    /// The null pointer.
    Null,
    /// The address of the module global with the given index; resolved to a
    /// concrete address by the VM when the module is loaded.
    Global { index: usize },
}

impl Constant {
    /// Build an integer constant, truncating `value` to the width of `ty`.
    pub fn int(ty: Type, value: i64) -> Constant {
        debug_assert!(ty.is_int(), "Constant::int with non-integer type {ty}");
        Constant::Int {
            ty,
            bits: (value as u64) & ty.bit_mask(),
        }
    }

    /// Build a boolean (`i1`) constant.
    pub fn bool(value: bool) -> Constant {
        Constant::Int {
            ty: Type::I1,
            bits: value as u64,
        }
    }

    /// Build an `i32` constant.
    pub fn i32(value: i32) -> Constant {
        Constant::int(Type::I32, value as i64)
    }

    /// Build an `i64` constant.
    pub fn i64(value: i64) -> Constant {
        Constant::int(Type::I64, value)
    }

    /// Build an `f64` constant.
    pub fn f64(value: f64) -> Constant {
        Constant::Float {
            ty: Type::F64,
            bits: value.to_bits(),
        }
    }

    /// Build an `f32` constant.
    pub fn f32(value: f32) -> Constant {
        Constant::Float {
            ty: Type::F32,
            bits: value.to_bits() as u64,
        }
    }

    /// Reference to a module global's address.
    pub fn global(index: usize) -> Constant {
        Constant::Global { index }
    }

    /// The type of the constant.
    pub fn ty(&self) -> Type {
        match self {
            Constant::Int { ty, .. } | Constant::Float { ty, .. } => *ty,
            Constant::Null | Constant::Global { .. } => Type::Ptr,
        }
    }

    /// Raw 64-bit payload (IEEE bits for floats, zero for null).
    ///
    /// For [`Constant::Global`] the payload is the global's *index*, not its
    /// runtime address; the VM resolves it at load time.
    pub fn bits(&self) -> u64 {
        match self {
            Constant::Int { bits, .. } | Constant::Float { bits, .. } => *bits,
            Constant::Null => 0,
            Constant::Global { index } => *index as u64,
        }
    }

    /// Interpret an integer constant as a signed value.
    pub fn as_i64(&self) -> i64 {
        let ty = self.ty();
        let bits = self.bits();
        sign_extend(bits, ty.bit_width())
    }

    /// Interpret a float constant as `f64` (widening `f32` as needed).
    pub fn as_f64(&self) -> f64 {
        match self {
            Constant::Float {
                ty: Type::F32,
                bits,
            } => f32::from_bits(*bits as u32) as f64,
            Constant::Float { bits, .. } => f64::from_bits(*bits),
            other => other.as_i64() as f64,
        }
    }
}

/// Sign-extend the low `width` bits of `bits` into an `i64`.
pub fn sign_extend(bits: u64, width: u32) -> i64 {
    if width == 0 || width >= 64 {
        return bits as i64;
    }
    let shift = 64 - width;
    ((bits << shift) as i64) >> shift
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int { ty, .. } => write!(f, "{} {}", ty, self.as_i64()),
            Constant::Float { ty, bits } => match ty {
                Type::F32 => write!(f, "{} {:?}", ty, f32::from_bits(*bits as u32)),
                _ => write!(f, "{} {:?}", ty, f64::from_bits(*bits)),
            },
            Constant::Null => write!(f, "ptr null"),
            Constant::Global { index } => write!(f, "ptr @g{index}"),
        }
    }
}

/// An instruction operand: a register or a constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A virtual register read.
    Reg(Reg),
    /// An immediate constant.
    Const(Constant),
}

impl Operand {
    /// The register behind this operand, if any.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            Operand::Const(_) => None,
        }
    }

    /// Whether this operand reads a register (and is therefore an
    /// inject-on-read candidate).
    pub fn is_reg(&self) -> bool {
        matches!(self, Operand::Reg(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<Constant> for Operand {
    fn from(c: Constant) -> Self {
        Operand::Const(c)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Const(Constant::i32(v))
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Const(Constant::i64(v))
    }
}

impl From<f64> for Operand {
    fn from(v: f64) -> Self {
        Operand::Const(Constant::f64(v))
    }
}

impl From<bool> for Operand {
    fn from(v: bool) -> Self {
        Operand::Const(Constant::bool(v))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_constants_truncate_to_width() {
        let c = Constant::int(Type::I8, 0x1ff);
        assert_eq!(c.bits(), 0xff);
        assert_eq!(c.as_i64(), -1);
    }

    #[test]
    fn negative_constants_sign_extend() {
        let c = Constant::int(Type::I16, -2);
        assert_eq!(c.bits(), 0xfffe);
        assert_eq!(c.as_i64(), -2);
        assert_eq!(Constant::i32(-1).as_i64(), -1);
    }

    #[test]
    fn float_constants_round_trip_through_bits() {
        let c = Constant::f64(3.5);
        assert_eq!(c.as_f64(), 3.5);
        let c = Constant::f32(-0.25);
        assert_eq!(c.as_f64(), -0.25);
    }

    #[test]
    fn sign_extend_handles_edge_widths() {
        assert_eq!(sign_extend(1, 1), -1);
        assert_eq!(sign_extend(0, 1), 0);
        assert_eq!(sign_extend(u64::MAX, 64), -1);
        assert_eq!(sign_extend(0x8000_0000, 32), i32::MIN as i64);
    }

    #[test]
    fn operand_register_detection() {
        assert!(Operand::Reg(Reg(3)).is_reg());
        assert!(!Operand::from(7i32).is_reg());
        assert_eq!(Operand::Reg(Reg(3)).as_reg(), Some(Reg(3)));
        assert_eq!(Operand::from(7i32).as_reg(), None);
    }

    #[test]
    fn constant_types_report_correctly() {
        assert_eq!(Constant::bool(true).ty(), Type::I1);
        assert_eq!(Constant::i32(0).ty(), Type::I32);
        assert_eq!(Constant::f64(0.0).ty(), Type::F64);
        assert_eq!(Constant::Null.ty(), Type::Ptr);
        assert_eq!(Constant::Null.bits(), 0);
    }
}
