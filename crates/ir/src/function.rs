//! Functions, basic blocks and register tables.

use crate::instr::Instr;
use crate::types::Type;
use std::fmt;

/// Identifies a basic block inside a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into the function's block table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifies a function inside a module (index into the function table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Index into the module's function table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Metadata for one virtual register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegInfo {
    /// The register's scalar type.
    pub ty: Type,
    /// Optional debug name (used by the printer).
    pub name: Option<String>,
}

/// A basic block: a straight-line sequence of instructions ending in a
/// terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Optional label used by the printer / parser.
    pub label: Option<String>,
    /// Instructions in execution order; the last one must be a terminator.
    pub instrs: Vec<Instr>,
}

impl Block {
    /// Create an empty block with an optional label.
    pub fn new(label: Option<String>) -> Block {
        Block {
            label,
            instrs: Vec::new(),
        }
    }

    /// The terminator instruction, if the block is complete.
    pub fn terminator(&self) -> Option<&Instr> {
        self.instrs.last().filter(|i| i.is_terminator())
    }
}

/// A function: parameters, a register table, and basic blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (unique within a module).
    pub name: String,
    /// Parameter registers (indices into `regs`), in order.
    pub params: Vec<crate::value::Reg>,
    /// Return type, or `None` for `void` functions.
    pub ret_ty: Option<Type>,
    /// Register table; every `Reg(i)` used in the body indexes this table.
    pub regs: Vec<RegInfo>,
    /// Basic blocks; block 0 is the entry block.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Number of virtual registers declared by the function.
    pub fn reg_count(&self) -> usize {
        self.regs.len()
    }

    /// Total number of static instructions in the function.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Type of a register, panicking on out-of-range indices.
    pub fn reg_ty(&self, reg: crate::value::Reg) -> Type {
        self.regs[reg.index()].ty
    }

    /// Entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Iterate over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::value::Reg;

    #[test]
    fn block_terminator_detection() {
        let mut b = Block::new(Some("entry".into()));
        assert!(b.terminator().is_none());
        b.instrs.push(Instr::Ret { value: None });
        assert!(b.terminator().is_some());
    }

    #[test]
    fn function_counts() {
        let f = Function {
            name: "f".into(),
            params: vec![Reg(0)],
            ret_ty: Some(Type::I32),
            regs: vec![
                RegInfo {
                    ty: Type::I32,
                    name: Some("x".into()),
                },
                RegInfo {
                    ty: Type::I32,
                    name: None,
                },
            ],
            blocks: vec![Block {
                label: None,
                instrs: vec![Instr::Ret {
                    value: Some(crate::value::Operand::Reg(Reg(0))),
                }],
            }],
        };
        assert_eq!(f.reg_count(), 2);
        assert_eq!(f.instr_count(), 1);
        assert_eq!(f.reg_ty(Reg(1)), Type::I32);
        assert_eq!(f.entry(), BlockId(0));
        assert_eq!(f.iter_blocks().count(), 1);
    }
}
