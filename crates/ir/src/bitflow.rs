//! Bit-level backward liveness / mask dataflow over a [`CompiledModule`].
//!
//! The paper samples a huge (instruction, register, bit) error space and
//! prunes it *dynamically*; BEC-style bit-granular static analysis discharges
//! a large share of that space *before any execution*: a flipped bit that is
//! dead (never consumed), overwritten before use, or masked away by `and` /
//! shifts / `trunc` provably cannot change the program outcome.  This module
//! computes, for every PC of the flat bytecode, which bits of each consumed
//! register operand and of the destination register can still influence
//! anything observable.
//!
//! ## The lattice
//!
//! One `u64` **liveness mask** per (PC, register): bit `k` set means "bit `k`
//! of this register's value may still affect observable behaviour from this
//! point on".  Masks are propagated *backwards* over the flat [`CInstr`]
//! array using the absolute-PC branch / switch targets resolved at lowering
//! time, with a per-opcode transfer function for the full [`BinOp`] /
//! [`CastOp`] set: `and` with a constant kills the constant's zero bits,
//! `shl k` kills the top `k` live-out bits, `trunc` kills everything above
//! the target width, `add`/`mul` conservatively saturate carry propagation
//! upward ([`smear_down`]).  Calls and returns are handled interprocedurally
//! with per-function parameter / return demand masks iterated to a joint
//! fixed point (Kleene iteration from ⊥, both levels monotone).
//!
//! ## Soundness contract
//!
//! **Dead ⇒ byte-identical outcome.**  If [`BitFlow::is_dead_read_bit`] /
//! [`BitFlow::is_dead_write_bit`] says a bit is dead, then flipping exactly
//! that bit at that site in an otherwise fault-free run produces a run whose
//! *classified outcome* is byte-identical to golden: same output bytes, same
//! termination, same dynamic trajectory of every live bit.  The analysis is
//! calibrated against the exact evaluator semantics in `mbfi-vm::ops` —
//! including the trapping operators (`udiv`/`sdiv`/`urem`/`srem` demand
//! every bit that can reach the trap condition; `sdiv`/`srem` read their
//! operands through value-typed sign extension and therefore demand all 64
//! bits), memory and I/O side effects (always fully demanded), and the
//! interpreter's masking discipline (every register write is masked to the
//! written value's type, so liveness is clamped per register to the union of
//! possible value widths).  Anything the analysis cannot prove dead is
//! reported live; when the fixed point fails to converge within its iteration
//! cap the whole result saturates to fully-live, which is always sound.
//!
//! The contract is validated empirically by `prune_bench --check` and
//! `tests/bitflow_equivalence.rs`: seeded samples of statically-dead sites
//! are injected anyway across all 15 workloads and must land byte-identical
//! to golden.

use crate::compiled::{CInstr, CompiledModule};
use crate::instr::{BinOp, CastOp, Intrinsic};
use crate::types::Type;
use crate::value::{Constant, Operand};

/// All bits at or below the highest set bit of `m` (carry smear for
/// `add`/`sub`/`mul`/`gep`: a flip at bit `i` can only disturb result bits
/// `>= i`, so bit `i` of an operand is dead iff no live bit sits at or above
/// `i`).
pub fn smear_down(m: u64) -> u64 {
    if m == 0 {
        0
    } else {
        let msb = 63 - m.leading_zeros();
        if msb >= 63 {
            u64::MAX
        } else {
            (1u64 << (msb + 1)) - 1
        }
    }
}

/// All bits at or above the lowest set bit of `m` (borrow smear for right
/// shifts: a flip at bit `i` can only disturb result bits `<= i`).
pub fn smear_up(m: u64) -> u64 {
    if m == 0 {
        0
    } else {
        u64::MAX << m.trailing_zeros()
    }
}

/// The bit mask of the value a cast instruction actually writes.
///
/// Matches `mbfi-vm::ops::eval_cast`: every cast produces a value of `to_ty`
/// except `fptrunc` (always writes an `f32`-typed value) and `fpext` (always
/// writes an `f64`-typed value), regardless of the declared `to_ty`.
pub fn cast_result_mask(op: CastOp, to_ty: Type) -> u64 {
    match op {
        CastOp::FpTrunc => Type::F32.bit_mask(),
        CastOp::FpExt => Type::F64.bit_mask(),
        _ => to_ty.bit_mask(),
    }
}

/// Demand masks `(lhs, rhs)` of a binary operation: which bits of each
/// operand *value* can influence the live destination bits `dest_live` or
/// the operator's trap behaviour.
///
/// `lhs_const` / `rhs_const` carry the operand's known constant payload
/// (already masked to the constant's own type) when the operand is an
/// immediate — `and`/`or` with a constant and constant shift amounts prune
/// much harder than their variable forms.  Flipping an operand bit outside
/// the returned mask never changes the op's result bits within `dest_live`
/// and never changes whether the op traps (property-checked exhaustively per
/// operator in `tests/bitflow_transfer.rs`).
pub fn binop_demands(
    op: BinOp,
    ty: Type,
    lhs_const: Option<u64>,
    rhs_const: Option<u64>,
    dest_live: u64,
) -> (u64, u64) {
    let w = ty.bit_width();
    let m = ty.bit_mask();
    let l = dest_live & m;
    match op {
        // The evaluator reads sdiv/srem operands through value-typed sign
        // extension (`as_i64`), so any of the 64 payload bits can reach the
        // trap condition regardless of the instruction type.
        BinOp::SDiv | BinOp::SRem => (u64::MAX, u64::MAX),
        // udiv/urem mask both operands to the instruction type, but the
        // divide-by-zero trap makes them fully demanded within that mask
        // even when no destination bit is live.
        BinOp::UDiv | BinOp::URem => (m, m),
        _ if l == 0 => (0, 0),
        // Carries propagate strictly upward (wrapping arithmetic).
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            let d = smear_down(l) & m;
            (d, d)
        }
        BinOp::And => {
            let dl = rhs_const.map_or(l, |c| l & c & m);
            let dr = lhs_const.map_or(l, |c| l & c & m);
            (dl, dr)
        }
        BinOp::Or => {
            let dl = rhs_const.map_or(l, |c| l & !(c & m));
            let dr = lhs_const.map_or(l, |c| l & !(c & m));
            (dl, dr)
        }
        BinOp::Xor => (l, l),
        // Shift amounts reduce to `rhs & (width - 1)` in the evaluator
        // (power-of-two widths), so only the low log2(width) bits of a
        // variable amount are demanded.
        BinOp::Shl => match rhs_const {
            Some(c) => {
                let k = (c & m) as u32 % w;
                ((l >> k) & m, 0)
            }
            None => (smear_down(l) & m, u64::from(w - 1)),
        },
        BinOp::LShr => match rhs_const {
            Some(c) => {
                let k = (c & m) as u32 % w;
                (l.checked_shl(k).unwrap_or(0) & m, 0)
            }
            None => (smear_up(l) & m, u64::from(w - 1)),
        },
        BinOp::AShr => match rhs_const {
            Some(c) => {
                let k = (c & m) as u32 % w;
                let mut d = 0u64;
                for j in 0..w {
                    if l & (1u64 << j) != 0 {
                        d |= 1u64 << (j + k).min(w - 1);
                    }
                }
                (d, 0)
            }
            None => (smear_up(l) & m, u64::from(w - 1)),
        },
        // Float arithmetic reads both operands through `as_f64` (full
        // payload, value-typed) and never traps.
        BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FRem => (u64::MAX, u64::MAX),
    }
}

/// Demand mask of a cast's source operand given the live destination bits.
///
/// Matches `mbfi-vm::ops::eval_cast` exactly: the bit-selecting casts pass
/// `dest_live` through the source mask, `sext` folds every demanded
/// high bit onto the source sign bit, the float conversions read the full
/// `as_f64` payload (`fptrunc` reinterprets all 64 bits as an `f64`
/// regardless of `from_ty`; `fpext` reads only the low 32).  No cast traps.
pub fn cast_demand(op: CastOp, from_ty: Type, to_ty: Type, dest_live: u64) -> u64 {
    // Bits of dest_live the cast's written value cannot even carry are
    // irrelevant; clamp so the helper is correct standalone.
    let dest_live = dest_live & cast_result_mask(op, to_ty);
    if dest_live == 0 {
        return 0;
    }
    let fm = from_ty.bit_mask();
    match op {
        CastOp::Trunc | CastOp::Bitcast | CastOp::PtrToInt | CastOp::IntToPtr | CastOp::ZExt => {
            dest_live & fm
        }
        CastOp::SExt => {
            let s = from_ty.bit_width() - 1;
            let below = if s == 0 { 0 } else { (1u64 << s) - 1 };
            let mut d = dest_live & below;
            if dest_live >> s != 0 {
                d |= 1u64 << s;
            }
            d
        }
        CastOp::FpToSi | CastOp::FpToUi => {
            // Reads the value through `as_f64`: an f32 source uses only the
            // low 32 bits, every other source the full payload.
            if from_ty == Type::F32 {
                Type::F32.bit_mask()
            } else {
                u64::MAX
            }
        }
        CastOp::SiToFp | CastOp::UiToFp => fm,
        // `f64::from_bits(v.bits)` — all 64 payload bits, whatever from_ty.
        CastOp::FpTrunc => u64::MAX,
        // `f32::from_bits(v.bits as u32)` — low 32 payload bits only.
        CastOp::FpExt => Type::F32.bit_mask(),
    }
}

/// Per-PC flow facts produced by [`BitFlow::analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrFlow {
    /// Live-out bits of the destination register, clamped to the written
    /// value's width ([`InstrFlow::dest_width`]); `0` when the instruction
    /// has no destination or nothing it writes is ever consumed.
    pub dest_live: u64,
    /// Bit mask of the value this instruction writes (`0` = no destination).
    pub dest_width: u64,
    /// Whether the destination write is guaranteed to happen when the
    /// instruction executes and completes.  `false` for calls whose callee
    /// has a value-less `ret` (the interpreter then skips the return-value
    /// write) — such destinations are never killed by the transfer function.
    pub dest_fires: bool,
    /// Demand mask per `on_read` operand index (one entry per register
    /// operand, in hook order).  For `phi`, entry 0 is the demand of the
    /// single arm the interpreter actually reads and all further entries are
    /// `0` (those operand indices never reach `on_read`).
    pub read_demand: Box<[u64]>,
    /// Possible-width mask per `on_read` operand index: the union of bit
    /// masks any value held by that register can carry (declared register
    /// type ∪ all def types).  Bits outside it are un-flippable no-ops.
    pub read_width: Box<[u64]>,
}

impl InstrFlow {
    fn empty() -> InstrFlow {
        InstrFlow {
            dest_live: 0,
            dest_width: 0,
            dest_fires: false,
            read_demand: Box::new([]),
            read_width: Box::new([]),
        }
    }
}

/// Aggregate (instruction, register, bit) site-space accounting under the
/// analysis, reported next to [`CompiledModule::static_candidates`].
///
/// "In-width" counts only bits a fault can actually flip (inside the
/// possible value width of the site); the `model64` views charge the full
/// [64-bit register model](crate::compiled::CompiledModule) per site, where
/// out-of-width bits are trivially dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BitSpace {
    /// Static inject-on-read operand sites (register operands; phi counts
    /// every arm).
    pub read_sites: u64,
    /// Flippable bits across all read sites.
    pub read_site_bits: u64,
    /// Flippable read-site bits proven dead.
    pub read_dead_bits: u64,
    /// Static inject-on-write destination sites.
    pub write_sites: u64,
    /// Flippable bits across all write sites.
    pub write_site_bits: u64,
    /// Flippable write-site bits proven dead.
    pub write_dead_bits: u64,
}

impl BitSpace {
    /// Dead fraction of the flippable (in-width) read-site bit space.
    pub fn read_dead_fraction(&self) -> f64 {
        fraction(self.read_dead_bits, self.read_site_bits)
    }

    /// Dead fraction of the flippable (in-width) write-site bit space.
    pub fn write_dead_fraction(&self) -> f64 {
        fraction(self.write_dead_bits, self.write_site_bits)
    }

    /// Dead fraction of the 64-bit-register-model read space (out-of-width
    /// bits counted dead, as the injector's flips on them are no-ops).
    pub fn read_dead_fraction_model64(&self) -> f64 {
        let total = self.read_sites * 64;
        fraction(self.read_dead_bits + total - self.read_site_bits, total)
    }

    /// Dead fraction of the 64-bit-register-model write space.
    pub fn write_dead_fraction_model64(&self) -> f64 {
        let total = self.write_sites * 64;
        fraction(self.write_dead_bits + total - self.write_site_bits, total)
    }
}

fn fraction(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A dead destination definition found by the analysis (fuel for the
/// dead-def verifier lint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadDef {
    /// PC of the defining instruction.
    pub pc: usize,
    /// Destination register index.
    pub reg: usize,
}

/// The converged bit-level dataflow result for one compiled module.
#[derive(Debug, Clone)]
pub struct BitFlow {
    flows: Vec<InstrFlow>,
    param_demand: Vec<Box<[u64]>>,
    ret_demand: Vec<u64>,
    reg_width: Vec<Box<[u64]>>,
    saturated: bool,
}

/// Per-function iteration state shared by the passes.
struct Ctx<'c> {
    code: &'c CompiledModule,
    /// `[start, end)` PC range of each function's contiguous instructions.
    ranges: Vec<(usize, usize)>,
    /// Whether every `ret` of the function carries a value (the return-value
    /// write in the caller then always fires).
    always_ret_value: Vec<bool>,
    reg_width: Vec<Box<[u64]>>,
}

impl BitFlow {
    /// Run the analysis to its interprocedural fixed point.
    ///
    /// Pure function of the compiled module: same module, same result — the
    /// prune decisions derived from it never depend on any RNG stream.
    pub fn analyze(code: &CompiledModule) -> BitFlow {
        let n = code.instrs.len();
        let nf = code.funcs.len();

        // Contiguous PC range of every function (lowering emits functions in
        // order; bodiless functions own no PCs).
        let mut ranges = vec![(0usize, 0usize); nf];
        let mut pc = 0usize;
        while pc < n {
            let f = code.meta[pc].func as usize;
            let start = pc;
            while pc < n && code.meta[pc].func as usize == f {
                pc += 1;
            }
            if f < nf {
                ranges[f] = (start, pc);
            }
        }

        let always_ret_value: Vec<bool> = ranges
            .iter()
            .map(|&(start, end)| {
                code.instrs[start..end]
                    .iter()
                    .all(|i| !matches!(i, CInstr::Ret { value: None }))
            })
            .collect();

        // Possible-width mask per register: declared type ∪ every def's
        // written-value type.  The interpreter masks each write to the
        // written value's own type, so no register value ever carries bits
        // outside this union — liveness is clamped to it, and flips beyond
        // it are no-ops.
        let mut reg_width: Vec<Box<[u64]>> = code
            .funcs
            .iter()
            .map(|l| l.reg_tys.iter().map(|t| t.bit_mask()).collect())
            .collect();
        for (f, &(start, end)) in ranges.iter().enumerate() {
            for pc in start..end {
                if let Some((reg, width, _)) = def_fact(code, f, &code.instrs[pc]) {
                    if let Some(w) = reg_width[f].get_mut(reg) {
                        *w |= width;
                    }
                }
            }
        }

        let ctx = Ctx {
            code,
            ranges,
            always_ret_value,
            reg_width,
        };

        // Interprocedural Kleene iteration: per-function backward liveness
        // to a local fixed point, then recompute parameter / return demand
        // masks from the new liveness; repeat until the interfaces stop
        // growing.  Both levels are monotone, so the joint fixed point is
        // reached in at most one outer iteration per interface bit.
        let mut live: Vec<Vec<u64>> = (0..n)
            .map(|pc| {
                let f = code.meta[pc].func as usize;
                vec![0u64; ctx.reg_width.get(f).map_or(0, |w| w.len())]
            })
            .collect();
        let mut param_demand: Vec<Box<[u64]>> = code
            .funcs
            .iter()
            .map(|l| vec![0u64; l.params.len()].into_boxed_slice())
            .collect();
        let mut ret_demand = vec![0u64; nf];
        if let Some(entry) = code.entry {
            // The entry function's returned value is part of the observable
            // run result; treat it as fully demanded.
            if let Some(r) = ret_demand.get_mut(entry) {
                *r = u64::MAX;
            }
        }

        let interface_bits: usize =
            64 * (code.funcs.iter().map(|l| l.params.len()).sum::<usize>() + nf);
        let outer_cap = interface_bits + 2;
        let mut converged = false;
        let mut saturated = false;
        'outer: for _ in 0..outer_cap {
            for f in 0..nf {
                if !liveness_fixpoint(&ctx, f, &param_demand, &ret_demand, &mut live) {
                    saturated = true;
                    break 'outer;
                }
            }
            let mut changed = false;
            // Parameter demand: liveness at the function entry PC.
            for (f, &(start, end)) in ctx.ranges.iter().enumerate() {
                if start == end {
                    continue;
                }
                for (i, p) in code.funcs[f].params.iter().enumerate() {
                    let d = live[start].get(*p as usize).copied().unwrap_or(0);
                    let slot = &mut param_demand[f][i];
                    if *slot | d != *slot {
                        *slot |= d;
                        changed = true;
                    }
                }
            }
            // Return demand: union over every call site of the live-out bits
            // of the call's destination (the caller masks the returned value
            // to the destination's declared type).
            for (f, &(start, end)) in ctx.ranges.iter().enumerate() {
                for pc in start..end {
                    if let CInstr::Call {
                        dest: Some(d),
                        callee,
                        ..
                    } = &code.instrs[pc]
                    {
                        if *callee >= nf || pc + 1 >= end {
                            continue;
                        }
                        let out = live[pc + 1].get(d.index()).copied().unwrap_or(0);
                        let mask = code.funcs[f]
                            .reg_tys
                            .get(d.index())
                            .map_or(u64::MAX, |t| t.bit_mask());
                        let slot = &mut ret_demand[*callee];
                        let add = out & mask;
                        if *slot | add != *slot {
                            *slot |= add;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                converged = true;
                break;
            }
        }
        if !converged {
            saturated = true;
        }

        // Final pass: materialize per-PC flow facts from the converged
        // liveness (or saturate everything to fully-live on cap overflow —
        // always sound, never observed on real modules).
        let mut flows = vec![InstrFlow::empty(); n];
        for (f, &(start, end)) in ctx.ranges.iter().enumerate() {
            let mut out = vec![0u64; ctx.reg_width[f].len()];
            for (off, slot) in flows[start..end].iter_mut().enumerate() {
                let pc = start + off;
                successor_join(&ctx, pc, start, end, &live, &mut out);
                *slot = instr_flow(&ctx, f, pc, &out, &param_demand, &ret_demand, saturated);
            }
        }

        BitFlow {
            flows,
            param_demand,
            ret_demand,
            reg_width: ctx.reg_width,
            saturated,
        }
    }

    /// Flow facts of one PC.
    pub fn flow(&self, pc: usize) -> &InstrFlow {
        &self.flows[pc]
    }

    /// Flow facts of every PC, parallel to `CompiledModule::instrs`.
    pub fn flows(&self) -> &[InstrFlow] {
        &self.flows
    }

    /// Demand mask per parameter position of a function (which bits of each
    /// argument the callee can ever consume).
    pub fn param_demand(&self, func: usize) -> &[u64] {
        &self.param_demand[func]
    }

    /// Demand mask of a function's returned value across all call sites.
    pub fn ret_demand(&self, func: usize) -> u64 {
        self.ret_demand[func]
    }

    /// Possible-width mask of a register (union of value widths it can hold).
    pub fn reg_width(&self, func: usize, reg: usize) -> u64 {
        self.reg_width
            .get(func)
            .and_then(|w| w.get(reg))
            .copied()
            .unwrap_or(u64::MAX)
    }

    /// Whether the iteration cap was hit and the result saturated to
    /// fully-live (sound, prunes nothing).
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// Whether flipping bit `bit` of the value delivered to `on_read`
    /// operand index `operand_index` at `pc` is provably outcome-preserving.
    pub fn is_dead_read_bit(&self, pc: usize, operand_index: usize, bit: u32) -> bool {
        if bit >= 64 {
            return true;
        }
        match self.flows[pc].read_demand.get(operand_index) {
            Some(d) => d & (1u64 << bit) == 0,
            None => false,
        }
    }

    /// Whether flipping bit `bit` of the value delivered to `on_write` at
    /// `pc` is provably outcome-preserving.
    pub fn is_dead_write_bit(&self, pc: usize, bit: u32) -> bool {
        if bit >= 64 {
            return true;
        }
        let f = &self.flows[pc];
        f.dest_width != 0 && f.dest_live & (1u64 << bit) == 0
    }

    /// Destination definitions none of whose bits are ever consumed.
    pub fn dead_defs(&self, code: &CompiledModule) -> Vec<DeadDef> {
        self.flows
            .iter()
            .enumerate()
            .filter(|(_, fl)| fl.dest_width != 0 && fl.dest_live == 0)
            .map(|(pc, _)| DeadDef {
                pc,
                reg: dest_reg(&code.instrs[pc]).unwrap_or(0),
            })
            .collect()
    }

    /// Aggregate the (instruction, register, bit) site space under the
    /// analysis.
    pub fn space(&self) -> BitSpace {
        let mut s = BitSpace::default();
        for fl in &self.flows {
            for (d, w) in fl.read_demand.iter().zip(fl.read_width.iter()) {
                s.read_sites += 1;
                s.read_site_bits += u64::from(w.count_ones());
                s.read_dead_bits += u64::from((w & !d).count_ones());
            }
            if fl.dest_width != 0 {
                s.write_sites += 1;
                s.write_site_bits += u64::from(fl.dest_width.count_ones());
                s.write_dead_bits += u64::from((fl.dest_width & !fl.dest_live).count_ones());
            }
        }
        s
    }
}

/// Destination register index of an instruction, if any.
fn dest_reg(instr: &CInstr) -> Option<usize> {
    match instr {
        CInstr::Binary { dest, .. }
        | CInstr::Icmp { dest, .. }
        | CInstr::Fcmp { dest, .. }
        | CInstr::Cast { dest, .. }
        | CInstr::Select { dest, .. }
        | CInstr::Alloca { dest, .. }
        | CInstr::Load { dest, .. }
        | CInstr::Gep { dest, .. }
        | CInstr::Phi { dest, .. } => Some(dest.index()),
        CInstr::Call { dest, .. } | CInstr::IntrinsicCall { dest, .. } => dest.map(|d| d.index()),
        _ => None,
    }
}

/// `(dest reg, written-value width mask, write always fires)` of an
/// instruction's destination, mirroring the interpreter's write-side
/// masking exactly.
fn def_fact(code: &CompiledModule, f: usize, instr: &CInstr) -> Option<(usize, u64, bool)> {
    match instr {
        CInstr::Binary { dest, ty, .. } => Some((dest.index(), ty.bit_mask(), true)),
        CInstr::Icmp { dest, .. } | CInstr::Fcmp { dest, .. } => {
            Some((dest.index(), Type::I1.bit_mask(), true))
        }
        CInstr::Cast {
            dest, op, to_ty, ..
        } => Some((dest.index(), cast_result_mask(*op, *to_ty), true)),
        CInstr::Select { dest, ty, .. }
        | CInstr::Load { dest, ty, .. }
        | CInstr::Phi { dest, ty, .. } => Some((dest.index(), ty.bit_mask(), true)),
        CInstr::Alloca { dest, .. } | CInstr::Gep { dest, .. } => {
            Some((dest.index(), Type::Ptr.bit_mask(), true))
        }
        CInstr::Call {
            dest: Some(d),
            callee,
            ..
        } => {
            // The return-value write is masked to the *caller's* declared
            // destination type; it only happens if the executed `ret`
            // carries a value, which is guaranteed only when every `ret` of
            // the callee does (checked by the caller of this fn).
            let mask = code.funcs[f]
                .reg_tys
                .get(d.index())
                .map_or(u64::MAX, |t| t.bit_mask());
            Some((d.index(), mask, *callee < code.funcs.len()))
        }
        CInstr::IntrinsicCall {
            dest: Some(d),
            which,
            ..
        } => {
            // malloc writes a pointer, the math intrinsics an f64 — both
            // full-width.  A dest on a result-less intrinsic never fires.
            Some((d.index(), u64::MAX, which.has_result()))
        }
        _ => None,
    }
}

/// Known constant payload of an operand (masked to the constant's own type),
/// for the constant-aware `and`/`or`/shift transfer refinements.
fn const_bits(op: &Operand) -> Option<u64> {
    match op {
        Operand::Const(Constant::Int { ty, bits })
        | Operand::Const(Constant::Float { ty, bits }) => Some(bits & ty.bit_mask()),
        Operand::Const(Constant::Null) => Some(0),
        // Globals resolve to runtime addresses — unknown statically.
        Operand::Const(Constant::Global { .. }) => None,
        Operand::Reg(_) => None,
    }
}

/// Demand arity of an intrinsic (how many leading args it actually reads);
/// extra args are ignored by the evaluator and therefore undemanded.
fn intrinsic_arity(which: Intrinsic) -> usize {
    match which {
        Intrinsic::Abort => 0,
        Intrinsic::Pow | Intrinsic::PrintBytes => 2,
        Intrinsic::Memcpy | Intrinsic::Memset => 3,
        _ => 1,
    }
}

/// Per-argument demand of an intrinsic call with live result bits `l`.
fn intrinsic_demand(which: Intrinsic, l: u64, arg_index: usize) -> u64 {
    if arg_index >= intrinsic_arity(which) {
        return 0;
    }
    let all_if_live = if l == 0 { 0 } else { u64::MAX };
    match which {
        // Total, non-trapping pure math on the full `as_f64` payload: only
        // demanded if the result is.
        Intrinsic::Sqrt
        | Intrinsic::Sin
        | Intrinsic::Cos
        | Intrinsic::Atan
        | Intrinsic::Pow
        | Intrinsic::Exp
        | Intrinsic::Log
        | Intrinsic::Fabs
        | Intrinsic::Floor
        | Intrinsic::Ceil
        | Intrinsic::Cbrt => all_if_live,
        // `print_char` consumes exactly the low byte.
        Intrinsic::PrintChar => 0xFF,
        // Output, heap and memory intrinsics are observable side effects (or
        // can trap) no matter what happens to their result.
        _ => u64::MAX,
    }
}

/// Join the live-in sets of `pc`'s successors into `out` (the live-out set).
fn successor_join(
    ctx: &Ctx<'_>,
    pc: usize,
    start: usize,
    end: usize,
    live: &[Vec<u64>],
    out: &mut [u64],
) {
    out.fill(0);
    let mut add = |s: usize| {
        // Branch targets are intra-function by construction; skip anything
        // else defensively (contributes nothing = sound only because such an
        // edge cannot exist in lowered code).
        if s >= start && s < end {
            for (o, v) in out.iter_mut().zip(&live[s]) {
                *o |= v;
            }
        }
    };
    match &ctx.code.instrs[pc] {
        CInstr::Jump { target } => add(*target),
        CInstr::CondBr {
            then_pc, else_pc, ..
        } => {
            add(*then_pc);
            add(*else_pc);
        }
        CInstr::Switch {
            default_pc, cases, ..
        } => {
            add(*default_pc);
            for (_, t) in cases.iter() {
                add(*t);
            }
        }
        CInstr::Ret { .. } | CInstr::Unreachable | CInstr::FellOff => {}
        _ => add(pc + 1),
    }
}

/// The backward transfer: kill the (always-firing) destination, then OR in
/// every register operand's demand.  Returns the gen list in `on_read`
/// operand order (for phi: every register arm, all with the same demand).
fn transfer(
    ctx: &Ctx<'_>,
    f: usize,
    pc: usize,
    out: &[u64],
    param_demand: &[Box<[u64]>],
    ret_demand: &[u64],
    new_in: &mut Vec<u64>,
) {
    new_in.clear();
    new_in.extend_from_slice(out);
    let instr = &ctx.code.instrs[pc];
    let def = def_fact(ctx.code, f, instr);
    if let Some((reg, _, fires)) = def {
        let fires = fires
            && match instr {
                CInstr::Call { callee, .. } => {
                    *callee < ctx.always_ret_value.len() && ctx.always_ret_value[*callee]
                }
                _ => true,
            };
        if fires {
            if let Some(slot) = new_in.get_mut(reg) {
                *slot = 0;
            }
        }
    }
    for (op, demand) in operand_demands(ctx, f, pc, out, param_demand, ret_demand) {
        if let Some(r) = op.as_reg() {
            if let Some(slot) = new_in.get_mut(r.index()) {
                *slot |= demand & ctx.reg_width[f].get(r.index()).copied().unwrap_or(u64::MAX);
            }
        }
    }
}

/// Demand of every operand of `pc` (in evaluation order), given the live-out
/// register masks.  Constant operands are included (with their demand) so the
/// caller can keep hook `operand_index` alignment by filtering on `is_reg`.
fn operand_demands(
    ctx: &Ctx<'_>,
    f: usize,
    pc: usize,
    out: &[u64],
    param_demand: &[Box<[u64]>],
    ret_demand: &[u64],
) -> Vec<(Operand, u64)> {
    let code = ctx.code;
    let instr = &code.instrs[pc];
    let dest_live = |width: u64| -> u64 {
        def_fact(code, f, instr)
            .and_then(|(reg, _, _)| out.get(reg).copied())
            .unwrap_or(0)
            & width
    };
    match instr {
        CInstr::Binary {
            op, ty, lhs, rhs, ..
        } => {
            let l = dest_live(ty.bit_mask());
            let (dl, dr) = binop_demands(*op, *ty, const_bits(lhs), const_bits(rhs), l);
            vec![(*lhs, dl), (*rhs, dr)]
        }
        CInstr::Icmp { ty, lhs, rhs, .. } => {
            // The comparison masks and sign-extends both operands from the
            // instruction type; demanded iff the i1 result is live.
            let d = if dest_live(1) == 0 { 0 } else { ty.bit_mask() };
            vec![(*lhs, d), (*rhs, d)]
        }
        CInstr::Fcmp { lhs, rhs, .. } => {
            // `as_f64` reads the full value payload.
            let d = if dest_live(1) == 0 { 0 } else { u64::MAX };
            vec![(*lhs, d), (*rhs, d)]
        }
        CInstr::Cast {
            op,
            from_ty,
            to_ty,
            src,
            ..
        } => {
            let l = dest_live(cast_result_mask(*op, *to_ty));
            vec![(*src, cast_demand(*op, *from_ty, *to_ty, l))]
        }
        CInstr::Select {
            ty,
            cond,
            then_val,
            else_val,
            ..
        } => {
            let l = dest_live(ty.bit_mask());
            // `as_bool` tests every payload bit of the condition.
            let dc = if l == 0 { 0 } else { u64::MAX };
            vec![(*cond, dc), (*then_val, l), (*else_val, l)]
        }
        CInstr::Alloca { count, .. } => {
            // The element count sizes the stack allocation: it can trap and
            // it shifts every later stack address — always fully demanded.
            vec![(*count, u64::MAX)]
        }
        CInstr::Load { addr, .. } => vec![(*addr, u64::MAX)],
        CInstr::Store { ty, value, addr } => {
            // The store writes exactly `ty`-width bits to untracked memory.
            vec![(*value, ty.bit_mask()), (*addr, u64::MAX)]
        }
        CInstr::Gep { base, index, .. } => {
            let l = dest_live(Type::Ptr.bit_mask());
            let d = smear_down(l);
            vec![(*base, d), (*index, d)]
        }
        CInstr::Call { callee, args, .. } => args
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let d = if *callee < code.funcs.len() {
                    param_demand[*callee].get(i).copied().unwrap_or(0)
                } else {
                    // Invalid callee traps before reading any argument.
                    0
                };
                (*a, d)
            })
            .collect(),
        CInstr::IntrinsicCall { which, args, dest } => {
            let l = match dest {
                Some(d) if which.has_result() => out.get(d.index()).copied().unwrap_or(0),
                _ => 0,
            };
            args.iter()
                .enumerate()
                .map(|(i, a)| (*a, intrinsic_demand(*which, l, i)))
                .collect()
        }
        CInstr::Phi { ty, incoming, .. } => {
            let l = dest_live(ty.bit_mask());
            incoming.iter().map(|(_, op)| (*op, l)).collect()
        }
        CInstr::CondBr { cond, .. } => vec![(*cond, u64::MAX)],
        CInstr::Switch { value, .. } => vec![(*value, u64::MAX)],
        CInstr::Ret { value } => match value {
            Some(op) => {
                let d = ret_demand.get(f).copied().unwrap_or(u64::MAX);
                vec![(*op, d)]
            }
            None => vec![],
        },
        CInstr::Jump { .. } | CInstr::Unreachable | CInstr::FellOff => vec![],
    }
}

/// Run one function's backward liveness to its local fixed point.  Returns
/// `false` if the (defensive) sweep cap was hit.
fn liveness_fixpoint(
    ctx: &Ctx<'_>,
    f: usize,
    param_demand: &[Box<[u64]>],
    ret_demand: &[u64],
    live: &mut [Vec<u64>],
) -> bool {
    let (start, end) = ctx.ranges[f];
    if start == end {
        return true;
    }
    let regs = ctx.reg_width[f].len();
    let mut out = vec![0u64; regs];
    let mut new_in: Vec<u64> = Vec::with_capacity(regs);
    // Masks only grow; every productive sweep adds at least one bit, so the
    // lattice height bounds the sweep count.  The cap is defensive only.
    let cap = 64 * regs * (end - start) + 2;
    for _ in 0..cap {
        let mut changed = false;
        for pc in (start..end).rev() {
            successor_join(ctx, pc, start, end, live, &mut out);
            transfer(ctx, f, pc, &out, param_demand, ret_demand, &mut new_in);
            if new_in[..] != live[pc][..] {
                live[pc].copy_from_slice(&new_in);
                changed = true;
            }
        }
        if !changed {
            return true;
        }
    }
    false
}

/// Materialize one PC's [`InstrFlow`] from the converged live-out set.
fn instr_flow(
    ctx: &Ctx<'_>,
    f: usize,
    pc: usize,
    out: &[u64],
    param_demand: &[Box<[u64]>],
    ret_demand: &[u64],
    saturated: bool,
) -> InstrFlow {
    let code = ctx.code;
    let instr = &code.instrs[pc];
    let widths = &ctx.reg_width[f];
    let (dest_width, dest_fires, mut dest_live) = match def_fact(code, f, instr) {
        Some((reg, width, fires)) => {
            let fires = fires
                && match instr {
                    CInstr::Call { callee, .. } => {
                        *callee < ctx.always_ret_value.len() && ctx.always_ret_value[*callee]
                    }
                    _ => true,
                };
            (width, fires, out.get(reg).copied().unwrap_or(0) & width)
        }
        None => (0, false, 0),
    };

    let (mut read_demand, read_width): (Vec<u64>, Vec<u64>) = match instr {
        CInstr::Phi { ty, incoming, .. } => {
            // The interpreter reads exactly one arm (operand index 0); all
            // later indices never reach `on_read`.
            let l = dest_live & ty.bit_mask();
            let union_width: u64 = incoming
                .iter()
                .filter_map(|(_, op)| op.as_reg())
                .map(|r| widths.get(r.index()).copied().unwrap_or(u64::MAX))
                .fold(0, |a, b| a | b);
            let arms = incoming.iter().filter(|(_, op)| op.is_reg()).count();
            let mut d = vec![0u64; arms];
            let mut w = vec![0u64; arms];
            if arms > 0 {
                d[0] = l & union_width;
                w[0] = union_width;
            }
            (d, w)
        }
        _ => operand_demands(ctx, f, pc, out, param_demand, ret_demand)
            .into_iter()
            .filter_map(|(op, demand)| {
                op.as_reg().map(|r| {
                    let w = widths.get(r.index()).copied().unwrap_or(u64::MAX);
                    (demand & w, w)
                })
            })
            .unzip(),
    };

    if saturated {
        dest_live = dest_width;
        read_demand.copy_from_slice(&read_width);
    }

    InstrFlow {
        dest_live,
        dest_width,
        dest_fires,
        read_demand: read_demand.into_boxed_slice(),
        read_width: read_width.into_boxed_slice(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::IcmpPred;

    fn flow_of(mb: ModuleBuilder) -> (CompiledModule, BitFlow) {
        let code = CompiledModule::lower(&mb.finish());
        let flow = BitFlow::analyze(&code);
        (code, flow)
    }

    /// PC of the first instruction matching `pred`.
    fn find_pc(code: &CompiledModule, pred: impl Fn(&CInstr) -> bool) -> usize {
        code.instrs
            .iter()
            .position(pred)
            .expect("expected instruction not found")
    }

    #[test]
    fn smears_cover_expected_ranges() {
        assert_eq!(smear_down(0), 0);
        assert_eq!(smear_down(0b1000), 0b1111);
        assert_eq!(smear_down(1 << 63), u64::MAX);
        assert_eq!(smear_up(0), 0);
        assert_eq!(smear_up(0b1000), u64::MAX << 3);
        assert_eq!(smear_up(1), u64::MAX);
    }

    #[test]
    fn and_with_constant_kills_masked_bits() {
        let (dl, dr) = binop_demands(BinOp::And, Type::I64, None, Some(0xFF), u64::MAX);
        assert_eq!(dl, 0xFF);
        assert_eq!(dr, u64::MAX); // rhs is the constant; demand unused
        let (dl, _) = binop_demands(BinOp::And, Type::I64, None, None, 0xF0);
        assert_eq!(dl, 0xF0);
    }

    #[test]
    fn constant_shl_kills_top_live_bits() {
        // dest_live = low byte, shifted left by 4: only lhs bits 0..4 reach it.
        let (dl, dr) = binop_demands(BinOp::Shl, Type::I64, None, Some(4), 0xFF);
        assert_eq!(dl, 0x0F);
        assert_eq!(dr, 0);
        // Variable shift amount: only the low log2(64) bits are demanded.
        let (_, dr) = binop_demands(BinOp::Shl, Type::I64, None, None, 0xFF);
        assert_eq!(dr, 63);
    }

    #[test]
    fn div_ops_are_fully_demanded_even_when_dead() {
        let (dl, dr) = binop_demands(BinOp::SDiv, Type::I32, None, None, 0);
        assert_eq!((dl, dr), (u64::MAX, u64::MAX));
        let (dl, dr) = binop_demands(BinOp::UDiv, Type::I32, None, None, 0);
        assert_eq!((dl, dr), (0xFFFF_FFFF, 0xFFFF_FFFF));
    }

    #[test]
    fn trunc_kills_bits_above_target_width() {
        let d = cast_demand(CastOp::Trunc, Type::I64, Type::I8, u64::MAX);
        assert_eq!(d, 0xFF);
        let d = cast_demand(CastOp::SExt, Type::I8, Type::I64, u64::MAX);
        assert_eq!(d, 0xFF);
        // Only high result bits live: sext folds them onto the sign bit.
        let d = cast_demand(CastOp::SExt, Type::I8, Type::I64, 0xFF00);
        assert_eq!(d, 0x80);
        let d = cast_demand(CastOp::ZExt, Type::I8, Type::I64, 0xFF00);
        assert_eq!(d, 0);
    }

    #[test]
    fn dead_def_chain_is_fully_dead() {
        // A register chain never feeding output, a store, or control flow.
        let mut mb = ModuleBuilder::new("dead");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let a = f.add(Type::I64, 1i64, 2i64);
            let b = f.mul(Type::I64, a, 3i64);
            let _ = f.xor(Type::I64, b, 5i64);
            f.print_i64(7i64);
            f.ret_void();
        }
        mb.set_entry(main);
        let (code, flow) = flow_of(mb);
        let add_pc = find_pc(&code, |i| {
            matches!(i, CInstr::Binary { op: BinOp::Add, .. })
        });
        assert_eq!(flow.flow(add_pc).dest_live, 0);
        for bit in 0..64 {
            assert!(flow.is_dead_write_bit(add_pc, bit));
        }
        let defs = flow.dead_defs(&code);
        assert!(defs.iter().any(|d| d.pc == add_pc));
        // The space accounting sees the dead bits.
        let space = flow.space();
        assert!(space.write_dead_bits >= 64 * 3);
        assert!(space.write_dead_fraction() > 0.0);
    }

    #[test]
    fn masked_value_demands_only_surviving_bits() {
        // print_i64(x & 0xFF): only the low byte of the load is live.
        let mut mb = ModuleBuilder::new("mask");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let slot = f.slot(Type::I64);
            f.store(Type::I64, 0x1234i64, slot);
            let x = f.load(Type::I64, slot);
            let low = f.and(Type::I64, x, 0xFFi64);
            f.print_i64(low);
            f.ret_void();
        }
        mb.set_entry(main);
        let (code, flow) = flow_of(mb);
        let and_pc = find_pc(&code, |i| {
            matches!(i, CInstr::Binary { op: BinOp::And, .. })
        });
        // The and's lhs register read demands only the low byte...
        assert_eq!(flow.flow(and_pc).read_demand[0], 0xFF);
        assert!(flow.is_dead_read_bit(and_pc, 0, 8));
        assert!(!flow.is_dead_read_bit(and_pc, 0, 7));
        // ...and that propagates back through the load's destination.
        let load_pc = find_pc(&code, |i| matches!(i, CInstr::Load { .. }));
        assert_eq!(flow.flow(load_pc).dest_live, 0xFF);
    }

    #[test]
    fn call_interface_demands_propagate_both_ways() {
        // helper(x) = x & 0xF0 — the callee masks its parameter, and the
        // caller only prints the low byte of the result.
        let mut mb = ModuleBuilder::new("calls");
        let helper = mb.declare("helper", &[(Type::I64, "x")], Some(Type::I64));
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(helper);
            let x = f.param(0);
            let r = f.and(Type::I64, x, 0xF0i64);
            f.ret(r);
        }
        {
            let mut f = mb.define(main);
            let slot = f.slot(Type::I64);
            f.store(Type::I64, 0x5A5Ai64, slot);
            let v = f.load(Type::I64, slot);
            let r = f.call(helper, &[Operand::Reg(v)], Some(Type::I64)).unwrap();
            let masked = f.and(Type::I64, r, 0xFFi64);
            f.print_i64(masked);
            f.ret_void();
        }
        mb.set_entry(main);
        let (code, flow) = flow_of(mb);
        // Parameter demand of helper: only 0xF0 survives its own mask.
        assert_eq!(flow.param_demand(0), &[0xF0]);
        // Return demand of helper: the caller masks the result to 0xFF.
        assert_eq!(flow.ret_demand(0), 0xFF);
        // The call's argument read site demands exactly the param demand.
        let call_pc = find_pc(&code, |i| matches!(i, CInstr::Call { .. }));
        assert_eq!(flow.flow(call_pc).read_demand[0], 0xF0);
        // The callee's ret site demands exactly what callers consume.
        let ret_pc = find_pc(&code, |i| matches!(i, CInstr::Ret { value: Some(_) }));
        assert_eq!(flow.flow(ret_pc).read_demand[0], 0xFF);
    }

    #[test]
    fn stores_and_branches_are_fully_demanded() {
        let mut mb = ModuleBuilder::new("fulldemand");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let slot = f.slot(Type::I64);
            f.counted_loop(Type::I64, 0i64, 4i64, |f, i| {
                f.store(Type::I64, i, slot);
            });
            let v = f.load(Type::I64, slot);
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        let (code, flow) = flow_of(mb);
        // A store whose value operand is a register (the loop-body store).
        let store_pc = find_pc(
            &code,
            |i| matches!(i, CInstr::Store { value, .. } if value.is_reg()),
        );
        // value demanded within its type, address fully.
        let fl = flow.flow(store_pc);
        assert_eq!(fl.read_demand[0], u64::MAX);
        assert_eq!(fl.read_demand[1], u64::MAX);
        let br_pc = find_pc(&code, |i| matches!(i, CInstr::CondBr { .. }));
        // i1 condition: demand clamps to the register's 1-bit width.
        assert_eq!(flow.flow(br_pc).read_demand[0], 1);
    }

    #[test]
    fn phi_reads_one_arm_and_later_indices_are_dead() {
        let mut mb = ModuleBuilder::new("phi");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let then_bb = f.new_block("then");
            let else_bb = f.new_block("else");
            let join = f.new_block("join");
            let slot = f.slot(Type::I64);
            f.store(Type::I64, 1i64, slot);
            let v = f.load(Type::I64, slot);
            let c = f.icmp(IcmpPred::Sgt, Type::I64, v, 0i64);
            f.cond_br(c, then_bb, else_bb);
            f.switch_to(then_bb);
            let a = f.add(Type::I64, v, 1i64);
            f.br(join);
            f.switch_to(else_bb);
            let b = f.add(Type::I64, v, 2i64);
            f.br(join);
            f.switch_to(join);
            let p = f.phi(
                Type::I64,
                &[(then_bb, Operand::Reg(a)), (else_bb, Operand::Reg(b))],
            );
            f.print_i64(p);
            f.ret_void();
        }
        mb.set_entry(main);
        let (code, flow) = flow_of(mb);
        let phi_pc = find_pc(&code, |i| matches!(i, CInstr::Phi { .. }));
        let fl = flow.flow(phi_pc);
        assert_eq!(fl.read_demand.len(), 2);
        assert_eq!(fl.read_demand[0], u64::MAX);
        // Operand index 1 never reaches on_read: statically dead.
        assert_eq!(fl.read_demand[1], 0);
        assert!(flow.is_dead_read_bit(phi_pc, 1, 0));
    }

    #[test]
    fn saturation_flag_defaults_off_and_space_is_consistent() {
        let mut mb = ModuleBuilder::new("sat");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let a = f.add(Type::I32, 1i32, 2i32);
            f.print_i64(a);
            f.ret_void();
        }
        mb.set_entry(main);
        let (code, flow) = flow_of(mb);
        assert!(!flow.saturated());
        let space = flow.space();
        assert!(space.read_dead_bits <= space.read_site_bits);
        assert!(space.write_dead_bits <= space.write_site_bits);
        // The i32 add's 64-bit-model write space has 32 trivially-dead bits.
        assert!(space.write_dead_fraction_model64() > 0.0);
        drop(code);
    }
}
