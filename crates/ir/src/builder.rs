//! Ergonomic construction of IR modules and functions.
//!
//! The benchmark workloads in `mbfi-workloads` are written against this API.
//! The builder mimics the style of clang-emitted, unoptimised LLVM IR: loop
//! counters and local variables live in `alloca`-ed stack slots that are
//! loaded and stored around every use.  This produces a realistic mixture of
//! address-carrying and data-carrying registers, which is exactly the
//! property that drives the inject-on-read vs. inject-on-write differences
//! analysed in the paper (§IV-A).

use crate::function::{Block, BlockId, FuncId, Function, RegInfo};
use crate::instr::{BinOp, CastOp, FcmpPred, IcmpPred, Instr, Intrinsic};
use crate::module::{Global, Module};
use crate::types::Type;
use crate::value::{Constant, Operand, Reg};

/// Builds a [`Module`]: declares globals and functions, then defines bodies.
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Start a new module with the given name.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Add a zero-initialised global of `size` bytes; returns an operand that
    /// evaluates to its address.
    pub fn global_zeroed(&mut self, name: impl Into<String>, size: u64) -> Operand {
        let idx = self.module.globals.len();
        self.module.globals.push(Global::zeroed(name, size));
        Operand::Const(Constant::global(idx))
    }

    /// Add a global initialised with `bytes`; returns its address operand.
    pub fn global_bytes(&mut self, name: impl Into<String>, bytes: Vec<u8>) -> Operand {
        let idx = self.module.globals.len();
        self.module.globals.push(Global::with_bytes(name, bytes));
        Operand::Const(Constant::global(idx))
    }

    /// Add a global initialised with little-endian `i32` words.
    pub fn global_i32s(&mut self, name: impl Into<String>, words: &[i32]) -> Operand {
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.global_bytes(name, bytes)
    }

    /// Add a global initialised with little-endian `i64` words.
    pub fn global_i64s(&mut self, name: impl Into<String>, words: &[i64]) -> Operand {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.global_bytes(name, bytes)
    }

    /// Add a global initialised with `f64` values.
    pub fn global_f64s(&mut self, name: impl Into<String>, values: &[f64]) -> Operand {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.global_bytes(name, bytes)
    }

    /// Declare a function signature; the body is defined later with
    /// [`ModuleBuilder::define`].
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        params: &[(Type, &str)],
        ret_ty: Option<Type>,
    ) -> FuncId {
        let id = FuncId(self.module.functions.len() as u32);
        let mut regs = Vec::new();
        let mut param_regs = Vec::new();
        for (ty, pname) in params {
            let reg = Reg(regs.len() as u32);
            regs.push(RegInfo {
                ty: *ty,
                name: Some((*pname).to_string()),
            });
            param_regs.push(reg);
        }
        self.module.functions.push(Function {
            name: name.into(),
            params: param_regs,
            ret_ty,
            regs,
            blocks: Vec::new(),
        });
        id
    }

    /// Start defining the body of a previously declared function.
    pub fn define(&mut self, id: FuncId) -> FunctionBuilder<'_> {
        let func = &mut self.module.functions[id.index()];
        assert!(
            func.blocks.is_empty(),
            "function {} already has a body",
            func.name
        );
        func.blocks.push(Block::new(Some("entry".to_string())));
        FunctionBuilder {
            func,
            current: BlockId(0),
        }
    }

    /// Mark the entry (main) function of the module.
    pub fn set_entry(&mut self, id: FuncId) {
        self.module.entry = Some(id);
    }

    /// Finish building and return the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// A handle to a basic block created by a [`FunctionBuilder`].
pub type BlockHandle = BlockId;

/// Builds the body of a single function.
pub struct FunctionBuilder<'m> {
    func: &'m mut Function,
    current: BlockId,
}

impl<'m> FunctionBuilder<'m> {
    /// The `i`-th parameter register.
    pub fn param(&self, i: usize) -> Reg {
        self.func.params[i]
    }

    /// Create a new (empty) basic block with a label.
    pub fn new_block(&mut self, label: &str) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block::new(Some(label.to_string())));
        id
    }

    /// Switch the insertion point to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// The block currently receiving instructions.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    fn new_reg(&mut self, ty: Type) -> Reg {
        let reg = Reg(self.func.regs.len() as u32);
        self.func.regs.push(RegInfo { ty, name: None });
        reg
    }

    fn push(&mut self, instr: Instr) {
        self.func.blocks[self.current.index()].instrs.push(instr);
    }

    // ----- arithmetic -------------------------------------------------

    /// Emit a binary operation.
    pub fn binary(
        &mut self,
        op: BinOp,
        ty: Type,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> Reg {
        let dest = self.new_reg(ty);
        self.push(Instr::Binary {
            dest,
            op,
            ty,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
        dest
    }

    /// Integer add.
    pub fn add(&mut self, ty: Type, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::Add, ty, lhs, rhs)
    }

    /// Integer subtract.
    pub fn sub(&mut self, ty: Type, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::Sub, ty, lhs, rhs)
    }

    /// Integer multiply.
    pub fn mul(&mut self, ty: Type, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::Mul, ty, lhs, rhs)
    }

    /// Signed divide.
    pub fn sdiv(&mut self, ty: Type, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::SDiv, ty, lhs, rhs)
    }

    /// Unsigned divide.
    pub fn udiv(&mut self, ty: Type, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::UDiv, ty, lhs, rhs)
    }

    /// Signed remainder.
    pub fn srem(&mut self, ty: Type, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::SRem, ty, lhs, rhs)
    }

    /// Unsigned remainder.
    pub fn urem(&mut self, ty: Type, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::URem, ty, lhs, rhs)
    }

    /// Bitwise and.
    pub fn and(&mut self, ty: Type, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::And, ty, lhs, rhs)
    }

    /// Bitwise or.
    pub fn or(&mut self, ty: Type, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::Or, ty, lhs, rhs)
    }

    /// Bitwise xor.
    pub fn xor(&mut self, ty: Type, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::Xor, ty, lhs, rhs)
    }

    /// Shift left.
    pub fn shl(&mut self, ty: Type, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::Shl, ty, lhs, rhs)
    }

    /// Logical shift right.
    pub fn lshr(&mut self, ty: Type, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::LShr, ty, lhs, rhs)
    }

    /// Arithmetic shift right.
    pub fn ashr(&mut self, ty: Type, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::AShr, ty, lhs, rhs)
    }

    /// Floating add (`f64` unless `ty` overridden via [`FunctionBuilder::binary`]).
    pub fn fadd(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::FAdd, Type::F64, lhs, rhs)
    }

    /// Floating subtract.
    pub fn fsub(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::FSub, Type::F64, lhs, rhs)
    }

    /// Floating multiply.
    pub fn fmul(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::FMul, Type::F64, lhs, rhs)
    }

    /// Floating divide.
    pub fn fdiv(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binary(BinOp::FDiv, Type::F64, lhs, rhs)
    }

    // ----- comparisons, casts, select ---------------------------------

    /// Integer comparison producing an `i1`.
    pub fn icmp(
        &mut self,
        pred: IcmpPred,
        ty: Type,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> Reg {
        let dest = self.new_reg(Type::I1);
        self.push(Instr::Icmp {
            dest,
            pred,
            ty,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
        dest
    }

    /// Floating-point comparison producing an `i1`.
    pub fn fcmp(
        &mut self,
        pred: FcmpPred,
        ty: Type,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> Reg {
        let dest = self.new_reg(Type::I1);
        self.push(Instr::Fcmp {
            dest,
            pred,
            ty,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
        dest
    }

    /// Type conversion.
    pub fn cast(&mut self, op: CastOp, from_ty: Type, to_ty: Type, src: impl Into<Operand>) -> Reg {
        let dest = self.new_reg(to_ty);
        self.push(Instr::Cast {
            dest,
            op,
            from_ty,
            to_ty,
            src: src.into(),
        });
        dest
    }

    /// Sign-extend an integer to `i64`.
    pub fn sext_to_i64(&mut self, from_ty: Type, src: impl Into<Operand>) -> Reg {
        self.cast(CastOp::SExt, from_ty, Type::I64, src)
    }

    /// Convert a signed integer to `f64`.
    pub fn sitofp(&mut self, from_ty: Type, src: impl Into<Operand>) -> Reg {
        self.cast(CastOp::SiToFp, from_ty, Type::F64, src)
    }

    /// Convert an `f64` to a signed integer of type `to_ty`.
    pub fn fptosi(&mut self, to_ty: Type, src: impl Into<Operand>) -> Reg {
        self.cast(CastOp::FpToSi, Type::F64, to_ty, src)
    }

    /// Truncate an integer.
    pub fn trunc(&mut self, from_ty: Type, to_ty: Type, src: impl Into<Operand>) -> Reg {
        self.cast(CastOp::Trunc, from_ty, to_ty, src)
    }

    /// Zero-extend an integer.
    pub fn zext(&mut self, from_ty: Type, to_ty: Type, src: impl Into<Operand>) -> Reg {
        self.cast(CastOp::ZExt, from_ty, to_ty, src)
    }

    /// Two-way select.
    pub fn select(
        &mut self,
        ty: Type,
        cond: impl Into<Operand>,
        then_val: impl Into<Operand>,
        else_val: impl Into<Operand>,
    ) -> Reg {
        let dest = self.new_reg(ty);
        self.push(Instr::Select {
            dest,
            ty,
            cond: cond.into(),
            then_val: then_val.into(),
            else_val: else_val.into(),
        });
        dest
    }

    // ----- memory ------------------------------------------------------

    /// Reserve stack space for `count` elements of `elem_ty`.
    pub fn alloca(&mut self, elem_ty: Type, count: impl Into<Operand>) -> Reg {
        let dest = self.new_reg(Type::Ptr);
        self.push(Instr::Alloca {
            dest,
            elem_ty,
            count: count.into(),
        });
        dest
    }

    /// Allocate a single stack slot for a local variable of `ty`.
    pub fn slot(&mut self, ty: Type) -> Reg {
        self.alloca(ty, 1i64)
    }

    /// Load a value of `ty` from `addr`.
    pub fn load(&mut self, ty: Type, addr: impl Into<Operand>) -> Reg {
        let dest = self.new_reg(ty);
        self.push(Instr::Load {
            dest,
            ty,
            addr: addr.into(),
        });
        dest
    }

    /// Store `value` of `ty` to `addr`.
    pub fn store(&mut self, ty: Type, value: impl Into<Operand>, addr: impl Into<Operand>) {
        self.push(Instr::Store {
            ty,
            value: value.into(),
            addr: addr.into(),
        });
    }

    /// Compute `base + index * elem_size`.
    pub fn gep(
        &mut self,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
        elem_size: u64,
    ) -> Reg {
        self.gep_offset(base, index, elem_size, 0)
    }

    /// Compute `base + index * elem_size + offset`.
    pub fn gep_offset(
        &mut self,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
        elem_size: u64,
        offset: i64,
    ) -> Reg {
        let dest = self.new_reg(Type::Ptr);
        self.push(Instr::Gep {
            dest,
            base: base.into(),
            index: index.into(),
            elem_size,
            offset,
        });
        dest
    }

    /// Load element `index` of an array of `ty` starting at `base`.
    pub fn load_elem(
        &mut self,
        ty: Type,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
    ) -> Reg {
        let addr = self.gep(base, index, ty.byte_size());
        self.load(ty, addr)
    }

    /// Store `value` into element `index` of an array of `ty` at `base`.
    pub fn store_elem(
        &mut self,
        ty: Type,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
        value: impl Into<Operand>,
    ) {
        let addr = self.gep(base, index, ty.byte_size());
        self.store(ty, value, addr);
    }

    // ----- calls and intrinsics -----------------------------------------

    /// Call another function in the module.
    pub fn call(&mut self, callee: FuncId, args: &[Operand], ret_ty: Option<Type>) -> Option<Reg> {
        let dest = ret_ty.map(|ty| self.new_reg(ty));
        self.push(Instr::Call {
            dest,
            callee: callee.index(),
            args: args.to_vec(),
        });
        dest
    }

    /// Call an intrinsic.
    pub fn intrinsic(
        &mut self,
        which: Intrinsic,
        args: &[Operand],
        ret_ty: Option<Type>,
    ) -> Option<Reg> {
        let dest = ret_ty.map(|ty| self.new_reg(ty));
        self.push(Instr::IntrinsicCall {
            dest,
            which,
            args: args.to_vec(),
        });
        dest
    }

    /// Print a signed 64-bit integer (convenience around [`Intrinsic::PrintI64`]).
    pub fn print_i64(&mut self, value: impl Into<Operand>) {
        let v = value.into();
        self.intrinsic(Intrinsic::PrintI64, &[v], None);
    }

    /// Print a double.
    pub fn print_f64(&mut self, value: impl Into<Operand>) {
        let v = value.into();
        self.intrinsic(Intrinsic::PrintF64, &[v], None);
    }

    /// Print one byte.
    pub fn print_char(&mut self, value: impl Into<Operand>) {
        let v = value.into();
        self.intrinsic(Intrinsic::PrintChar, &[v], None);
    }

    /// Heap-allocate `size` bytes.
    pub fn malloc(&mut self, size: impl Into<Operand>) -> Reg {
        let s = size.into();
        self.intrinsic(Intrinsic::Malloc, &[s], Some(Type::Ptr))
            .expect("malloc returns a pointer")
    }

    /// Unary math intrinsic on `f64` (sqrt, sin, cos, ...).
    pub fn math1(&mut self, which: Intrinsic, x: impl Into<Operand>) -> Reg {
        let x = x.into();
        self.intrinsic(which, &[x], Some(Type::F64))
            .expect("math intrinsics return f64")
    }

    /// Square root.
    pub fn sqrt(&mut self, x: impl Into<Operand>) -> Reg {
        self.math1(Intrinsic::Sqrt, x)
    }

    /// Sine.
    pub fn sin(&mut self, x: impl Into<Operand>) -> Reg {
        self.math1(Intrinsic::Sin, x)
    }

    /// Cosine.
    pub fn cos(&mut self, x: impl Into<Operand>) -> Reg {
        self.math1(Intrinsic::Cos, x)
    }

    /// `pow(base, exp)`.
    pub fn pow(&mut self, base: impl Into<Operand>, exp: impl Into<Operand>) -> Reg {
        let b = base.into();
        let e = exp.into();
        self.intrinsic(Intrinsic::Pow, &[b, e], Some(Type::F64))
            .expect("pow returns f64")
    }

    // ----- control flow --------------------------------------------------

    /// SSA phi node.
    pub fn phi(&mut self, ty: Type, incoming: &[(BlockId, Operand)]) -> Reg {
        let dest = self.new_reg(ty);
        self.push(Instr::Phi {
            dest,
            ty,
            incoming: incoming.to_vec(),
        });
        dest
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.push(Instr::Br { target });
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: impl Into<Operand>, then_bb: BlockId, else_bb: BlockId) {
        self.push(Instr::CondBr {
            cond: cond.into(),
            then_bb,
            else_bb,
        });
    }

    /// Multi-way branch.
    pub fn switch(
        &mut self,
        value: impl Into<Operand>,
        default: BlockId,
        cases: &[(u64, BlockId)],
    ) {
        self.push(Instr::Switch {
            value: value.into(),
            default,
            cases: cases.to_vec(),
        });
    }

    /// Return a value.
    pub fn ret(&mut self, value: impl Into<Operand>) {
        self.push(Instr::Ret {
            value: Some(value.into()),
        });
    }

    /// Return from a `void` function.
    pub fn ret_void(&mut self) {
        self.push(Instr::Ret { value: None });
    }

    /// Mark an unreachable point.
    pub fn unreachable(&mut self) {
        self.push(Instr::Unreachable);
    }

    // ----- structured helpers --------------------------------------------

    /// Emit a counted loop `for (i = from; i < to; i += 1)`.
    ///
    /// The loop counter lives in a stack slot (as clang -O0 would emit), and
    /// the body closure receives the *loaded* counter value for the current
    /// iteration.  The insertion point ends up in the block following the
    /// loop.
    pub fn counted_loop<F>(
        &mut self,
        ty: Type,
        from: impl Into<Operand>,
        to: impl Into<Operand>,
        body: F,
    ) where
        F: FnOnce(&mut Self, Reg),
    {
        let from = from.into();
        let to = to.into();
        let slot = self.slot(ty);
        self.store(ty, from, slot);

        let header = self.new_block("loop.header");
        let body_bb = self.new_block("loop.body");
        let latch = self.new_block("loop.latch");
        let exit = self.new_block("loop.exit");

        self.br(header);

        self.switch_to(header);
        let i = self.load(ty, slot);
        let cond = self.icmp(IcmpPred::Slt, ty, i, to);
        self.cond_br(cond, body_bb, exit);

        self.switch_to(body_bb);
        let i_body = self.load(ty, slot);
        body(self, i_body);
        // The body may have moved the insertion point; branch from wherever
        // it ended up into the latch.
        self.br(latch);

        self.switch_to(latch);
        let i_latch = self.load(ty, slot);
        let next = self.add(ty, i_latch, Operand::Const(Constant::int(ty, 1)));
        self.store(ty, next, slot);
        self.br(header);

        self.switch_to(exit);
    }

    /// Emit an if/then/else; each closure builds one arm.  The insertion
    /// point ends up in the join block.
    pub fn if_else<T, E>(&mut self, cond: impl Into<Operand>, then_arm: T, else_arm: E)
    where
        T: FnOnce(&mut Self),
        E: FnOnce(&mut Self),
    {
        let cond = cond.into();
        let then_bb = self.new_block("if.then");
        let else_bb = self.new_block("if.else");
        let join = self.new_block("if.join");
        self.cond_br(cond, then_bb, else_bb);

        self.switch_to(then_bb);
        then_arm(self);
        self.br(join);

        self.switch_to(else_bb);
        else_arm(self);
        self.br(join);

        self.switch_to(join);
    }

    /// Emit an if without an else arm.
    pub fn if_then<T>(&mut self, cond: impl Into<Operand>, then_arm: T)
    where
        T: FnOnce(&mut Self),
    {
        self.if_else(cond, then_arm, |_| {});
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_module;

    #[test]
    fn build_minimal_main() {
        let mut mb = ModuleBuilder::new("mini");
        let main = mb.declare("main", &[], Some(Type::I32));
        {
            let mut f = mb.define(main);
            let x = f.add(Type::I32, 1i32, 2i32);
            f.print_i64(x);
            f.ret(x);
        }
        mb.set_entry(main);
        let m = mb.finish();
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.entry_function().name, "main");
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn counted_loop_produces_blocks() {
        let mut mb = ModuleBuilder::new("loop");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 10i64, |f, i| {
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, i);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        let m = mb.finish();
        assert!(m.functions[0].blocks.len() >= 5);
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn if_else_joins_control_flow() {
        let mut mb = ModuleBuilder::new("ifelse");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let c = f.icmp(IcmpPred::Slt, Type::I32, 1i32, 2i32);
            f.if_else(c, |f| f.print_i64(1i64), |f| f.print_i64(0i64));
            f.ret_void();
        }
        mb.set_entry(main);
        let m = mb.finish();
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn globals_resolve_to_constant_operands() {
        let mut mb = ModuleBuilder::new("glob");
        let g = mb.global_i32s("table", &[1, 2, 3]);
        match g {
            Operand::Const(Constant::Global { index }) => assert_eq!(index, 0),
            other => panic!("unexpected operand {other:?}"),
        }
        let m = mb.finish();
        assert_eq!(m.globals[0].size, 12);
    }

    #[test]
    #[should_panic(expected = "already has a body")]
    fn double_define_panics() {
        let mut mb = ModuleBuilder::new("dup");
        let f = mb.declare("f", &[], None);
        {
            let mut b = mb.define(f);
            b.ret_void();
        }
        let _ = mb.define(f);
    }
}
