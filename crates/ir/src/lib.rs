//! # mbfi-ir
//!
//! A small SSA-style intermediate representation (IR) closely modelled on the
//! LLVM IR subset that the LLFI fault injector targets in
//! *"One Bit is (Not) Enough"* (DSN 2017).
//!
//! The IR provides:
//!
//! * a type system of fixed-width integers, IEEE-754 floats and opaque
//!   pointers ([`Type`]),
//! * virtual registers holding typed values ([`Reg`], [`Constant`]),
//! * an instruction set with arithmetic, comparisons, casts, memory access,
//!   control flow, calls and intrinsics ([`Instr`]),
//! * functions made of basic blocks ([`Function`], [`Block`]),
//! * modules with global data ([`Module`], [`Global`]),
//! * a flat bytecode lowering ([`CompiledModule`]) — the pre-decoded form
//!   the interpreter's hot path executes,
//! * an ergonomic [`builder`] API used by the benchmark workloads,
//! * a textual [`printer`] for dumping and inspecting programs,
//! * a structural [`verify`] pass, and
//! * a bit-level liveness/mask dataflow ([`bitflow`]) that proves
//!   (instruction, register, bit) fault sites equivalent to golden for
//!   static pruning.
//!
//! The fault models of the paper operate on the *source and destination
//! registers of dynamic IR instructions*; everything in this crate exists so
//! that the interpreter in `mbfi-vm` can expose exactly those registers to
//! the injector in `mbfi-core`.

pub mod bitflow;
pub mod builder;
pub mod compiled;
pub mod function;
pub mod instr;
pub mod module;
pub mod printer;
pub mod types;
pub mod value;
pub mod verify;

pub use bitflow::{BitFlow, BitSpace, DeadDef, InstrFlow};
pub use builder::{BlockHandle, FunctionBuilder, ModuleBuilder};
pub use compiled::{CInstr, CompiledModule, FrameLayout, InstrMeta, LowerOptions};
pub use function::{Block, BlockId, FuncId, Function, RegInfo};
pub use instr::{BinOp, CastOp, FcmpPred, IcmpPred, Instr, Intrinsic, Opcode};
pub use module::{Global, Module};
pub use printer::print_module;
pub use types::Type;
pub use value::{Constant, Operand, Reg};
pub use verify::{lint_dead_defs, verify_module, LintWarning, VerifyError};
