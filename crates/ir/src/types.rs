//! The IR type system.
//!
//! The type system mirrors the scalar subset of LLVM IR that the fault model
//! of the paper cares about: fixed-width integers (`i1`..`i64`), IEEE-754
//! binary32/binary64 floats, and an opaque pointer type.  Registers carry
//! exactly one scalar value; aggregates live in memory and are accessed via
//! loads, stores and `gep`.

use std::fmt;

/// A scalar IR type.
///
/// Every virtual register and every constant has exactly one `Type`.  The
/// number of bits reported by [`Type::bit_width`] is the number of bit
/// positions the fault injector may flip in a value of that type, mirroring
/// how LLFI derives the flip range from the LLVM value width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// A 1-bit boolean (`i1`), produced by comparisons.
    I1,
    /// An 8-bit integer (`i8`).
    I8,
    /// A 16-bit integer (`i16`).
    I16,
    /// A 32-bit integer (`i32`).
    I32,
    /// A 64-bit integer (`i64`).
    I64,
    /// An IEEE-754 binary32 float (`float`).
    F32,
    /// An IEEE-754 binary64 float (`double`).
    F64,
    /// An opaque pointer (`ptr`); 64 bits wide in the mbfi virtual machine.
    Ptr,
}

impl Type {
    /// All scalar types, in increasing width order for integers.
    pub const ALL: [Type; 8] = [
        Type::I1,
        Type::I8,
        Type::I16,
        Type::I32,
        Type::I64,
        Type::F32,
        Type::F64,
        Type::Ptr,
    ];

    /// Number of value-carrying bits in this type.
    ///
    /// This is the range of bit positions eligible for a bit-flip.
    pub fn bit_width(self) -> u32 {
        match self {
            Type::I1 => 1,
            Type::I8 => 8,
            Type::I16 => 16,
            Type::I32 => 32,
            Type::F32 => 32,
            Type::I64 | Type::F64 | Type::Ptr => 64,
        }
    }

    /// Size of the type in bytes when stored to memory.
    ///
    /// `i1` occupies a full byte in memory, like LLVM's `i1` in a `load`/`store`.
    pub fn byte_size(self) -> u64 {
        match self {
            Type::I1 | Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 | Type::F32 => 4,
            Type::I64 | Type::F64 | Type::Ptr => 8,
        }
    }

    /// Natural alignment of the type in bytes; loads/stores that violate it
    /// raise a misaligned-access hardware exception in the VM.
    pub fn alignment(self) -> u64 {
        self.byte_size()
    }

    /// Mask covering the value-carrying bits of the type (within a `u64`).
    pub fn bit_mask(self) -> u64 {
        match self.bit_width() {
            64 => u64::MAX,
            w => (1u64 << w) - 1,
        }
    }

    /// Whether this is one of the integer types (including `i1`).
    pub fn is_int(self) -> bool {
        matches!(
            self,
            Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64
        )
    }

    /// Whether this is one of the floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// Whether this is the pointer type.
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::Ptr)
    }

    /// Parse a type from its textual form (`i32`, `double`, `ptr`, ...).
    pub fn from_str_opt(s: &str) -> Option<Type> {
        Some(match s {
            "i1" => Type::I1,
            "i8" => Type::I8,
            "i16" => Type::I16,
            "i32" => Type::I32,
            "i64" => Type::I64,
            "f32" | "float" => Type::F32,
            "f64" | "double" => Type::F64,
            "ptr" => Type::Ptr,
            _ => return None,
        })
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::I1 => "i1",
            Type::I8 => "i8",
            Type::I16 => "i16",
            Type::I32 => "i32",
            Type::I64 => "i64",
            Type::F32 => "f32",
            Type::F64 => "f64",
            Type::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_widths_match_llvm_widths() {
        assert_eq!(Type::I1.bit_width(), 1);
        assert_eq!(Type::I8.bit_width(), 8);
        assert_eq!(Type::I16.bit_width(), 16);
        assert_eq!(Type::I32.bit_width(), 32);
        assert_eq!(Type::I64.bit_width(), 64);
        assert_eq!(Type::F32.bit_width(), 32);
        assert_eq!(Type::F64.bit_width(), 64);
        assert_eq!(Type::Ptr.bit_width(), 64);
    }

    #[test]
    fn byte_sizes_and_alignment_are_consistent() {
        for ty in Type::ALL {
            assert_eq!(ty.byte_size(), ty.alignment());
            assert!(ty.byte_size() * 8 >= ty.bit_width() as u64);
        }
    }

    #[test]
    fn masks_cover_exactly_the_width() {
        assert_eq!(Type::I1.bit_mask(), 0x1);
        assert_eq!(Type::I8.bit_mask(), 0xff);
        assert_eq!(Type::I16.bit_mask(), 0xffff);
        assert_eq!(Type::I32.bit_mask(), 0xffff_ffff);
        assert_eq!(Type::I64.bit_mask(), u64::MAX);
        assert_eq!(Type::Ptr.bit_mask(), u64::MAX);
    }

    #[test]
    fn class_predicates_partition_the_types() {
        for ty in Type::ALL {
            let classes = [ty.is_int(), ty.is_float(), ty.is_ptr()];
            assert_eq!(classes.iter().filter(|c| **c).count(), 1, "{ty}");
        }
    }

    #[test]
    fn display_and_parse_round_trip() {
        for ty in Type::ALL {
            let text = ty.to_string();
            assert_eq!(Type::from_str_opt(&text), Some(ty));
        }
        assert_eq!(Type::from_str_opt("double"), Some(Type::F64));
        assert_eq!(Type::from_str_opt("void"), None);
    }
}
