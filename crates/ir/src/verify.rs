//! Structural verification and linting of IR modules.
//!
//! The verifier catches builder mistakes in the workloads before they reach
//! the interpreter: out-of-range registers and blocks, blocks without
//! terminators, terminators in the middle of a block, calls to missing
//! functions, arity mismatches, entry functions with parameters, and globals
//! whose initialiser is larger than their declared size.
//!
//! On top of the hard errors, [`lint_dead_defs`] reuses the bit-level
//! liveness result of [`crate::bitflow`] to emit *non-fatal* structured
//! warnings for registers that are defined but never consumed (dead defs) —
//! wired into lowering behind
//! [`LowerOptions`](crate::compiled::LowerOptions).

use crate::bitflow::BitFlow;
use crate::compiled::CompiledModule;
use crate::function::Function;
use crate::instr::Instr;
use crate::module::Module;
use crate::value::{Constant, Operand};
use std::fmt;

/// A verification failure, with enough context to locate the offending item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name, if the error is inside a function.
    pub function: Option<String>,
    /// Block index, if the error is inside a block.
    pub block: Option<usize>,
    /// Instruction index within the block, if applicable.
    pub instr: Option<usize>,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, self.block, self.instr) {
            (Some(func), Some(b), Some(i)) => {
                write!(f, "{func}: bb{b}[{i}]: {}", self.message)
            }
            (Some(func), Some(b), None) => write!(f, "{func}: bb{b}: {}", self.message),
            (Some(func), None, None) => write!(f, "{func}: {}", self.message),
            _ => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

fn err(
    function: Option<&str>,
    block: Option<usize>,
    instr: Option<usize>,
    message: impl Into<String>,
) -> VerifyError {
    VerifyError {
        function: function.map(|s| s.to_string()),
        block,
        instr,
        message: message.into(),
    }
}

/// A non-fatal lint finding (same location shape as [`VerifyError`], but
/// advisory: the module still runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintWarning {
    /// Function name the finding is in.
    pub function: String,
    /// Block index within the function.
    pub block: usize,
    /// Instruction index within the block.
    pub instr: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LintWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "warning: {}: bb{}[{}]: {}",
            self.function, self.block, self.instr, self.message
        )
    }
}

/// Lint a lowered module for dead definitions: destination registers no bit
/// of which is ever consumed (directly dead, overwritten before use, or
/// masked away), per the bit-level liveness of [`BitFlow::analyze`].
///
/// These are exactly the inject-on-write sites the static pruner proves
/// outcome-equivalent in full — usually a sign of redundant workload code.
/// The warnings are advisory; execution is unaffected.
pub fn lint_dead_defs(code: &CompiledModule) -> Vec<LintWarning> {
    let flow = BitFlow::analyze(code);
    flow.dead_defs(code)
        .into_iter()
        .map(|d| {
            let meta = &code.meta[d.pc];
            let fname = code
                .funcs
                .get(meta.func as usize)
                .map_or("?", |f| f.name.as_str());
            LintWarning {
                function: fname.to_string(),
                block: meta.block as usize,
                instr: meta.instr as usize,
                message: format!(
                    "dead definition: no bit of r{} ({}) is ever consumed",
                    d.reg, meta.opcode
                ),
            }
        })
        .collect()
}

/// Verify a whole module, returning all problems found.
pub fn verify_module(module: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();

    for (i, g) in module.globals.iter().enumerate() {
        if g.init.len() as u64 > g.size {
            errors.push(err(
                None,
                None,
                None,
                format!(
                    "global @g{i} '{}' initialiser ({} bytes) exceeds size {}",
                    g.name,
                    g.init.len(),
                    g.size
                ),
            ));
        }
        if g.align == 0 || !g.align.is_power_of_two() {
            errors.push(err(
                None,
                None,
                None,
                format!(
                    "global @g{i} '{}' alignment {} is not a power of two",
                    g.name, g.align
                ),
            ));
        }
    }

    match module.entry {
        None => errors.push(err(None, None, None, "module has no entry function")),
        Some(id) => {
            if id.index() >= module.functions.len() {
                errors.push(err(None, None, None, "entry function id out of range"));
            } else if !module.functions[id.index()].params.is_empty() {
                errors.push(err(
                    None,
                    None,
                    None,
                    "entry function must not take parameters",
                ));
            }
        }
    }

    for func in &module.functions {
        verify_function(module, func, &mut errors);
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn check_operand(
    module: &Module,
    func: &Function,
    op: &Operand,
    fname: &str,
    b: usize,
    i: usize,
    errors: &mut Vec<VerifyError>,
) {
    match op {
        Operand::Reg(r) => {
            if r.index() >= func.regs.len() {
                errors.push(err(
                    Some(fname),
                    Some(b),
                    Some(i),
                    format!(
                        "register {r} out of range (function has {})",
                        func.regs.len()
                    ),
                ));
            }
        }
        Operand::Const(Constant::Global { index }) => {
            if *index >= module.globals.len() {
                errors.push(err(
                    Some(fname),
                    Some(b),
                    Some(i),
                    format!("global index {index} out of range"),
                ));
            }
        }
        Operand::Const(_) => {}
    }
}

fn verify_function(module: &Module, func: &Function, errors: &mut Vec<VerifyError>) {
    let fname = &func.name;

    if func.blocks.is_empty() {
        errors.push(err(Some(fname), None, None, "function has no body"));
        return;
    }

    for reg in &func.params {
        if reg.index() >= func.regs.len() {
            errors.push(err(
                Some(fname),
                None,
                None,
                format!("parameter register {reg} out of range"),
            ));
        }
    }

    for (b, block) in func.blocks.iter().enumerate() {
        if block.instrs.is_empty() {
            errors.push(err(Some(fname), Some(b), None, "empty basic block"));
            continue;
        }
        let last = block.instrs.len() - 1;
        for (i, instr) in block.instrs.iter().enumerate() {
            if i < last && instr.is_terminator() {
                errors.push(err(
                    Some(fname),
                    Some(b),
                    Some(i),
                    "terminator in the middle of a block",
                ));
            }
            if i == last && !instr.is_terminator() {
                errors.push(err(
                    Some(fname),
                    Some(b),
                    Some(i),
                    "block does not end with a terminator",
                ));
            }

            if let Some(dest) = instr.dest() {
                if dest.index() >= func.regs.len() {
                    errors.push(err(
                        Some(fname),
                        Some(b),
                        Some(i),
                        format!("destination register {dest} out of range"),
                    ));
                }
            }
            for op in instr.operands() {
                check_operand(module, func, &op, fname, b, i, errors);
            }
            for target in instr.successors() {
                if target.index() >= func.blocks.len() {
                    errors.push(err(
                        Some(fname),
                        Some(b),
                        Some(i),
                        format!("branch target {target} out of range"),
                    ));
                }
            }

            match instr {
                Instr::Call { callee, args, dest } => {
                    if *callee >= module.functions.len() {
                        errors.push(err(
                            Some(fname),
                            Some(b),
                            Some(i),
                            format!("call to unknown function index {callee}"),
                        ));
                    } else {
                        let target = &module.functions[*callee];
                        if target.params.len() != args.len() {
                            errors.push(err(
                                Some(fname),
                                Some(b),
                                Some(i),
                                format!(
                                    "call to '{}' with {} args, expected {}",
                                    target.name,
                                    args.len(),
                                    target.params.len()
                                ),
                            ));
                        }
                        if dest.is_some() && target.ret_ty.is_none() {
                            errors.push(err(
                                Some(fname),
                                Some(b),
                                Some(i),
                                format!("call captures result of void function '{}'", target.name),
                            ));
                        }
                    }
                }
                Instr::Ret { value } => {
                    match (value, func.ret_ty) {
                        (Some(_), None) => errors.push(err(
                            Some(fname),
                            Some(b),
                            Some(i),
                            "void function returns a value",
                        )),
                        (None, Some(_)) => errors.push(err(
                            Some(fname),
                            Some(b),
                            Some(i),
                            "non-void function returns without a value",
                        )),
                        _ => {}
                    };
                }
                Instr::Phi { incoming, .. } if incoming.is_empty() => {
                    errors.push(err(
                        Some(fname),
                        Some(b),
                        Some(i),
                        "phi with no incoming arms",
                    ));
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::function::{Block, BlockId};
    use crate::types::Type;
    use crate::value::Reg;

    fn valid_module() -> Module {
        let mut mb = ModuleBuilder::new("ok");
        let helper = mb.declare("helper", &[(Type::I32, "x")], Some(Type::I32));
        let main = mb.declare("main", &[], Some(Type::I32));
        {
            let mut f = mb.define(helper);
            let p = f.param(0);
            let r = f.mul(Type::I32, p, 3i32);
            f.ret(r);
        }
        {
            let mut f = mb.define(main);
            let v = f
                .call(helper, &[Operand::Const(Constant::i32(5))], Some(Type::I32))
                .unwrap();
            f.ret(v);
        }
        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn valid_module_passes() {
        assert!(verify_module(&valid_module()).is_ok());
    }

    #[test]
    fn missing_entry_is_reported() {
        let mut m = valid_module();
        m.entry = None;
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("no entry")));
    }

    #[test]
    fn block_without_terminator_is_reported() {
        let mut m = valid_module();
        m.functions[1].blocks[0].instrs.pop();
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("does not end with a terminator")));
    }

    #[test]
    fn out_of_range_register_is_reported() {
        let mut m = valid_module();
        m.functions[0].blocks[0].instrs.insert(
            0,
            Instr::Load {
                dest: Reg(999),
                ty: Type::I32,
                addr: Operand::Reg(Reg(888)),
            },
        );
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("out of range")));
    }

    #[test]
    fn call_arity_mismatch_is_reported() {
        let mut m = valid_module();
        if let Instr::Call { args, .. } = &mut m.functions[1].blocks[0].instrs[0] {
            args.clear();
        }
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expected 1")));
    }

    #[test]
    fn bad_branch_target_is_reported() {
        let mut m = valid_module();
        m.functions[1].blocks.push(Block {
            label: None,
            instrs: vec![Instr::Br {
                target: BlockId(77),
            }],
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("branch target")));
    }

    #[test]
    fn entry_with_params_is_reported() {
        let mut mb = ModuleBuilder::new("bad");
        let main = mb.declare("main", &[(Type::I32, "argc")], None);
        {
            let mut f = mb.define(main);
            f.ret_void();
        }
        mb.set_entry(main);
        let errs = verify_module(&mb.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("must not take parameters")));
    }

    #[test]
    fn oversized_global_init_is_reported() {
        let mut m = valid_module();
        m.globals.push(crate::module::Global {
            name: "bad".into(),
            size: 2,
            init: vec![0; 10],
            align: 8,
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("exceeds size")));
    }

    #[test]
    fn error_display_includes_location() {
        let e = VerifyError {
            function: Some("f".into()),
            block: Some(2),
            instr: Some(3),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "f: bb2[3]: boom");
    }

    #[test]
    fn dead_def_lint_flags_unused_definitions() {
        // `waste` is defined and never consumed; everything else feeds the
        // printed output.
        let mut mb = ModuleBuilder::new("lint");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let used = f.add(Type::I64, 1i64, 2i64);
            let _waste = f.mul(Type::I64, used, 7i64);
            f.print_i64(used);
            f.ret_void();
        }
        mb.set_entry(main);
        let module = mb.finish();
        assert!(verify_module(&module).is_ok());

        let (code, warnings) = crate::compiled::CompiledModule::lower_with(
            &module,
            crate::compiled::LowerOptions {
                lint_dead_defs: true,
            },
        );
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        let w = &warnings[0];
        assert_eq!(w.function, "main");
        assert!(w.message.contains("dead definition"), "{w}");
        assert!(w.to_string().starts_with("warning: main: bb"));
        // The flag gates the lint: off by default.
        let (_, none) = crate::compiled::CompiledModule::lower_with(&module, Default::default());
        assert!(none.is_empty());
        drop(code);
    }

    #[test]
    fn dead_def_lint_is_quiet_on_clean_modules() {
        let m = valid_module();
        let code = crate::compiled::CompiledModule::lower(&m);
        assert!(lint_dead_defs(&code).is_empty());
    }
}
