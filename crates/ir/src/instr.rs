//! The IR instruction set.
//!
//! The instruction set is the LLVM-IR subset used by the MiBench / Parboil
//! style workloads of the paper: integer and floating-point arithmetic,
//! comparisons, casts, memory access (`alloca`, `load`, `store`, `gep`),
//! control flow (`br`, `condbr`, `switch`, `ret`), calls, `phi`, `select`
//! and a set of intrinsics (libm routines, heap management, I/O, `abort`).
//!
//! Every instruction knows which registers it *reads*
//! ([`Instr::read_operands`]) and which register it *writes*
//! ([`Instr::dest`]); the inject-on-read and inject-on-write techniques of
//! the paper are defined in terms of exactly these two sets.

use crate::function::BlockId;
use crate::types::Type;
use crate::value::{Operand, Reg};
use std::fmt;

/// Integer and floating-point binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Unsigned integer division; division by zero traps.
    UDiv,
    /// Signed integer division; division by zero and `MIN / -1` trap.
    SDiv,
    /// Unsigned remainder; division by zero traps.
    URem,
    /// Signed remainder; division by zero traps.
    SRem,
    /// Logical shift left (shift amount taken modulo the bit width).
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Floating-point addition.
    FAdd,
    /// Floating-point subtraction.
    FSub,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point division.
    FDiv,
    /// Floating-point remainder.
    FRem,
}

impl BinOp {
    /// Whether the operator works on floating-point operands.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FRem
        )
    }

    /// Whether the operator can raise an arithmetic hardware exception.
    pub fn can_trap(self) -> bool {
        matches!(self, BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem)
    }

    /// Textual mnemonic used by the printer / parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::UDiv => "udiv",
            BinOp::SDiv => "sdiv",
            BinOp::URem => "urem",
            BinOp::SRem => "srem",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::FRem => "frem",
        }
    }

    /// Parse a mnemonic back into a `BinOp`.
    pub fn from_mnemonic(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "udiv" => BinOp::UDiv,
            "sdiv" => BinOp::SDiv,
            "urem" => BinOp::URem,
            "srem" => BinOp::SRem,
            "shl" => BinOp::Shl,
            "lshr" => BinOp::LShr,
            "ashr" => BinOp::AShr,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "fadd" => BinOp::FAdd,
            "fsub" => BinOp::FSub,
            "fmul" => BinOp::FMul,
            "fdiv" => BinOp::FDiv,
            "frem" => BinOp::FRem,
            _ => return None,
        })
    }

    /// All binary operators (used by property tests).
    pub const ALL: [BinOp; 18] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::UDiv,
        BinOp::SDiv,
        BinOp::URem,
        BinOp::SRem,
        BinOp::Shl,
        BinOp::LShr,
        BinOp::AShr,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::FAdd,
        BinOp::FSub,
        BinOp::FMul,
        BinOp::FDiv,
        BinOp::FRem,
    ];
}

/// Integer comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned greater than.
    Ugt,
    /// Unsigned greater or equal.
    Uge,
    /// Unsigned less than.
    Ult,
    /// Unsigned less or equal.
    Ule,
    /// Signed greater than.
    Sgt,
    /// Signed greater or equal.
    Sge,
    /// Signed less than.
    Slt,
    /// Signed less or equal.
    Sle,
}

impl IcmpPred {
    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IcmpPred::Eq => "eq",
            IcmpPred::Ne => "ne",
            IcmpPred::Ugt => "ugt",
            IcmpPred::Uge => "uge",
            IcmpPred::Ult => "ult",
            IcmpPred::Ule => "ule",
            IcmpPred::Sgt => "sgt",
            IcmpPred::Sge => "sge",
            IcmpPred::Slt => "slt",
            IcmpPred::Sle => "sle",
        }
    }

    /// Parse a mnemonic back into a predicate.
    pub fn from_mnemonic(s: &str) -> Option<IcmpPred> {
        Some(match s {
            "eq" => IcmpPred::Eq,
            "ne" => IcmpPred::Ne,
            "ugt" => IcmpPred::Ugt,
            "uge" => IcmpPred::Uge,
            "ult" => IcmpPred::Ult,
            "ule" => IcmpPred::Ule,
            "sgt" => IcmpPred::Sgt,
            "sge" => IcmpPred::Sge,
            "slt" => IcmpPred::Slt,
            "sle" => IcmpPred::Sle,
            _ => return None,
        })
    }

    /// All integer predicates.
    pub const ALL: [IcmpPred; 10] = [
        IcmpPred::Eq,
        IcmpPred::Ne,
        IcmpPred::Ugt,
        IcmpPred::Uge,
        IcmpPred::Ult,
        IcmpPred::Ule,
        IcmpPred::Sgt,
        IcmpPred::Sge,
        IcmpPred::Slt,
        IcmpPred::Sle,
    ];
}

/// Floating-point comparison predicates (ordered comparisons plus
/// ordered/unordered tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FcmpPred {
    /// Ordered and equal.
    Oeq,
    /// Ordered and not equal.
    One,
    /// Ordered and greater than.
    Ogt,
    /// Ordered and greater or equal.
    Oge,
    /// Ordered and less than.
    Olt,
    /// Ordered and less or equal.
    Ole,
    /// Both operands ordered (no NaN).
    Ord,
    /// At least one operand is NaN.
    Uno,
    /// Unordered or equal.
    Ueq,
    /// Unordered or not equal.
    Une,
}

impl FcmpPred {
    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FcmpPred::Oeq => "oeq",
            FcmpPred::One => "one",
            FcmpPred::Ogt => "ogt",
            FcmpPred::Oge => "oge",
            FcmpPred::Olt => "olt",
            FcmpPred::Ole => "ole",
            FcmpPred::Ord => "ord",
            FcmpPred::Uno => "uno",
            FcmpPred::Ueq => "ueq",
            FcmpPred::Une => "une",
        }
    }

    /// Parse a mnemonic back into a predicate.
    pub fn from_mnemonic(s: &str) -> Option<FcmpPred> {
        Some(match s {
            "oeq" => FcmpPred::Oeq,
            "one" => FcmpPred::One,
            "ogt" => FcmpPred::Ogt,
            "oge" => FcmpPred::Oge,
            "olt" => FcmpPred::Olt,
            "ole" => FcmpPred::Ole,
            "ord" => FcmpPred::Ord,
            "uno" => FcmpPred::Uno,
            "ueq" => FcmpPred::Ueq,
            "une" => FcmpPred::Une,
            _ => return None,
        })
    }
}

/// Conversion operators between scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastOp {
    /// Truncate an integer to a narrower integer type.
    Trunc,
    /// Zero-extend an integer to a wider integer type.
    ZExt,
    /// Sign-extend an integer to a wider integer type.
    SExt,
    /// Convert a float to a signed integer (saturating toward zero).
    FpToSi,
    /// Convert a float to an unsigned integer.
    FpToUi,
    /// Convert a signed integer to a float.
    SiToFp,
    /// Convert an unsigned integer to a float.
    UiToFp,
    /// Narrow `f64` to `f32`.
    FpTrunc,
    /// Widen `f32` to `f64`.
    FpExt,
    /// Reinterpret a pointer as an integer.
    PtrToInt,
    /// Reinterpret an integer as a pointer.
    IntToPtr,
    /// Reinterpret the bit pattern as another same-width type.
    Bitcast,
}

impl CastOp {
    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Trunc => "trunc",
            CastOp::ZExt => "zext",
            CastOp::SExt => "sext",
            CastOp::FpToSi => "fptosi",
            CastOp::FpToUi => "fptoui",
            CastOp::SiToFp => "sitofp",
            CastOp::UiToFp => "uitofp",
            CastOp::FpTrunc => "fptrunc",
            CastOp::FpExt => "fpext",
            CastOp::PtrToInt => "ptrtoint",
            CastOp::IntToPtr => "inttoptr",
            CastOp::Bitcast => "bitcast",
        }
    }

    /// Parse a mnemonic back into a cast operator.
    pub fn from_mnemonic(s: &str) -> Option<CastOp> {
        Some(match s {
            "trunc" => CastOp::Trunc,
            "zext" => CastOp::ZExt,
            "sext" => CastOp::SExt,
            "fptosi" => CastOp::FpToSi,
            "fptoui" => CastOp::FpToUi,
            "sitofp" => CastOp::SiToFp,
            "uitofp" => CastOp::UiToFp,
            "fptrunc" => CastOp::FpTrunc,
            "fpext" => CastOp::FpExt,
            "ptrtoint" => CastOp::PtrToInt,
            "inttoptr" => CastOp::IntToPtr,
            "bitcast" => CastOp::Bitcast,
            _ => return None,
        })
    }

    /// Every cast operator (for exhaustive transfer-function tests).
    pub const ALL: [CastOp; 12] = [
        CastOp::Trunc,
        CastOp::ZExt,
        CastOp::SExt,
        CastOp::FpToSi,
        CastOp::FpToUi,
        CastOp::SiToFp,
        CastOp::UiToFp,
        CastOp::FpTrunc,
        CastOp::FpExt,
        CastOp::PtrToInt,
        CastOp::IntToPtr,
        CastOp::Bitcast,
    ];
}

/// Built-in runtime routines available to IR programs.
///
/// These model the libc / libm calls the original C benchmarks make.  Output
/// intrinsics append to the program's output buffer, which is what the
/// outcome classifier compares against the golden run to detect SDCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// Print a signed 64-bit integer followed by a newline.
    PrintI64,
    /// Print a double with `%.6f`-style formatting followed by a newline.
    PrintF64,
    /// Print a single byte (character).
    PrintChar,
    /// Print `len` bytes starting at `ptr`.
    PrintBytes,
    /// Abort the program (models `abort()` / failed `assert`).
    Abort,
    /// Allocate `size` bytes on the heap, returning a pointer.
    Malloc,
    /// Free a heap allocation.
    Free,
    /// Copy `len` bytes from `src` to `dst`.
    Memcpy,
    /// Fill `len` bytes at `dst` with the byte `value`.
    Memset,
    /// Square root.
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Arc tangent.
    Atan,
    /// `pow(base, exp)`.
    Pow,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Absolute value of a double.
    Fabs,
    /// Round toward negative infinity.
    Floor,
    /// Round toward positive infinity.
    Ceil,
    /// Cube root.
    Cbrt,
}

impl Intrinsic {
    /// Textual name used by the printer / parser.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::PrintI64 => "print_i64",
            Intrinsic::PrintF64 => "print_f64",
            Intrinsic::PrintChar => "print_char",
            Intrinsic::PrintBytes => "print_bytes",
            Intrinsic::Abort => "abort",
            Intrinsic::Malloc => "malloc",
            Intrinsic::Free => "free",
            Intrinsic::Memcpy => "memcpy",
            Intrinsic::Memset => "memset",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Atan => "atan",
            Intrinsic::Pow => "pow",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Fabs => "fabs",
            Intrinsic::Floor => "floor",
            Intrinsic::Ceil => "ceil",
            Intrinsic::Cbrt => "cbrt",
        }
    }

    /// Parse an intrinsic name.
    pub fn from_name(s: &str) -> Option<Intrinsic> {
        Some(match s {
            "print_i64" => Intrinsic::PrintI64,
            "print_f64" => Intrinsic::PrintF64,
            "print_char" => Intrinsic::PrintChar,
            "print_bytes" => Intrinsic::PrintBytes,
            "abort" => Intrinsic::Abort,
            "malloc" => Intrinsic::Malloc,
            "free" => Intrinsic::Free,
            "memcpy" => Intrinsic::Memcpy,
            "memset" => Intrinsic::Memset,
            "sqrt" => Intrinsic::Sqrt,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "atan" => Intrinsic::Atan,
            "pow" => Intrinsic::Pow,
            "exp" => Intrinsic::Exp,
            "log" => Intrinsic::Log,
            "fabs" => Intrinsic::Fabs,
            "floor" => Intrinsic::Floor,
            "ceil" => Intrinsic::Ceil,
            "cbrt" => Intrinsic::Cbrt,
            _ => return None,
        })
    }

    /// Whether the intrinsic produces a result register.
    pub fn has_result(self) -> bool {
        !matches!(
            self,
            Intrinsic::PrintI64
                | Intrinsic::PrintF64
                | Intrinsic::PrintChar
                | Intrinsic::PrintBytes
                | Intrinsic::Abort
                | Intrinsic::Free
                | Intrinsic::Memcpy
                | Intrinsic::Memset
        )
    }
}

/// Coarse instruction kind used when reporting injection targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Binary arithmetic / logic.
    Binary,
    /// Integer comparison.
    Icmp,
    /// Floating-point comparison.
    Fcmp,
    /// Type conversion.
    Cast,
    /// Two-way select.
    Select,
    /// Stack allocation.
    Alloca,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Address computation.
    Gep,
    /// Function call.
    Call,
    /// Intrinsic call.
    Intrinsic,
    /// SSA phi node.
    Phi,
    /// Unconditional branch.
    Br,
    /// Conditional branch.
    CondBr,
    /// Multi-way branch.
    Switch,
    /// Function return.
    Ret,
    /// Unreachable marker.
    Unreachable,
}

/// A single IR instruction.
///
/// `Reg` destinations are SSA-ish: the builder assigns a fresh register per
/// defining instruction, but the verifier only enforces that every register
/// is defined before use on every path, not strict single-assignment (loops
/// built by the workloads reuse phi-free mutable slots through memory).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dest = op ty lhs, rhs`
    Binary {
        /// Destination register.
        dest: Reg,
        /// Operator.
        op: BinOp,
        /// Operand type.
        ty: Type,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dest = icmp pred ty lhs, rhs` (dest has type `i1`)
    Icmp {
        /// Destination register (`i1`).
        dest: Reg,
        /// Comparison predicate.
        pred: IcmpPred,
        /// Operand type.
        ty: Type,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dest = fcmp pred ty lhs, rhs` (dest has type `i1`)
    Fcmp {
        /// Destination register (`i1`).
        dest: Reg,
        /// Comparison predicate.
        pred: FcmpPred,
        /// Operand type.
        ty: Type,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dest = cast op src : from_ty -> to_ty`
    Cast {
        /// Destination register.
        dest: Reg,
        /// Conversion operator.
        op: CastOp,
        /// Source type.
        from_ty: Type,
        /// Destination type.
        to_ty: Type,
        /// Source operand.
        src: Operand,
    },
    /// `dest = select cond, then_val, else_val`
    Select {
        /// Destination register.
        dest: Reg,
        /// Value type.
        ty: Type,
        /// Condition (`i1`).
        cond: Operand,
        /// Value when the condition is true.
        then_val: Operand,
        /// Value when the condition is false.
        else_val: Operand,
    },
    /// `dest = alloca elem_ty, count` — reserve stack space, returning a pointer.
    Alloca {
        /// Destination pointer register.
        dest: Reg,
        /// Element type.
        elem_ty: Type,
        /// Number of elements.
        count: Operand,
    },
    /// `dest = load ty, addr`
    Load {
        /// Destination register.
        dest: Reg,
        /// Loaded value type.
        ty: Type,
        /// Address operand (pointer).
        addr: Operand,
    },
    /// `store ty value, addr`
    Store {
        /// Stored value type.
        ty: Type,
        /// Value operand.
        value: Operand,
        /// Address operand (pointer).
        addr: Operand,
    },
    /// `dest = gep base, index * elem_size + offset` — pointer arithmetic.
    Gep {
        /// Destination pointer register.
        dest: Reg,
        /// Base pointer operand.
        base: Operand,
        /// Element index operand.
        index: Operand,
        /// Size in bytes of one element.
        elem_size: u64,
        /// Constant byte offset added after scaling.
        offset: i64,
    },
    /// `dest? = call callee(args...)`
    Call {
        /// Destination register if the callee returns a value.
        dest: Option<Reg>,
        /// Index of the callee in the module's function table.
        callee: usize,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// `dest? = intrinsic name(args...)`
    IntrinsicCall {
        /// Destination register if the intrinsic produces a value.
        dest: Option<Reg>,
        /// Which intrinsic.
        which: Intrinsic,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// `dest = phi ty [(block, value), ...]`
    Phi {
        /// Destination register.
        dest: Reg,
        /// Value type.
        ty: Type,
        /// Incoming (predecessor block, value) pairs.
        incoming: Vec<(BlockId, Operand)>,
    },
    /// `br target`
    Br {
        /// Target block.
        target: BlockId,
    },
    /// `condbr cond, then_bb, else_bb`
    CondBr {
        /// Condition operand (`i1`).
        cond: Operand,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// `switch value, default [case -> block, ...]`
    Switch {
        /// Discriminant operand.
        value: Operand,
        /// Default target.
        default: BlockId,
        /// `(case value, target)` pairs.
        cases: Vec<(u64, BlockId)>,
    },
    /// `ret value?`
    Ret {
        /// Returned operand, if the function returns a value.
        value: Option<Operand>,
    },
    /// Marks an unreachable point; executing it aborts the program.
    Unreachable,
}

impl Instr {
    /// The coarse opcode of this instruction.
    pub fn opcode(&self) -> Opcode {
        match self {
            Instr::Binary { .. } => Opcode::Binary,
            Instr::Icmp { .. } => Opcode::Icmp,
            Instr::Fcmp { .. } => Opcode::Fcmp,
            Instr::Cast { .. } => Opcode::Cast,
            Instr::Select { .. } => Opcode::Select,
            Instr::Alloca { .. } => Opcode::Alloca,
            Instr::Load { .. } => Opcode::Load,
            Instr::Store { .. } => Opcode::Store,
            Instr::Gep { .. } => Opcode::Gep,
            Instr::Call { .. } => Opcode::Call,
            Instr::IntrinsicCall { .. } => Opcode::Intrinsic,
            Instr::Phi { .. } => Opcode::Phi,
            Instr::Br { .. } => Opcode::Br,
            Instr::CondBr { .. } => Opcode::CondBr,
            Instr::Switch { .. } => Opcode::Switch,
            Instr::Ret { .. } => Opcode::Ret,
            Instr::Unreachable => Opcode::Unreachable,
        }
    }

    /// The register this instruction defines, if any.
    ///
    /// This is the set of inject-on-write candidates: instructions such as
    /// `store`, branches and `ret` have no destination register and therefore
    /// are not candidates, matching Table II of the paper where
    /// inject-on-write has fewer candidate instructions than inject-on-read.
    pub fn dest(&self) -> Option<Reg> {
        match self {
            Instr::Binary { dest, .. }
            | Instr::Icmp { dest, .. }
            | Instr::Fcmp { dest, .. }
            | Instr::Cast { dest, .. }
            | Instr::Select { dest, .. }
            | Instr::Alloca { dest, .. }
            | Instr::Load { dest, .. }
            | Instr::Gep { dest, .. }
            | Instr::Phi { dest, .. } => Some(*dest),
            Instr::Call { dest, .. } | Instr::IntrinsicCall { dest, .. } => *dest,
            Instr::Store { .. }
            | Instr::Br { .. }
            | Instr::CondBr { .. }
            | Instr::Switch { .. }
            | Instr::Ret { .. }
            | Instr::Unreachable => None,
        }
    }

    /// All operands read by this instruction, in evaluation order.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Instr::Binary { lhs, rhs, .. }
            | Instr::Icmp { lhs, rhs, .. }
            | Instr::Fcmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Instr::Cast { src, .. } => vec![*src],
            Instr::Select {
                cond,
                then_val,
                else_val,
                ..
            } => vec![*cond, *then_val, *else_val],
            Instr::Alloca { count, .. } => vec![*count],
            Instr::Load { addr, .. } => vec![*addr],
            Instr::Store { value, addr, .. } => vec![*value, *addr],
            Instr::Gep { base, index, .. } => vec![*base, *index],
            Instr::Call { args, .. } | Instr::IntrinsicCall { args, .. } => args.clone(),
            Instr::Phi { incoming, .. } => incoming.iter().map(|(_, v)| *v).collect(),
            Instr::Br { .. } => vec![],
            Instr::CondBr { cond, .. } => vec![*cond],
            Instr::Switch { value, .. } => vec![*value],
            Instr::Ret { value } => value.iter().copied().collect(),
            Instr::Unreachable => vec![],
        }
    }

    /// The register operands read by this instruction (the inject-on-read
    /// candidate set for the dynamic instance of this instruction).
    pub fn read_operands(&self) -> Vec<Reg> {
        self.operands()
            .into_iter()
            .filter_map(|op| op.as_reg())
            .collect()
    }

    /// Whether this instruction terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Br { .. }
                | Instr::CondBr { .. }
                | Instr::Switch { .. }
                | Instr::Ret { .. }
                | Instr::Unreachable
        )
    }

    /// Successor blocks of a terminator (empty for non-terminators and `ret`).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Instr::Br { target } => vec![*target],
            Instr::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Instr::Switch { default, cases, .. } => {
                let mut out = vec![*default];
                out.extend(cases.iter().map(|(_, b)| *b));
                out
            }
            _ => vec![],
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Opcode::Binary => "binary",
            Opcode::Icmp => "icmp",
            Opcode::Fcmp => "fcmp",
            Opcode::Cast => "cast",
            Opcode::Select => "select",
            Opcode::Alloca => "alloca",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::Gep => "gep",
            Opcode::Call => "call",
            Opcode::Intrinsic => "intrinsic",
            Opcode::Phi => "phi",
            Opcode::Br => "br",
            Opcode::CondBr => "condbr",
            Opcode::Switch => "switch",
            Opcode::Ret => "ret",
            Opcode::Unreachable => "unreachable",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Constant;

    fn r(i: u32) -> Reg {
        Reg(i)
    }

    #[test]
    fn binary_reads_both_operands_and_writes_dest() {
        let i = Instr::Binary {
            dest: r(2),
            op: BinOp::Add,
            ty: Type::I32,
            lhs: Operand::Reg(r(0)),
            rhs: Operand::Reg(r(1)),
        };
        assert_eq!(i.dest(), Some(r(2)));
        assert_eq!(i.read_operands(), vec![r(0), r(1)]);
        assert_eq!(i.opcode(), Opcode::Binary);
        assert!(!i.is_terminator());
    }

    #[test]
    fn constants_are_not_read_candidates() {
        let i = Instr::Binary {
            dest: r(1),
            op: BinOp::Mul,
            ty: Type::I64,
            lhs: Operand::Reg(r(0)),
            rhs: Operand::Const(Constant::i64(3)),
        };
        assert_eq!(i.read_operands(), vec![r(0)]);
    }

    #[test]
    fn store_has_no_destination() {
        let i = Instr::Store {
            ty: Type::I32,
            value: Operand::Reg(r(0)),
            addr: Operand::Reg(r(1)),
        };
        assert_eq!(i.dest(), None);
        assert_eq!(i.read_operands(), vec![r(0), r(1)]);
    }

    #[test]
    fn terminator_successors() {
        let br = Instr::Br { target: BlockId(3) };
        assert!(br.is_terminator());
        assert_eq!(br.successors(), vec![BlockId(3)]);

        let cond = Instr::CondBr {
            cond: Operand::Reg(r(0)),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(cond.successors(), vec![BlockId(1), BlockId(2)]);

        let sw = Instr::Switch {
            value: Operand::Reg(r(0)),
            default: BlockId(5),
            cases: vec![(1, BlockId(6)), (2, BlockId(7))],
        };
        assert_eq!(sw.successors(), vec![BlockId(5), BlockId(6), BlockId(7)]);

        let ret = Instr::Ret { value: None };
        assert!(ret.is_terminator());
        assert!(ret.successors().is_empty());
    }

    #[test]
    fn mnemonic_round_trips() {
        for op in BinOp::ALL {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        for pred in IcmpPred::ALL {
            assert_eq!(IcmpPred::from_mnemonic(pred.mnemonic()), Some(pred));
        }
        for cast in [
            CastOp::Trunc,
            CastOp::ZExt,
            CastOp::SExt,
            CastOp::FpToSi,
            CastOp::SiToFp,
            CastOp::Bitcast,
            CastOp::PtrToInt,
            CastOp::IntToPtr,
        ] {
            assert_eq!(CastOp::from_mnemonic(cast.mnemonic()), Some(cast));
        }
    }

    #[test]
    fn intrinsic_names_round_trip_and_result_flags() {
        for which in [
            Intrinsic::PrintI64,
            Intrinsic::Malloc,
            Intrinsic::Sqrt,
            Intrinsic::Memcpy,
            Intrinsic::Abort,
            Intrinsic::Cbrt,
        ] {
            assert_eq!(Intrinsic::from_name(which.name()), Some(which));
        }
        assert!(Intrinsic::Malloc.has_result());
        assert!(Intrinsic::Sqrt.has_result());
        assert!(!Intrinsic::PrintI64.has_result());
        assert!(!Intrinsic::Memset.has_result());
    }

    #[test]
    fn trap_capable_operators() {
        assert!(BinOp::SDiv.can_trap());
        assert!(BinOp::URem.can_trap());
        assert!(!BinOp::Add.can_trap());
        assert!(!BinOp::FDiv.can_trap());
        assert!(BinOp::FAdd.is_float());
        assert!(!BinOp::Xor.is_float());
    }
}
