//! Textual rendering of IR modules.
//!
//! The format is line-based and intentionally close to LLVM's assembly
//! syntax, so that workload IR can be dumped and inspected while debugging
//! fault-injection campaigns.

use crate::function::{BlockId, Function};
use crate::instr::Instr;
use crate::module::Module;
use crate::value::Operand;
use std::fmt::Write as _;

/// Render an operand.
fn fmt_operand(op: &Operand) -> String {
    match op {
        Operand::Reg(r) => format!("{r}"),
        Operand::Const(c) => format!("{c}"),
    }
}

fn fmt_operands(ops: &[Operand]) -> String {
    ops.iter().map(fmt_operand).collect::<Vec<_>>().join(", ")
}

/// Render a single instruction on one line (without indentation).
pub fn print_instr(instr: &Instr) -> String {
    match instr {
        Instr::Binary {
            dest,
            op,
            ty,
            lhs,
            rhs,
        } => format!(
            "{dest} = {} {ty} {}, {}",
            op.mnemonic(),
            fmt_operand(lhs),
            fmt_operand(rhs)
        ),
        Instr::Icmp {
            dest,
            pred,
            ty,
            lhs,
            rhs,
        } => format!(
            "{dest} = icmp {} {ty} {}, {}",
            pred.mnemonic(),
            fmt_operand(lhs),
            fmt_operand(rhs)
        ),
        Instr::Fcmp {
            dest,
            pred,
            ty,
            lhs,
            rhs,
        } => format!(
            "{dest} = fcmp {} {ty} {}, {}",
            pred.mnemonic(),
            fmt_operand(lhs),
            fmt_operand(rhs)
        ),
        Instr::Cast {
            dest,
            op,
            from_ty,
            to_ty,
            src,
        } => format!(
            "{dest} = {} {} {} to {}",
            op.mnemonic(),
            from_ty,
            fmt_operand(src),
            to_ty
        ),
        Instr::Select {
            dest,
            ty,
            cond,
            then_val,
            else_val,
        } => format!(
            "{dest} = select {ty} {}, {}, {}",
            fmt_operand(cond),
            fmt_operand(then_val),
            fmt_operand(else_val)
        ),
        Instr::Alloca {
            dest,
            elem_ty,
            count,
        } => {
            format!("{dest} = alloca {elem_ty}, {}", fmt_operand(count))
        }
        Instr::Load { dest, ty, addr } => format!("{dest} = load {ty}, {}", fmt_operand(addr)),
        Instr::Store { ty, value, addr } => {
            format!("store {ty} {}, {}", fmt_operand(value), fmt_operand(addr))
        }
        Instr::Gep {
            dest,
            base,
            index,
            elem_size,
            offset,
        } => format!(
            "{dest} = gep {}, {} x {elem_size} + {offset}",
            fmt_operand(base),
            fmt_operand(index)
        ),
        Instr::Call { dest, callee, args } => match dest {
            Some(d) => format!("{d} = call @f{callee}({})", fmt_operands(args)),
            None => format!("call @f{callee}({})", fmt_operands(args)),
        },
        Instr::IntrinsicCall { dest, which, args } => match dest {
            Some(d) => format!("{d} = intrinsic {}({})", which.name(), fmt_operands(args)),
            None => format!("intrinsic {}({})", which.name(), fmt_operands(args)),
        },
        Instr::Phi { dest, ty, incoming } => {
            let arms = incoming
                .iter()
                .map(|(b, v)| format!("[{b}, {}]", fmt_operand(v)))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{dest} = phi {ty} {arms}")
        }
        Instr::Br { target } => format!("br {target}"),
        Instr::CondBr {
            cond,
            then_bb,
            else_bb,
        } => {
            format!("condbr {}, {then_bb}, {else_bb}", fmt_operand(cond))
        }
        Instr::Switch {
            value,
            default,
            cases,
        } => {
            let arms = cases
                .iter()
                .map(|(v, b)| format!("{v} -> {b}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("switch {}, default {default} [{arms}]", fmt_operand(value))
        }
        Instr::Ret { value } => match value {
            Some(v) => format!("ret {}", fmt_operand(v)),
            None => "ret void".to_string(),
        },
        Instr::Unreachable => "unreachable".to_string(),
    }
}

/// Render a function.
pub fn print_function(func: &Function) -> String {
    let mut out = String::new();
    let params = func
        .params
        .iter()
        .map(|r| format!("{} {r}", func.reg_ty(*r)))
        .collect::<Vec<_>>()
        .join(", ");
    let ret = func
        .ret_ty
        .map(|t| t.to_string())
        .unwrap_or_else(|| "void".to_string());
    let _ = writeln!(out, "func @{}({params}) -> {ret} {{", func.name);
    for (i, block) in func.blocks.iter().enumerate() {
        let label = block.label.as_deref().unwrap_or("");
        let _ = writeln!(out, "{}: ; {label}", BlockId(i as u32));
        for instr in &block.instrs {
            let _ = writeln!(out, "  {}", print_instr(instr));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render a whole module.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; module {}", module.name);
    for (i, g) in module.globals.iter().enumerate() {
        let _ = writeln!(
            out,
            "global @g{i} \"{}\" size={} align={} init_len={}",
            g.name,
            g.size,
            g.align,
            g.init.len()
        );
    }
    for f in &module.functions {
        out.push_str(&print_function(f));
    }
    if let Some(entry) = module.entry {
        let _ = writeln!(out, "entry @{}", module.functions[entry.index()].name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::Type;

    #[test]
    fn prints_a_small_module() {
        let mut mb = ModuleBuilder::new("p");
        let g = mb.global_i32s("tbl", &[1, 2]);
        let main = mb.declare("main", &[], Some(Type::I32));
        {
            let mut f = mb.define(main);
            let v = f.load_elem(Type::I32, g, 1i64);
            let w = f.add(Type::I32, v, 5i32);
            f.print_i64(w);
            f.ret(w);
        }
        mb.set_entry(main);
        let text = print_module(&mb.finish());
        assert!(text.contains("; module p"));
        assert!(text.contains("global @g0"));
        assert!(text.contains("func @main()"));
        assert!(text.contains("add i32"));
        assert!(text.contains("intrinsic print_i64"));
        assert!(text.contains("entry @main"));
    }

    #[test]
    fn every_instruction_form_renders() {
        use crate::instr::*;
        use crate::value::{Constant, Operand, Reg};
        let samples = vec![
            Instr::Gep {
                dest: Reg(0),
                base: Operand::Const(Constant::Null),
                index: Operand::Reg(Reg(1)),
                elem_size: 4,
                offset: 8,
            },
            Instr::Switch {
                value: Operand::Reg(Reg(0)),
                default: BlockId(1),
                cases: vec![(0, BlockId(2))],
            },
            Instr::Phi {
                dest: Reg(2),
                ty: Type::I32,
                incoming: vec![(BlockId(0), Operand::Const(Constant::i32(1)))],
            },
            Instr::Unreachable,
            Instr::Ret { value: None },
        ];
        for s in samples {
            assert!(!print_instr(&s).is_empty());
        }
    }
}
