//! Modules and global data.

use crate::function::{FuncId, Function};

/// A global data object (read/write byte array placed in the globals segment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Name of the global (unique within a module).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Initial contents; shorter than `size` means the rest is zero-filled.
    pub init: Vec<u8>,
    /// Required alignment in bytes (power of two).
    pub align: u64,
}

impl Global {
    /// Create a zero-initialised global of `size` bytes.
    pub fn zeroed(name: impl Into<String>, size: u64) -> Global {
        Global {
            name: name.into(),
            size,
            init: Vec::new(),
            align: 8,
        }
    }

    /// Create a global initialised with the given bytes.
    pub fn with_bytes(name: impl Into<String>, bytes: Vec<u8>) -> Global {
        Global {
            name: name.into(),
            size: bytes.len() as u64,
            init: bytes,
            align: 8,
        }
    }
}

/// A whole program: functions plus global data.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name (typically the workload name).
    pub name: String,
    /// Function table; [`FuncId`] indexes into it.
    pub functions: Vec<Function>,
    /// Global data objects.
    pub globals: Vec<Global>,
    /// Index of the entry function (`main`).
    pub entry: Option<FuncId>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
            entry: None,
        }
    }

    /// Look up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Look up a global by name, returning its index.
    pub fn global_by_name(&self, name: &str) -> Option<(usize, &Global)> {
        self.globals
            .iter()
            .enumerate()
            .find(|(_, g)| g.name == name)
    }

    /// The entry function, panicking if none was set.
    pub fn entry_function(&self) -> &Function {
        let id = self.entry.expect("module has no entry function");
        &self.functions[id.index()]
    }

    /// Total number of static instructions across all functions.
    pub fn static_instr_count(&self) -> usize {
        self.functions.iter().map(|f| f.instr_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_constructors() {
        let g = Global::zeroed("buf", 64);
        assert_eq!(g.size, 64);
        assert!(g.init.is_empty());
        let g = Global::with_bytes("msg", b"hello".to_vec());
        assert_eq!(g.size, 5);
        assert_eq!(g.init, b"hello");
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new("test");
        m.globals.push(Global::zeroed("a", 8));
        m.globals.push(Global::zeroed("b", 8));
        assert_eq!(m.global_by_name("b").unwrap().0, 1);
        assert!(m.global_by_name("c").is_none());
        assert!(m.function_by_name("main").is_none());
        assert_eq!(m.static_instr_count(), 0);
    }
}
