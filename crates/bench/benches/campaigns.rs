//! Benchmarks of whole campaigns — the unit of work behind every figure —
//! including the scaling across thread counts.
//!
//! Plain-`std` harness (`harness = false`): median-of-N wall-clock timing,
//! machine-readable output in `BENCH_campaigns.json`.

use mbfi_bench::BenchSuite;
use mbfi_core::{Campaign, CampaignSpec, FaultModel, GoldenRun, Technique, WinSize};
use mbfi_ir::CompiledModule;
use mbfi_workloads::{workload_by_name, InputSize};

fn main() {
    let workload = workload_by_name("stringsearch").expect("stringsearch exists");
    let module = workload.build_module(InputSize::Tiny);
    let code = CompiledModule::lower(&module);
    let golden = GoldenRun::capture_compiled(&code).expect("golden run");

    let mut suite = BenchSuite::new("campaigns");

    for (label, model) in [
        (
            "campaign_25_experiments/single_bit",
            FaultModel::single_bit(),
        ),
        (
            "campaign_25_experiments/multi_3_w1",
            FaultModel::multi_bit(3, WinSize::Fixed(1)),
        ),
    ] {
        suite.bench(label, || {
            let spec = CampaignSpec {
                technique: Technique::InjectOnWrite,
                model,
                experiments: 25,
                seed: 7,
                hang_factor: 20,
                threads: 1,
            };
            Campaign::run_compiled(&code, &golden, &spec)
        });
    }

    for threads in [1usize, 2, 4] {
        suite.bench(format!("campaign_thread_scaling/{threads}"), || {
            let spec = CampaignSpec {
                technique: Technique::InjectOnRead,
                model: FaultModel::single_bit(),
                experiments: 40,
                seed: 7,
                hang_factor: 20,
                threads,
            };
            Campaign::run_compiled(&code, &golden, &spec)
        });
    }

    suite.finish();
}
