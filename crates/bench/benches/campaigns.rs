//! Benchmarks of whole campaigns — the unit of work behind every figure —
//! including the scaling across thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbfi_core::{Campaign, CampaignSpec, FaultModel, GoldenRun, Technique, WinSize};
use mbfi_workloads::{workload_by_name, InputSize};

fn bench_campaigns(c: &mut Criterion) {
    let workload = workload_by_name("stringsearch").expect("stringsearch exists");
    let module = workload.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).expect("golden run");

    let mut group = c.benchmark_group("campaign_25_experiments");
    group.sample_size(10);
    for (label, model) in [
        ("single_bit", FaultModel::single_bit()),
        ("multi_3_w1", FaultModel::multi_bit(3, WinSize::Fixed(1))),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let spec = CampaignSpec {
                    technique: Technique::InjectOnWrite,
                    model,
                    experiments: 25,
                    seed: 7,
                    hang_factor: 20,
                    threads: 1,
                };
                std::hint::black_box(Campaign::run(&module, &golden, &spec))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("campaign_thread_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let spec = CampaignSpec {
                    technique: Technique::InjectOnRead,
                    model: FaultModel::single_bit(),
                    experiments: 40,
                    seed: 7,
                    hang_factor: 20,
                    threads: t,
                };
                std::hint::black_box(Campaign::run(&module, &golden, &spec))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaigns);
criterion_main!(benches);
