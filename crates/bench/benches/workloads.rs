//! Benchmarks of the execution substrate: golden-run interpretation speed of
//! every workload (this bounds how fast campaigns — and hence every
//! table/figure — can be regenerated).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mbfi_core::GoldenRun;
use mbfi_vm::{Limits, NoopHook, Vm};
use mbfi_workloads::{all_workloads, InputSize};

fn bench_golden_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("golden_run");
    group.sample_size(10);
    for workload in all_workloads() {
        let module = workload.build_module(InputSize::Tiny);
        let golden = GoldenRun::capture(&module).expect("golden run");
        group.throughput(Throughput::Elements(golden.dynamic_instrs));
        group.bench_with_input(
            BenchmarkId::from_parameter(workload.name()),
            &module,
            |b, module| {
                b.iter(|| {
                    let mut hook = NoopHook;
                    std::hint::black_box(Vm::new(module, Limits::default()).run(&mut hook))
                });
            },
        );
    }
    group.finish();
}

fn bench_module_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_module");
    group.sample_size(20);
    for name in ["sha", "FFT", "dijkstra"] {
        let workload = mbfi_workloads::workload_by_name(name).expect("workload exists");
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(workload.build_module(InputSize::Tiny)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_golden_runs, bench_module_construction);
criterion_main!(benches);
