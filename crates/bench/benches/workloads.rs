//! Benchmarks of the execution substrate: golden-run interpretation speed of
//! every workload (this bounds how fast campaigns — and hence every
//! table/figure — can be regenerated), plus module construction.
//!
//! Plain-`std` harness (`harness = false`): median-of-N wall-clock timing,
//! machine-readable output in `BENCH_workloads.json`; golden-run entries
//! carry a dynamic-instruction throughput denominator.

use mbfi_bench::BenchSuite;
use mbfi_core::GoldenRun;
use mbfi_ir::CompiledModule;
use mbfi_vm::{Limits, NoopHook, Vm};
use mbfi_workloads::{all_workloads, InputSize};

fn main() {
    let mut suite = BenchSuite::new("workloads");

    for workload in all_workloads() {
        let module = workload.build_module(InputSize::Tiny);
        let code = CompiledModule::lower(&module);
        let golden = GoldenRun::capture_compiled(&code).expect("golden run");
        suite.bench_with_throughput(
            format!("golden_run/{}", workload.name()),
            Some(golden.dynamic_instrs),
            || {
                let mut hook = NoopHook;
                Vm::new(&code, Limits::default()).run(&mut hook)
            },
        );
    }

    for name in ["sha", "FFT", "dijkstra"] {
        let workload = mbfi_workloads::workload_by_name(name).expect("workload exists");
        suite.bench(format!("build_module/{name}"), || {
            workload.build_module(InputSize::Tiny)
        });
    }

    suite.finish();
}
