//! Micro-benchmarks of the fault-injection machinery itself: golden runs,
//! single experiments with each technique, and bit-flip value operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbfi_core::{Experiment, ExperimentSpec, FaultModel, GoldenRun, Technique, WinSize};
use mbfi_vm::Value;
use mbfi_workloads::{workload_by_name, InputSize};

fn bench_experiments(c: &mut Criterion) {
    let workload = workload_by_name("qsort").expect("qsort exists");
    let module = workload.build_module(InputSize::Tiny);
    let golden = GoldenRun::capture(&module).expect("golden run");

    let mut group = c.benchmark_group("experiment");
    group.sample_size(20);
    for technique in [Technique::InjectOnRead, Technique::InjectOnWrite] {
        for (label, model) in [
            ("single", FaultModel::single_bit()),
            ("m3w1", FaultModel::multi_bit(3, WinSize::Fixed(1))),
            ("m30w100", FaultModel::multi_bit(30, WinSize::Fixed(100))),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}", technique), label),
                &model,
                |b, model| {
                    let mut i = 0u64;
                    b.iter(|| {
                        i += 1;
                        let spec =
                            ExperimentSpec::sample(technique, *model, &golden, 42, i, 20);
                        std::hint::black_box(Experiment::run(&module, &golden, &spec))
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_bit_flips(c: &mut Criterion) {
    let mut group = c.benchmark_group("bit_flip");
    group.bench_function("flip_single_bit", |b| {
        let v = Value::i64(0x0123_4567_89ab_cdef);
        let mut bit = 0u32;
        b.iter(|| {
            bit = (bit + 1) % 64;
            std::hint::black_box(v.flip_bit(bit))
        });
    });
    group.bench_function("flip_30_bits", |b| {
        let v = Value::i64(0x0123_4567_89ab_cdef);
        let bits: Vec<u32> = (0..30).collect();
        b.iter(|| std::hint::black_box(v.flip_bits(&bits)));
    });
    group.finish();
}

criterion_group!(benches, bench_experiments, bench_bit_flips);
criterion_main!(benches);
