//! Micro-benchmarks of the fault-injection machinery itself: single
//! experiments with each technique and fault model, and bit-flip value
//! operations.
//!
//! Plain-`std` harness (`harness = false`): median-of-N wall-clock timing,
//! machine-readable output in `BENCH_injector.json`.

use mbfi_bench::BenchSuite;
use mbfi_core::{Experiment, ExperimentSpec, FaultModel, GoldenRun, Technique, WinSize};
use mbfi_ir::CompiledModule;
use mbfi_vm::Value;
use mbfi_workloads::{workload_by_name, InputSize};

fn main() {
    let workload = workload_by_name("qsort").expect("qsort exists");
    let module = workload.build_module(InputSize::Tiny);
    // Lower once outside the timed closures so the measurement stays pure
    // injection overhead, not per-iteration lowering.
    let code = CompiledModule::lower(&module);
    let golden = GoldenRun::capture_compiled(&code).expect("golden run");

    let mut suite = BenchSuite::new("injector");

    for technique in [Technique::InjectOnRead, Technique::InjectOnWrite] {
        for (label, model) in [
            ("single", FaultModel::single_bit()),
            ("m3w1", FaultModel::multi_bit(3, WinSize::Fixed(1))),
            ("m30w100", FaultModel::multi_bit(30, WinSize::Fixed(100))),
        ] {
            let mut i = 0u64;
            suite.bench(format!("experiment/{technique}/{label}"), || {
                i += 1;
                let spec = ExperimentSpec::sample(technique, model, &golden, 42, i, 20);
                Experiment::run_compiled(&code, &golden, &spec, None)
            });
        }
    }

    {
        let v = Value::i64(0x0123_4567_89ab_cdef);
        let mut bit = 0u32;
        suite.bench("bit_flip/flip_single_bit", || {
            bit = (bit + 1) % 64;
            v.flip_bit(std::hint::black_box(bit))
        });
    }
    {
        let v = Value::i64(0x0123_4567_89ab_cdef);
        let bits: Vec<u32> = (0..30).collect();
        suite.bench("bit_flip/flip_30_bits", || {
            v.flip_bits(std::hint::black_box(&bits))
        });
    }

    suite.finish();
}
