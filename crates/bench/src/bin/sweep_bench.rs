//! Measures the whole-grid sweep engine against the pre-sweep grid walk and
//! writes `BENCH_sweep.json`.
//!
//! **Serial baseline** — the grid exactly as `run_all` executed it before
//! the sweep refactor: artifacts prepared without checkpoint stores (replay
//! was off by default), and one `Campaign::run_compiled` per cell, walking
//! every figure's cell list in order *including the duplicates* (the
//! single-bit baseline ran once for Fig. 1, again for Fig. 2 and again for
//! Fig. 4/5; the max-MBF = 30 activation row ran for Fig. 3 and again inside
//! the Fig. 4/5 grid).
//!
//! **Sweep** — the same artifacts through the new pipeline: one
//! [`SweepCache`] per workload (golden run captured once, checkpoint store
//! shared read-only by every campaign), duplicate cells collapsed on the
//! [`CampaignGrid`], and every remaining cell executed by one
//! work-stealing sweep.
//!
//! Both sides produce byte-identical figure inputs (the replay and sweep
//! determinism contracts); the JSON reports grid wall-clock and
//! experiments/sec for both, plus the deduplicated/duplicated cell counts.
//!
//! Flags and knobs:
//!
//! * `--check` — self-verifying mode: skip timing and instead compare every
//!   sweep cell byte-for-byte against serial `Campaign::run_compiled` (with
//!   and without replay stores) at sweep thread counts {1, 4}; exits
//!   non-zero on the first divergence.
//! * `--out-dir <path>` — where `BENCH_sweep.json` goes (default: CWD).
//! * `MBFI_WORKLOADS` — workload filter (default: all 15; `--check` defaults
//!   to a 2-workload sub-grid, `qsort,histo`).
//! * `MBFI_EXPERIMENTS` — experiments per campaign (default 24; `--check`
//!   default 8).
//! * `MBFI_BENCH_SAMPLES` — timing samples per side (default 1; one untimed
//!   warm-up pass runs first and the median sample is reported — the shared
//!   `timing::median_wall_ns` methodology).
//! * plus the harness knobs (`MBFI_THREADS`, `MBFI_SWEEP_BATCH`, ...).

use mbfi_bench::artifacts::OutDir;
use mbfi_bench::harness::{self, CampaignGrid, HarnessConfig, WorkloadData};
use mbfi_bench::timing::{env_usize, median_wall_ns};
use mbfi_core::report::Json;
use mbfi_core::{Campaign, CampaignResult, FaultModel, Technique, WinSize};

/// The per-workload cell lists of the pre-sweep `run_all`, duplicates
/// included, in execution order: Fig. 1 singles, Fig. 2 same-register,
/// Fig. 3 activation, Fig. 4/5 multi-register.
fn serial_cells(cfg: &HarnessConfig) -> Vec<(Technique, FaultModel)> {
    let mut cells = Vec::new();
    for technique in Technique::ALL {
        cells.push((technique, FaultModel::single_bit()));
    }
    for technique in Technique::ALL {
        cells.push((technique, FaultModel::single_bit()));
        for &m in &cfg.max_mbf_values() {
            cells.push((technique, FaultModel::multi_bit(m, WinSize::Fixed(0))));
        }
    }
    for technique in Technique::ALL {
        for &win in &cfg.win_size_values() {
            cells.push((technique, FaultModel::multi_bit(30, win)));
        }
    }
    for technique in Technique::ALL {
        cells.push((technique, FaultModel::single_bit()));
        for &m in &cfg.max_mbf_values() {
            for &win in &cfg.win_size_values() {
                cells.push((technique, FaultModel::multi_bit(m, win)));
            }
        }
    }
    cells
}

/// One pre-sweep grid walk: per-campaign runner, no stores, duplicate cells.
fn run_serial_grid(cfg: &HarnessConfig, data: &[WorkloadData]) -> Vec<CampaignResult> {
    let cells = serial_cells(cfg);
    let mut out = Vec::with_capacity(data.len() * cells.len());
    for w in data {
        for &(technique, model) in &cells {
            out.push(Campaign::run_compiled(
                &w.code,
                &w.golden,
                &cfg.campaign_spec(technique, model),
            ));
        }
    }
    out
}

fn check(cfg: &HarnessConfig) -> ! {
    let serial_cfg = HarnessConfig {
        replay: false,
        ..cfg.clone()
    };
    let serial_data = harness::prepare(&serial_cfg);
    let mut mismatches = 0usize;
    let mut cells_checked = 0usize;
    for threads in [1usize, 4] {
        let mut cells_this_round = 0usize;
        let sweep_cfg = HarnessConfig {
            threads,
            ..cfg.clone()
        };
        let mut grid = CampaignGrid::new(&sweep_cfg);
        grid.request_artifact_grid();
        let run = grid.run();
        for (w, data) in serial_data.iter().enumerate() {
            for technique in Technique::ALL {
                let mut models = vec![FaultModel::single_bit()];
                for &m in &cfg.max_mbf_values() {
                    models.push(FaultModel::multi_bit(m, WinSize::Fixed(0)));
                    for &win in &cfg.win_size_values() {
                        models.push(FaultModel::multi_bit(m, win));
                    }
                }
                for model in models {
                    let serial = Campaign::run_compiled(
                        &data.code,
                        &data.golden,
                        &sweep_cfg.campaign_spec(technique, model),
                    );
                    let swept = run.get(w, technique, model);
                    cells_checked += 1;
                    cells_this_round += 1;
                    if *swept != serial {
                        mismatches += 1;
                        eprintln!(
                            "DIVERGENCE: {} {technique} {} (threads={threads}): \
                             sweep {:?} vs serial {:?}",
                            data.name,
                            model.label(),
                            swept.counts,
                            serial.counts
                        );
                    }
                }
            }
        }
        println!(
            "threads={threads}: {cells_this_round} cells checked against the serial \
             per-campaign runner"
        );
    }
    if mismatches > 0 {
        eprintln!("sweep_bench --check: {mismatches} mismatching cells");
        std::process::exit(1);
    }
    println!(
        "sweep_bench --check: sweep grid is byte-identical to serial per-campaign execution \
         ({cells_checked} cell comparisons)"
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let out = OutDir::from_args();

    let mut cfg = HarnessConfig::from_env();
    // This benchmark compares the fixed-n sweep against the fixed-n serial
    // walk; an exported MBFI_PRECISION would make only the sweep side
    // adaptive and invalidate both --check and the timing ratio.
    // adaptive_bench is the adaptive-vs-fixed comparison.
    if cfg.precision.take().is_some() {
        eprintln!("sweep_bench: ignoring MBFI_PRECISION (this bench compares fixed-n paths)");
    }
    // This binary's own default is smaller than the harness-wide 60; apply
    // it whenever the knob did not parse to a value (unset or malformed —
    // from_env already warned about the latter).
    let experiments_given =
        std::env::var("MBFI_EXPERIMENTS").is_ok_and(|v| v.trim().parse::<usize>().is_ok());
    if !experiments_given {
        cfg.experiments = if check_mode { 8 } else { 24 };
    }
    if check_mode && cfg.workload_filter.is_none() {
        cfg.workload_filter = Some(vec!["qsort".into(), "histo".into()]);
    }
    let samples = env_usize("MBFI_BENCH_SAMPLES", 1);
    eprintln!(
        "sweep_bench: {} workloads, {} experiments/campaign, {} mode",
        cfg.workloads().len(),
        cfg.experiments,
        if check_mode { "check" } else { "timing" }
    );

    if check_mode {
        check(&cfg);
    }

    let serial_cfg = HarnessConfig {
        replay: false,
        ..cfg.clone()
    };
    let serial_cells_per_workload = serial_cells(&cfg).len();

    // Serial side: per-binary artifact derivation + per-campaign grid walk.
    let mut serial_campaigns = 0usize;
    let serial_ns = median_wall_ns(samples, || {
        let data = harness::prepare(&serial_cfg);
        let results = run_serial_grid(&serial_cfg, &data);
        serial_campaigns = results.len();
    });

    // Sweep side: shared cache + deduplicated cells + one sweep.
    let mut sweep_campaigns = 0usize;
    let sweep_ns = median_wall_ns(samples, || {
        let mut grid = CampaignGrid::new(&cfg);
        grid.request_artifact_grid();
        let run = grid.run();
        sweep_campaigns = run.cell_count();
    });

    let serial_experiments = (serial_campaigns * cfg.experiments) as u64;
    let sweep_experiments = (sweep_campaigns * cfg.experiments) as u64;
    let serial_eps = serial_experiments as f64 * 1e9 / serial_ns.max(1) as f64;
    let sweep_eps = sweep_experiments as f64 * 1e9 / sweep_ns.max(1) as f64;
    let speedup = serial_ns as f64 / sweep_ns.max(1) as f64;
    println!(
        "serial grid: {serial_campaigns} campaigns ({} duplicated cells/workload), \
         {:.2} s, {serial_eps:.0} exp/s",
        serial_cells_per_workload,
        serial_ns as f64 / 1e9
    );
    println!(
        "sweep grid:  {sweep_campaigns} campaigns (deduplicated), \
         {:.2} s, {sweep_eps:.0} exp/s",
        sweep_ns as f64 / 1e9
    );
    println!("speedup: {speedup:.2}x (whole-grid sweep over serial per-campaign walk)");

    let mut root = Json::object();
    root.set("suite", "sweep");
    root.set(
        "workloads",
        cfg.workloads()
            .iter()
            .map(|w| w.name().to_string())
            .collect::<Vec<_>>(),
    );
    root.set("experiments_per_campaign", cfg.experiments);
    root.set("samples", samples);
    let mut serial = Json::object();
    serial.set("campaigns", serial_campaigns);
    serial.set("experiments", serial_experiments);
    serial.set("wall_ns", serial_ns);
    serial.set("experiments_per_sec", serial_eps);
    serial.set("replay", false);
    root.set("serial", serial);
    let mut sweep = Json::object();
    sweep.set("campaigns", sweep_campaigns);
    sweep.set("experiments", sweep_experiments);
    sweep.set("wall_ns", sweep_ns);
    sweep.set("experiments_per_sec", sweep_eps);
    sweep.set("replay", cfg.replay);
    root.set("sweep", sweep);
    root.set("speedup", speedup);
    out.write("BENCH_sweep.json", &root.render());
}
