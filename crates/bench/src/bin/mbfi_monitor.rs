//! `mbfi-monitor` — live terminal dashboard (and headless verifier) for the
//! telemetry JSONL stream a `MBFI_TELEMETRY=full` sweep writes.
//!
//! ```text
//! mbfi-monitor <events.jsonl>             # one dashboard frame from a file
//! mbfi-monitor --follow <events.jsonl>    # tail the file, redrawing in place
//! mbfi-monitor --headless <events.jsonl>  # plain report + consistency check
//! some-sweep | mbfi-monitor --headless -  # read the stream from stdin
//! mbfi-monitor --connect HOST:PORT        # live dashboard of an mbfi-serve
//! mbfi-monitor --headless --connect ...   # daemon; verify at stream close
//! ```
//!
//! `--headless` prints the accumulated report without ANSI control codes and
//! then cross-checks the stream (see `MonitorState::verify`): per-cell totals
//! accumulated from `batch_done` events must exactly equal the authoritative
//! `cell_finished` tallies, the grand total must equal `sweep_finished`, and
//! the sequence-number set must be gap-free.  Any violation is printed and
//! the process exits non-zero — this is the CI assertion that the monitor
//! agrees with the `SweepReport`.

use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::time::Duration;

use mbfi_bench::monitor::{render_dashboard, render_headless};
use mbfi_core::MonitorState;

struct Options {
    path: String,
    headless: bool,
    follow: bool,
    connect: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: mbfi-monitor [--headless] [--follow] <events.jsonl | ->\n\
                mbfi-monitor [--headless] --connect HOST:PORT"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut headless = false;
    let mut follow = false;
    let mut connect: Option<String> = None;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--headless" => headless = true,
            "--follow" => follow = true,
            "--connect" => match args.next() {
                Some(addr) => connect = Some(addr),
                None => {
                    eprintln!("mbfi-monitor: --connect needs HOST:PORT");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => usage(),
            other if path.is_none() => path = Some(other.to_string()),
            _ => usage(),
        }
    }
    if let Some(connect) = connect {
        // Connected mode is inherently live; --follow is meaningless and a
        // file path would be ignored — reject both.
        if follow || path.is_some() {
            eprintln!("mbfi-monitor: --connect takes no file argument or --follow");
            std::process::exit(2);
        }
        return Options {
            path: String::new(),
            headless,
            follow: false,
            connect: Some(connect),
        };
    }
    let Some(path) = path else { usage() };
    if follow && headless {
        eprintln!("mbfi-monitor: --follow and --headless are mutually exclusive");
        std::process::exit(2);
    }
    if follow && path == "-" {
        eprintln!("mbfi-monitor: --follow needs a file path, not stdin");
        std::process::exit(2);
    }
    Options {
        path,
        headless,
        follow,
        connect: None,
    }
}

/// Apply every line of `reader`; decode errors are accumulated in the state
/// (and fail `verify()` later) rather than aborting the stream.
fn apply_all(state: &mut MonitorState, reader: impl BufRead) {
    for line in reader.lines() {
        match line {
            Ok(line) => {
                let _ = state.apply_line(&line);
            }
            Err(e) => {
                state.errors.push(format!("read error: {e}"));
                break;
            }
        }
    }
}

fn load(path: &str) -> MonitorState {
    let mut state = MonitorState::new();
    if path == "-" {
        apply_all(&mut state, std::io::stdin().lock());
    } else {
        match std::fs::File::open(path) {
            Ok(f) => apply_all(&mut state, BufReader::new(f)),
            Err(e) => {
                eprintln!("mbfi-monitor: cannot open {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    state
}

/// Tail `path`, redrawing the dashboard whenever new bytes land, until the
/// stream reports `sweep_finished`.
fn follow(path: &str) {
    let mut state = MonitorState::new();
    let mut offset: u64 = 0;
    let mut buffer = String::new();
    loop {
        if let Ok(mut f) = std::fs::File::open(path) {
            if f.seek(SeekFrom::Start(offset)).is_ok() {
                let mut chunk = String::new();
                if f.read_to_string(&mut chunk).is_ok() && !chunk.is_empty() {
                    offset += chunk.len() as u64;
                    buffer.push_str(&chunk);
                    // Only complete lines are applied; a partial tail stays
                    // buffered for the next poll.
                    while let Some(nl) = buffer.find('\n') {
                        let line: String = buffer.drain(..=nl).collect();
                        let _ = state.apply_line(&line);
                    }
                    print!("{}", render_dashboard(&state));
                    let _ = std::io::stdout().flush();
                }
            }
        }
        if state.finished {
            return;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// Attach to an `mbfi-serve` daemon's global `watch` stream, feeding every
/// event through the same accumulator the file modes use.  In dashboard mode
/// the frame is redrawn (throttled) as events arrive; the stream ends when
/// the daemon drains and shuts down.  In headless mode events are only
/// accumulated, and the usual report + consistency verdict is printed at
/// stream close — the daemon-facing twin of `--headless <file>`.
///
/// The daemon's log is cumulative (a fresh `sweep_finished` summary follows
/// every completed cell), so jobs submitted while we watch simply extend the
/// totals; `MonitorState` folds repeated summaries by overwriting.
fn connect(addr: &str, headless: bool) -> MonitorState {
    let mut state = MonitorState::new();
    let mut last_draw = std::time::Instant::now() - Duration::from_secs(1);
    let result = mbfi_serve::watch(addr, &mut |line| {
        let _ = state.apply_line(line);
        if !headless && last_draw.elapsed() >= Duration::from_millis(200) {
            print!("{}", render_dashboard(&state));
            let _ = std::io::stdout().flush();
            last_draw = std::time::Instant::now();
        }
    });
    match result {
        Ok(events) => eprintln!("mbfi-monitor: daemon stream closed after {events} events"),
        Err(e) => {
            eprintln!("mbfi-monitor: {e}");
            std::process::exit(2);
        }
    }
    state
}

fn main() {
    let opts = parse_args();
    if opts.follow {
        follow(&opts.path);
        return;
    }
    let state = match &opts.connect {
        Some(addr) => connect(addr, opts.headless),
        None => load(&opts.path),
    };
    if opts.headless {
        print!("{}", render_headless(&state));
        let problems = state.verify();
        if problems.is_empty() {
            println!("verify: ok ({} events)", state.events);
        } else {
            for p in &problems {
                eprintln!("verify: {p}");
            }
            std::process::exit(1);
        }
    } else {
        print!("{}", render_dashboard(&state));
    }
}
