//! `mbfi-monitor` — live terminal dashboard (and headless verifier) for the
//! telemetry JSONL stream a `MBFI_TELEMETRY=full` sweep writes.
//!
//! ```text
//! mbfi-monitor <events.jsonl>             # one dashboard frame from a file
//! mbfi-monitor --follow <events.jsonl>    # tail the file, redrawing in place
//! mbfi-monitor --headless <events.jsonl>  # plain report + consistency check
//! some-sweep | mbfi-monitor --headless -  # read the stream from stdin
//! ```
//!
//! `--headless` prints the accumulated report without ANSI control codes and
//! then cross-checks the stream (see `MonitorState::verify`): per-cell totals
//! accumulated from `batch_done` events must exactly equal the authoritative
//! `cell_finished` tallies, the grand total must equal `sweep_finished`, and
//! the sequence-number set must be gap-free.  Any violation is printed and
//! the process exits non-zero — this is the CI assertion that the monitor
//! agrees with the `SweepReport`.

use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::time::Duration;

use mbfi_bench::monitor::{render_dashboard, render_headless};
use mbfi_core::MonitorState;

struct Options {
    path: String,
    headless: bool,
    follow: bool,
}

fn usage() -> ! {
    eprintln!("usage: mbfi-monitor [--headless] [--follow] <events.jsonl | ->");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut headless = false;
    let mut follow = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--headless" => headless = true,
            "--follow" => follow = true,
            "--help" | "-h" => usage(),
            other if path.is_none() => path = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    if follow && headless {
        eprintln!("mbfi-monitor: --follow and --headless are mutually exclusive");
        std::process::exit(2);
    }
    if follow && path == "-" {
        eprintln!("mbfi-monitor: --follow needs a file path, not stdin");
        std::process::exit(2);
    }
    Options {
        path,
        headless,
        follow,
    }
}

/// Apply every line of `reader`; decode errors are accumulated in the state
/// (and fail `verify()` later) rather than aborting the stream.
fn apply_all(state: &mut MonitorState, reader: impl BufRead) {
    for line in reader.lines() {
        match line {
            Ok(line) => {
                let _ = state.apply_line(&line);
            }
            Err(e) => {
                state.errors.push(format!("read error: {e}"));
                break;
            }
        }
    }
}

fn load(path: &str) -> MonitorState {
    let mut state = MonitorState::new();
    if path == "-" {
        apply_all(&mut state, std::io::stdin().lock());
    } else {
        match std::fs::File::open(path) {
            Ok(f) => apply_all(&mut state, BufReader::new(f)),
            Err(e) => {
                eprintln!("mbfi-monitor: cannot open {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    state
}

/// Tail `path`, redrawing the dashboard whenever new bytes land, until the
/// stream reports `sweep_finished`.
fn follow(path: &str) {
    let mut state = MonitorState::new();
    let mut offset: u64 = 0;
    let mut buffer = String::new();
    loop {
        if let Ok(mut f) = std::fs::File::open(path) {
            if f.seek(SeekFrom::Start(offset)).is_ok() {
                let mut chunk = String::new();
                if f.read_to_string(&mut chunk).is_ok() && !chunk.is_empty() {
                    offset += chunk.len() as u64;
                    buffer.push_str(&chunk);
                    // Only complete lines are applied; a partial tail stays
                    // buffered for the next poll.
                    while let Some(nl) = buffer.find('\n') {
                        let line: String = buffer.drain(..=nl).collect();
                        let _ = state.apply_line(&line);
                    }
                    print!("{}", render_dashboard(&state));
                    let _ = std::io::stdout().flush();
                }
            }
        }
        if state.finished {
            return;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn main() {
    let opts = parse_args();
    if opts.follow {
        follow(&opts.path);
        return;
    }
    let state = load(&opts.path);
    if opts.headless {
        print!("{}", render_headless(&state));
        let problems = state.verify();
        if problems.is_empty() {
            println!("verify: ok ({} events)", state.events);
        } else {
            for p in &problems {
                eprintln!("verify: {p}");
            }
            std::process::exit(1);
        }
    } else {
        print!("{}", render_dashboard(&state));
    }
}
