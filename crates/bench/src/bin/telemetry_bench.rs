//! Measures the telemetry plane's overhead and writes `BENCH_telemetry.json`.
//!
//! The same sweep runs three times: telemetry **off** ([`mbfi_core::NoopSink`]
//! — every instrumentation site monomorphizes away), at the **counters**
//! level (atomic registry bumps, per-batch timing only) and at the **full**
//! level (per-experiment latency histogram plus the structured JSONL event
//! stream).  The JSON reports experiments/sec per mode and the relative
//! overhead of each level; the design target is ≤ 2 % for `counters`.
//!
//! Flags and knobs:
//!
//! * `--check` — self-verifying mode: at sweep thread counts {1, 4, 8},
//!   assert that the telemetered sweep ([`TelemetryLevel::Counters`] and
//!   [`TelemetryLevel::Full`]) returns a report byte-identical to the
//!   untelemetered one, that the hub snapshot's per-cell totals exactly
//!   equal the final `SweepReport`, and that replaying the drained JSONL
//!   stream through [`MonitorState`] verifies cleanly with the same totals
//!   (the `mbfi-monitor --headless` contract).  Exits non-zero on any
//!   violation.
//! * `--out-dir <path>` — where `BENCH_telemetry.json` goes (default: CWD).
//! * `MBFI_WORKLOADS` — workload filter (default `qsort,histo`).
//! * `MBFI_EXPERIMENTS` — experiments per campaign (default 60; `--check`
//!   default 10).
//! * `MBFI_BENCH_SAMPLES` — timing samples per mode (default 3; one untimed
//!   warm-up pass runs first and the median sample is reported).
//! * plus the harness knobs (`MBFI_THREADS`, `MBFI_SWEEP_BATCH`, ...).

use mbfi_bench::artifacts::OutDir;
use mbfi_bench::harness::{self, HarnessConfig, WorkloadData};
use mbfi_bench::timing::{env_usize, median_wall_ns};
use mbfi_core::report::Json;
use mbfi_core::{
    FaultModel, Metric, MonitorState, Sweep, SweepCampaign, SweepConfig, SweepReport, SweepUnit,
    Technique, TelemetryHub, TelemetryLevel, WinSize,
};

/// Per workload: both techniques, a single-bit and a windowed multi-bit
/// model — enough cells that stealing, batching and the event stream all
/// exercise, while staying quick.
fn build_cells(cfg: &HarnessConfig, workloads: usize) -> Vec<SweepCampaign> {
    let mut cells = Vec::new();
    for unit in 0..workloads {
        for technique in Technique::ALL {
            for model in [
                FaultModel::single_bit(),
                FaultModel::multi_bit(3, WinSize::Fixed(100)),
            ] {
                cells.push(SweepCampaign {
                    unit,
                    spec: cfg.campaign_spec(technique, model),
                });
            }
        }
    }
    cells
}

/// Compare a telemetered report and its hub against the untelemetered
/// baseline; returns the number of violations found (0 = clean).
fn check_level(
    base: &SweepReport,
    units: &[SweepUnit<'_>],
    cells: &[SweepCampaign],
    config: &SweepConfig,
    level: TelemetryLevel,
    threads: usize,
) -> usize {
    let mut failures = 0;
    let hub = TelemetryHub::new(level);
    let report = Sweep::run_with(units, cells, config, &hub);
    if &report != base {
        failures += 1;
        eprintln!(
            "DIVERGENCE: telemetry={} threads={threads}: report differs from telemetry-off",
            level.label()
        );
    }

    let total: u64 = report.results.iter().map(|r| r.result.total()).sum();
    let snapshot = hub.snapshot();
    if snapshot.counter(Metric::ExperimentsRun) != total {
        failures += 1;
        eprintln!(
            "MISMATCH: telemetry={} threads={threads}: counter {} != report total {total}",
            level.label(),
            snapshot.counter(Metric::ExperimentsRun)
        );
    }
    for (i, r) in report.results.iter().enumerate() {
        let cell = &snapshot.cells[i];
        if cell.done != r.result.total() || cell.counts != r.result.counts || !cell.finished {
            failures += 1;
            eprintln!(
                "MISMATCH: telemetry={} threads={threads} cell {i}: snapshot {}/{:?} \
                 (finished={}) != report {}/{:?}",
                level.label(),
                cell.done,
                cell.counts,
                cell.finished,
                r.result.total(),
                r.result.counts
            );
        }
    }

    if level == TelemetryLevel::Full {
        // The mbfi-monitor contract: the drained JSONL stream must replay
        // into a clean, complete MonitorState whose per-cell totals equal
        // the authoritative report.
        let jsonl = hub.drain_jsonl();
        let mut state = MonitorState::new();
        for line in jsonl.lines() {
            let _ = state.apply_line(line);
        }
        for problem in state.verify() {
            failures += 1;
            eprintln!("MONITOR: threads={threads}: {problem}");
        }
        if !state.finished {
            failures += 1;
            eprintln!("MONITOR: threads={threads}: stream never reported sweep_finished");
        }
        for (i, r) in report.results.iter().enumerate() {
            let reported = state.cells.get(i).and_then(|c| c.reported);
            if reported != Some((r.result.total(), r.result.counts)) {
                failures += 1;
                eprintln!(
                    "MONITOR: threads={threads} cell {i}: stream reports {reported:?} \
                     but the SweepReport says ({}, {:?})",
                    r.result.total(),
                    r.result.counts
                );
            }
        }
    }
    failures
}

fn check(cfg: &HarnessConfig, data: &[WorkloadData]) -> ! {
    let units: Vec<SweepUnit<'_>> = data.iter().map(WorkloadData::sweep_unit).collect();
    let cells = build_cells(cfg, data.len());
    let mut failures = 0;
    for threads in [1usize, 4, 8] {
        let config = SweepConfig {
            threads,
            ..cfg.sweep_config()
        };
        let base = Sweep::run(&units, &cells, &config);
        for level in [TelemetryLevel::Counters, TelemetryLevel::Full] {
            failures += check_level(&base, &units, &cells, &config, level, threads);
        }
        println!(
            "threads={threads}: {} cells byte-identical at counters and full, \
             snapshot and monitor totals verified",
            cells.len()
        );
    }
    if failures > 0 {
        eprintln!("telemetry_bench --check: {failures} violations");
        std::process::exit(1);
    }
    println!(
        "telemetry_bench --check: telemetry is invariant-preserving across thread counts \
         1/4/8 and levels counters/full"
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let out = OutDir::from_args();

    let mut cfg = HarnessConfig::from_env();
    if cfg.precision.take().is_some() {
        eprintln!("telemetry_bench: ignoring MBFI_PRECISION (this bench compares fixed-n runs)");
    }
    let experiments_given =
        std::env::var("MBFI_EXPERIMENTS").is_ok_and(|v| v.trim().parse::<usize>().is_ok());
    if !experiments_given {
        cfg.experiments = if check_mode { 10 } else { 60 };
    }
    if cfg.workload_filter.is_none() {
        cfg.workload_filter = Some(vec!["qsort".into(), "histo".into()]);
    }
    let samples = env_usize("MBFI_BENCH_SAMPLES", 3);
    eprintln!(
        "telemetry_bench: {} workloads, {} experiments/campaign, {} mode",
        cfg.workloads().len(),
        cfg.experiments,
        if check_mode { "check" } else { "timing" }
    );

    let data = harness::prepare(&cfg);
    if check_mode {
        check(&cfg, &data);
    }

    let units: Vec<SweepUnit<'_>> = data.iter().map(WorkloadData::sweep_unit).collect();
    let cells = build_cells(&cfg, data.len());
    let config = cfg.sweep_config();
    let experiments = (cells.len() * cfg.experiments) as u64;

    let mut modes: Vec<(&str, u64)> = Vec::new();
    let off_ns = median_wall_ns(samples, || {
        Sweep::run(&units, &cells, &config);
    });
    modes.push(("off", off_ns));
    for level in [TelemetryLevel::Counters, TelemetryLevel::Full] {
        let ns = median_wall_ns(samples, || {
            let hub = TelemetryHub::new(level);
            Sweep::run_with(&units, &cells, &config, &hub);
            // Draining (not parsing) the stream is part of full-mode cost.
            let _ = hub.drain_jsonl();
        });
        modes.push((level.label(), ns));
    }

    let mut root = Json::object();
    root.set("suite", "telemetry");
    root.set(
        "workloads",
        cfg.workloads()
            .iter()
            .map(|w| w.name().to_string())
            .collect::<Vec<_>>(),
    );
    root.set("cells", cells.len());
    root.set("experiments_per_campaign", cfg.experiments);
    root.set("experiments", experiments);
    root.set("samples", samples);
    let mut arr: Vec<Json> = Vec::new();
    for &(label, ns) in &modes {
        let eps = experiments as f64 * 1e9 / ns.max(1) as f64;
        let overhead_pct = (ns as f64 / off_ns.max(1) as f64 - 1.0) * 100.0;
        println!(
            "telemetry={label:<8} {:.3} s, {eps:.0} exp/s ({overhead_pct:+.2}% vs off)",
            ns as f64 / 1e9
        );
        let mut mode = Json::object();
        mode.set("level", label);
        mode.set("wall_ns", ns);
        mode.set("experiments_per_sec", eps);
        mode.set("overhead_pct", overhead_pct);
        arr.push(mode);
    }
    root.set("modes", Json::Arr(arr));
    root.set("counters_overhead_target_pct", 2.0);
    out.write("BENCH_telemetry.json", &root.render());
}
