//! Regenerates every table and figure of the paper in one run, followed by
//! the aggregated RQ1–RQ5 summary.
//!
//! Every campaign any figure or table needs is requested on one
//! [`harness::CampaignGrid`] — shared cells (the single-bit baselines, the
//! max-MBF = 30 activation row) deduplicate — and executed as **one**
//! whole-grid sweep on a global work-stealing worker pool; the renderers
//! then extract their slices from the streamed results.  Artifacts are
//! byte-identical to the pre-sweep per-campaign walk.
//!
//! Pass `--show-grid` to print Table I (the parameter grid) and exit.

use mbfi_bench::{harness, Artefact};
use mbfi_core::{ParameterGrid, Technique};

fn main() {
    if std::env::args().any(|a| a == "--show-grid") {
        println!("{}", ParameterGrid::table1());
        println!(
            "campaigns per workload: {}",
            ParameterGrid::all_campaigns().len()
        );
        return;
    }

    let cfg = harness::HarnessConfig::from_env();
    eprintln!(
        "run_all: {} workloads, {}, {} input, grid = {}, replay = {}",
        cfg.workloads().len(),
        cfg.sampling_label(),
        cfg.size,
        if cfg.full_grid { "full" } else { "coarse" },
        if cfg.replay { "on" } else { "off" }
    );
    let mut artefact = Artefact::from_args("run_all");
    let mut grid = harness::CampaignGrid::new(&cfg);
    grid.request_artifact_grid();
    match &cfg.precision {
        Some(_) => eprintln!(
            "run_all: sweeping {} campaign cells (adaptive budgets) on one executor",
            grid.cell_count()
        ),
        None => eprintln!(
            "run_all: sweeping {} campaign cells ({} experiments) on one executor",
            grid.cell_count(),
            grid.cell_count() * cfg.experiments
        ),
    }
    let run = grid.run();
    if let Some((met, capped, worst)) = run.adaptive_summary() {
        eprintln!(
            "run_all: adaptive sampling ran {} experiments over {} cells \
             ({met} met the target, {capped} capped at max; worst realized half-width \
             {worst:.2} pts)",
            run.total_experiments(),
            run.cell_count(),
        );
    }

    // Table II.
    artefact.emit(harness::table2(&cfg, &run.data).render());

    // Fig. 1.
    let singles = harness::single_bit_results(&run);
    for (_, table) in harness::fig1(&singles) {
        artefact.emit(table.render());
    }

    // Fig. 2.
    for technique in Technique::ALL {
        let results = harness::same_register_results(&cfg, &run, technique);
        artefact.emit(harness::fig2(technique, &results).render());
    }

    // Fig. 3.
    let read_activation_campaigns =
        harness::activation_results(&cfg, &run, Technique::InjectOnRead);
    let (t, read_activation) = harness::fig3(Technique::InjectOnRead, &read_activation_campaigns);
    artefact.emit(t.render());
    let write_activation_campaigns =
        harness::activation_results(&cfg, &run, Technique::InjectOnWrite);
    let (t, write_activation) =
        harness::fig3(Technique::InjectOnWrite, &write_activation_campaigns);
    artefact.emit(t.render());

    // Fig. 4 / Fig. 5 and the tables derived from them.
    let read = harness::multi_register_results(&cfg, &run, Technique::InjectOnRead);
    let write = harness::multi_register_results(&cfg, &run, Technique::InjectOnWrite);
    for fig in harness::fig45(Technique::InjectOnRead, &read) {
        artefact.emit(fig.render());
    }
    for fig in harness::fig45(Technique::InjectOnWrite, &write) {
        artefact.emit(fig.render());
    }
    artefact.emit(harness::table3(&read, &write).render());
    let (t4, locations) = harness::table4(&cfg, &run.data, &read, &write);
    artefact.emit(t4.render());

    // RQ summary.
    artefact.emit(harness::summary(
        &read_activation,
        &write_activation,
        &read,
        &write,
        &locations,
    ));
    artefact.finish();
}
