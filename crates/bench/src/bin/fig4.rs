//! Regenerates Fig. 4: SDC percentages for multi-register injections
//! (win-size > 0) with the inject-on-read technique.

use mbfi_bench::{harness, Artefact};
use mbfi_core::Technique;

fn main() {
    let cfg = harness::HarnessConfig::from_env();
    eprintln!(
        "fig4: {} workloads, {}, grid = {}",
        cfg.workloads().len(),
        cfg.sampling_label(),
        if cfg.full_grid { "full" } else { "coarse" }
    );
    let mut artefact = Artefact::from_args("fig4");
    let mut grid = harness::CampaignGrid::new(&cfg);
    grid.request_multi_register(Technique::InjectOnRead);
    let run = grid.run();
    let sweeps = harness::multi_register_results(&cfg, &run, Technique::InjectOnRead);
    for fig in harness::fig45(Technique::InjectOnRead, &sweeps) {
        artefact.emit(fig.render());
    }
    artefact.finish();
}
