//! Regenerates Table II: candidate fault-injection instruction counts per
//! workload for the inject-on-read and inject-on-write techniques.

use mbfi_bench::{harness, Artefact};

fn main() {
    let cfg = harness::HarnessConfig::from_env();
    let mut artefact = Artefact::from_args("table2");
    let data = harness::prepare(&cfg);
    let table = harness::table2(&cfg, &data);
    artefact.emit(table.render());
    artefact.emit(
        "(experiments/campaign knob does not apply here; counts come from one golden run per workload)",
    );
    artefact.finish();
}
