//! Regenerates Table II: candidate fault-injection instruction counts per
//! workload for the inject-on-read and inject-on-write techniques.

use mbfi_bench::harness;

fn main() {
    let cfg = harness::HarnessConfig::from_env();
    let data = harness::prepare(&cfg);
    let table = harness::table2(&cfg, &data);
    println!("{}", table.render());
    println!(
        "(experiments/campaign knob does not apply here; counts come from one golden run per workload)"
    );
}
