//! Measures the campaign service against in-process sweeps and writes
//! `BENCH_serve.json`.
//!
//! Three scenarios, all over a one-cell-per-workload grid:
//!
//! * **serial** — N grids executed back to back in-process through
//!   `Sweep::run` (the pre-daemon workflow: one tenant at a time, artifacts
//!   already warm).
//! * **concurrent** — the same N grids submitted by N concurrent TCP
//!   clients of one `mbfi-serve` daemon; disjoint seeds, so every cell
//!   really executes.  This is the multi-tenant scheduling path: shared
//!   engine pool, per-client quotas, streamed results.
//! * **dedup** — N concurrent clients submitting the *identical* grid; the
//!   cross-request cell cache collapses them onto one execution and N-1
//!   clients replay bytes.
//!
//! Flags and knobs:
//!
//! * `--check` — self-verifying mode: at engine thread counts {1, 4, 8},
//!   two concurrent clients submit overlapping halves of the grid; exits
//!   non-zero unless (a) every served report is byte-identical to
//!   `Sweep::run` of the same cells, (b) the overlap is deduplicated onto
//!   exactly one execution, and (c) equal-priority clients with same-size
//!   disjoint grids finish within a bounded latency spread (the fairness
//!   quota at work).
//! * `--out-dir <path>` — where `BENCH_serve.json` goes (default: CWD).
//! * `MBFI_SERVE_CLIENTS` — concurrent clients N (default 4).
//! * `MBFI_WORKLOADS` / `MBFI_EXPERIMENTS` / `MBFI_THREADS` — the usual
//!   harness knobs (experiments default 8 under `--check`, 24 for timing).
//! * `MBFI_BENCH_SAMPLES` — timing samples per scenario (default 1).

use mbfi_bench::artifacts::OutDir;
use mbfi_bench::harness::HarnessConfig;
use mbfi_bench::timing::{env_usize, median_wall_ns};
use mbfi_core::report::Json;
use mbfi_core::{
    EngineUnit, FaultModel, GoldenRun, Sweep, SweepCampaign, SweepConfig, SweepReport, SweepUnit,
    Technique,
};
use mbfi_ir::CompiledModule;
use mbfi_serve::{CellRequest, GridRequest, ServerConfig, ServerHandle};
use mbfi_workloads::InputSize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One cell per active workload, all at `seed`.
fn grid(cfg: &HarnessConfig, seed: u64) -> Vec<CellRequest> {
    cfg.workloads()
        .iter()
        .map(|w| CellRequest {
            workload: w.name().to_string(),
            size: InputSize::Tiny,
            technique: Technique::InjectOnRead,
            model: FaultModel::single_bit(),
            experiments: cfg.experiments,
            seed,
            hang_factor: cfg.hang_factor,
            precision: None,
        })
        .collect()
}

/// Pre-built in-process artifacts, keyed like the daemon's artifact cache.
struct Units {
    keys: Vec<(String, InputSize)>,
    units: Vec<EngineUnit>,
}

impl Units {
    fn build(cells: &[CellRequest]) -> Units {
        let mut keys: Vec<(String, InputSize)> = Vec::new();
        let mut units = Vec::new();
        for cell in cells {
            let key = (cell.workload.to_ascii_lowercase(), cell.size);
            if !keys.contains(&key) {
                let w = mbfi_workloads::workload_by_name(&cell.workload).expect("workload");
                let code = CompiledModule::lower(&w.build_module(cell.size));
                let golden = GoldenRun::capture_compiled(&code).expect("golden run");
                units.push(EngineUnit::new(code, golden));
                keys.push(key);
            }
        }
        Units { keys, units }
    }

    fn run(&self, cells: &[CellRequest], threads: usize) -> SweepReport {
        let campaigns: Vec<SweepCampaign> = cells
            .iter()
            .map(|cell| SweepCampaign {
                unit: self
                    .keys
                    .iter()
                    .position(|k| *k == (cell.workload.to_ascii_lowercase(), cell.size))
                    .expect("unit prepared"),
                spec: cell.spec(),
            })
            .collect();
        let views: Vec<SweepUnit<'_>> = self.units.iter().map(|u| u.view()).collect();
        Sweep::run(
            &views,
            &campaigns,
            &SweepConfig {
                threads,
                batch_size: 0,
                keep_records: false,
                precision: None,
            },
        )
    }
}

fn spawn_server(threads: usize) -> ServerHandle {
    mbfi_serve::spawn(ServerConfig {
        port: 0,
        threads,
        quota: 0,
        max_pending: 0,
        read_timeout_ms: 10_000,
    })
    .expect("bind an ephemeral port")
}

/// Submit `cells` from its own thread; returns (outcome, client wall time).
fn client(
    addr: std::net::SocketAddr,
    cells: Vec<CellRequest>,
) -> std::thread::JoinHandle<(mbfi_serve::ServeOutcome, u64)> {
    std::thread::spawn(move || {
        let start = Instant::now();
        let outcome = mbfi_serve::submit(
            addr,
            &GridRequest {
                threads: 0,
                priority: 0,
                cells,
            },
        )
        .expect("submission succeeds");
        (outcome, start.elapsed().as_nanos() as u64)
    })
}

fn check(cfg: &HarnessConfig) -> ! {
    let cells = grid(cfg, cfg.seed);
    let units = Units::build(&cells);
    let overlap = (cells.len() / 3).max(1);
    let split = cells.len().saturating_sub(2 * overlap);
    let a_cells: Vec<CellRequest> = cells[..split + overlap].to_vec();
    let b_cells: Vec<CellRequest> = cells[split..].to_vec();
    let mut failures = 0usize;

    for threads in [1usize, 4, 8] {
        let server = spawn_server(threads);
        let addr = server.addr();
        let a = client(addr, a_cells.clone());
        let b = client(addr, b_cells.clone());
        let (a_out, _) = a.join().expect("client A");
        let (b_out, _) = b.join().expect("client B");

        let deduped = a_out.deduped + b_out.deduped;
        if deduped != overlap as u64 {
            eprintln!(
                "FAIL threads={threads}: {deduped} cells deduplicated, expected {overlap} \
                 (each shared cell must execute exactly once)"
            );
            failures += 1;
        }
        for (name, out, expect) in [
            ("A", &a_out, units.run(&a_cells, threads)),
            ("B", &b_out, units.run(&b_cells, threads)),
        ] {
            if out.report.to_json().render() != expect.to_json().render() {
                eprintln!(
                    "FAIL threads={threads}: client {name}'s served report is not \
                     byte-identical to the in-process sweep"
                );
                failures += 1;
            }
        }
        println!(
            "threads={threads}: 2 overlapping clients, {} cells, {deduped} deduped, \
             reports byte-identical",
            cells.len()
        );

        // Fairness: equal-priority clients with same-size disjoint grids
        // must finish within a bounded spread — the per-client quota keeps
        // one tenant from starving another.  The bound is deliberately
        // loose (5x + 100 ms) so scheduler noise on tiny grids cannot flake
        // CI, while genuine starvation (serial service of one client after
        // the other under a shared pool) would still trip it.
        let fair: Vec<_> = (0..3)
            .map(|i| client(addr, grid(cfg, cfg.seed ^ (0x0F00 + i))))
            .collect();
        let walls: Vec<u64> = fair
            .into_iter()
            .map(|h| h.join().expect("fairness client").1)
            .collect();
        let (min, max) = (
            *walls.iter().min().expect("walls"),
            *walls.iter().max().expect("walls"),
        );
        if max > min * 5 + 100_000_000 {
            eprintln!(
                "FAIL threads={threads}: fairness spread {:.2}x (min {:.1} ms, max {:.1} ms)",
                max as f64 / min.max(1) as f64,
                min as f64 / 1e6,
                max as f64 / 1e6
            );
            failures += 1;
        } else {
            println!(
                "threads={threads}: fairness spread {:.2}x across 3 equal clients",
                max as f64 / min.max(1) as f64
            );
        }

        server.stop();
        server.join();
    }

    if failures > 0 {
        eprintln!("serve_bench --check: {failures} failures");
        std::process::exit(1);
    }
    println!("serve_bench --check: served results byte-identical, dedupe exact, fairness bounded");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let out = OutDir::from_args();

    let mut cfg = HarnessConfig::from_env();
    if cfg.precision.take().is_some() {
        eprintln!("serve_bench: ignoring MBFI_PRECISION (this bench compares fixed-n paths)");
    }
    let experiments_given =
        std::env::var("MBFI_EXPERIMENTS").is_ok_and(|v| v.trim().parse::<usize>().is_ok());
    if !experiments_given {
        cfg.experiments = if check_mode { 8 } else { 24 };
    }
    let clients = env_usize("MBFI_SERVE_CLIENTS", 4).max(1);
    let samples = env_usize("MBFI_BENCH_SAMPLES", 1);
    eprintln!(
        "serve_bench: {} workloads, {} experiments/cell, {clients} clients, {} mode",
        cfg.workloads().len(),
        cfg.experiments,
        if check_mode { "check" } else { "timing" }
    );

    if check_mode {
        check(&cfg);
    }

    let base_cells = grid(&cfg, cfg.seed);
    let units = Units::build(&base_cells);
    let cells_per_client = base_cells.len();
    let experiments_per_grid = (cells_per_client * cfg.experiments) as u64;

    // Fresh seeds per closure invocation, so neither side ever re-runs (or
    // cache-hits) a cell it already executed.
    let round = AtomicU64::new(0);

    // Serial baseline: N grids, one after the other, in-process, warm
    // artifacts.
    let serial_ns = median_wall_ns(samples, || {
        let r = round.fetch_add(1, Ordering::SeqCst);
        for c in 0..clients as u64 {
            let cells = grid(&cfg, cfg.seed ^ (r << 16) ^ c);
            std::hint::black_box(units.run(&cells, cfg.threads));
        }
    });

    // The daemon lives across all samples — exactly how it is deployed.
    let server = spawn_server(cfg.threads);
    let addr = server.addr();

    // Concurrent: the same N grids submitted at once by N TCP clients.
    let concurrent_ns = median_wall_ns(samples, || {
        let r = round.fetch_add(1, Ordering::SeqCst);
        let handles: Vec<_> = (0..clients as u64)
            .map(|c| client(addr, grid(&cfg, cfg.seed ^ (r << 16) ^ c ^ 0x5E17)))
            .collect();
        for h in handles {
            let (outcome, _) = h.join().expect("client");
            assert_eq!(outcome.deduped, 0, "disjoint seeds must not dedupe");
        }
    });

    // Dedup: N clients, one identical grid — one execution, N deliveries.
    let mut deduped_cells = 0u64;
    let dedup_ns = median_wall_ns(samples, || {
        let r = round.fetch_add(1, Ordering::SeqCst);
        let cells = grid(&cfg, cfg.seed ^ (r << 16) ^ 0xDED0);
        let handles: Vec<_> = (0..clients).map(|_| client(addr, cells.clone())).collect();
        deduped_cells = handles
            .into_iter()
            .map(|h| h.join().expect("client").0.deduped)
            .sum();
    });

    server.stop();
    server.join();

    let total_experiments = experiments_per_grid * clients as u64;
    let serial_eps = total_experiments as f64 * 1e9 / serial_ns.max(1) as f64;
    let concurrent_eps = total_experiments as f64 * 1e9 / concurrent_ns.max(1) as f64;
    let speedup = serial_ns as f64 / concurrent_ns.max(1) as f64;
    let dedup_speedup = serial_ns as f64 / dedup_ns.max(1) as f64;
    println!(
        "serial:     {clients} grids x {cells_per_client} cells in-process, {:.2} s, {serial_eps:.0} exp/s",
        serial_ns as f64 / 1e9
    );
    println!(
        "concurrent: {clients} clients over TCP,            {:.2} s, {concurrent_eps:.0} exp/s ({speedup:.2}x)",
        concurrent_ns as f64 / 1e9
    );
    println!(
        "dedup:      {clients} identical clients,           {:.2} s ({dedup_speedup:.2}x, {} cells deduped/sample)",
        dedup_ns as f64 / 1e9,
        deduped_cells
    );

    let mut root = Json::object();
    root.set("suite", "serve");
    root.set(
        "workloads",
        cfg.workloads()
            .iter()
            .map(|w| w.name().to_string())
            .collect::<Vec<_>>(),
    );
    root.set("clients", clients);
    root.set("cells_per_client", cells_per_client);
    root.set("experiments_per_cell", cfg.experiments);
    root.set("engine_threads", cfg.threads);
    root.set("samples", samples);
    let mut serial = Json::object();
    serial.set("wall_ns", serial_ns);
    serial.set("experiments", total_experiments);
    serial.set("experiments_per_sec", serial_eps);
    root.set("serial", serial);
    let mut concurrent = Json::object();
    concurrent.set("wall_ns", concurrent_ns);
    concurrent.set("experiments", total_experiments);
    concurrent.set("experiments_per_sec", concurrent_eps);
    concurrent.set("speedup_vs_serial", speedup);
    root.set("concurrent", concurrent);
    let mut dedup = Json::object();
    dedup.set("wall_ns", dedup_ns);
    dedup.set("executed_experiments", experiments_per_grid);
    dedup.set("delivered_experiments", total_experiments);
    dedup.set("deduped_cells_per_sample", deduped_cells);
    dedup.set("speedup_vs_serial", dedup_speedup);
    root.set("dedup", dedup);
    out.write("BENCH_serve.json", &root.render());
}
