//! Regenerates Fig. 5: SDC percentages for multi-register injections
//! (win-size > 0) with the inject-on-write technique.

use mbfi_bench::{harness, Artefact};
use mbfi_core::Technique;

fn main() {
    let cfg = harness::HarnessConfig::from_env();
    eprintln!(
        "fig5: {} workloads, {}, grid = {}",
        cfg.workloads().len(),
        cfg.sampling_label(),
        if cfg.full_grid { "full" } else { "coarse" }
    );
    let mut artefact = Artefact::from_args("fig5");
    let mut grid = harness::CampaignGrid::new(&cfg);
    grid.request_multi_register(Technique::InjectOnWrite);
    let run = grid.run();
    let sweeps = harness::multi_register_results(&cfg, &run, Technique::InjectOnWrite);
    for fig in harness::fig45(Technique::InjectOnWrite, &sweeps) {
        artefact.emit(fig.render());
    }
    artefact.finish();
}
