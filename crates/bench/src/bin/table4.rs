//! Regenerates Table IV (and the Fig. 6 transition analysis): likelihoods of
//! Transition I (Detection → SDC) and Transition II (Benign → SDC) when the
//! first flip of a multi-bit experiment reuses a single-bit location.

use mbfi_bench::{harness, Artefact};
use mbfi_core::Technique;

fn main() {
    let cfg = harness::HarnessConfig::from_env();
    eprintln!(
        "table4: {} workloads, {} (grid), {} location pairs per workload/technique",
        cfg.workloads().len(),
        cfg.sampling_label(),
        cfg.experiments
    );
    let mut artefact = Artefact::from_args("table4");
    let mut grid = harness::CampaignGrid::new(&cfg);
    for technique in Technique::ALL {
        grid.request_multi_register(technique);
    }
    let run = grid.run();
    let read = harness::multi_register_results(&cfg, &run, Technique::InjectOnRead);
    let write = harness::multi_register_results(&cfg, &run, Technique::InjectOnWrite);
    let (table, _) = harness::table4(&cfg, &run.data, &read, &write);
    artefact.emit(table.render());
    artefact.finish();
}
