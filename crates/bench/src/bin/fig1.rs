//! Regenerates Fig. 1: outcome classification of single bit-flip campaigns
//! per workload, for both injection techniques.

use mbfi_bench::{harness, Artefact};

fn main() {
    let cfg = harness::HarnessConfig::from_env();
    eprintln!(
        "fig1: {} workloads, {}, {} input",
        cfg.workloads().len(),
        cfg.sampling_label(),
        cfg.size
    );
    let mut artefact = Artefact::from_args("fig1");
    let mut grid = harness::CampaignGrid::new(&cfg);
    grid.request_single_bit();
    let run = grid.run();
    let results = harness::single_bit_results(&run);
    for (_, table) in harness::fig1(&results) {
        artefact.emit(table.render());
    }
    artefact.finish();
}
