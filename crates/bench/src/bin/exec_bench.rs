//! Measures the compiled execution pipeline against the legacy tree walker
//! and writes `BENCH_exec.json`.
//!
//! Two measurements per workload:
//!
//! * **golden-run throughput** — a fault-free run with a no-op hook, in
//!   MIPS (million dynamic instructions per second): the compiled path's
//!   monomorphized hooks and single PC-indexed fetch versus the walker's
//!   nested-`Vec` fetch and `dyn` dispatch.  This bounds how fast any
//!   campaign can go, and the acceptance bar for the refactor is a >= 2x
//!   speedup here.
//! * **campaign throughput** — a serial batch of seeded single bit-flip
//!   experiments (injector hook armed, outcome classification included), in
//!   experiments per second.
//!
//! Both paths also have their results cross-checked while the timing runs
//! (same golden output and instruction count, identical experiment
//! outcomes), so a pipeline divergence fails the bench rather than skewing
//! it.
//!
//! Flags and knobs:
//!
//! * `--out-dir <path>` — where `BENCH_exec.json` goes (default: CWD).
//! * `MBFI_EXPERIMENTS` — experiments per campaign batch (default 32).
//! * `MBFI_BENCH_SAMPLES` — timing samples per measurement (default 5).
//! * `MBFI_WORKLOADS` — comma-separated workload filter (default
//!   `qsort,sha,dijkstra`).

use mbfi_bench::artifacts::OutDir;
use mbfi_bench::timing::{env_usize, median_wall_ns};
use mbfi_core::report::Json;
use mbfi_core::{Experiment, ExperimentSpec, FaultModel, GoldenRun, Technique};
use mbfi_ir::CompiledModule;
use mbfi_vm::{Limits, NoopHook, Vm, WalkerVm};
use mbfi_workloads::{workload_by_name, InputSize};

fn env_names(key: &str, default: &[&str]) -> Vec<String> {
    match std::env::var(key) {
        Ok(v) if !v.trim().is_empty() => v
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
        _ => default.iter().map(|s| s.to_string()).collect(),
    }
}

fn mips(instrs: u64, ns: u64) -> f64 {
    instrs as f64 * 1e3 / ns.max(1) as f64
}

fn main() {
    let out = OutDir::from_args();
    let experiments = env_usize("MBFI_EXPERIMENTS", 32);
    let samples = env_usize("MBFI_BENCH_SAMPLES", 5);
    let names = env_names("MBFI_WORKLOADS", &["qsort", "sha", "dijkstra"]);
    eprintln!(
        "exec_bench: {} workloads, {experiments} experiments/batch, {samples} samples",
        names.len()
    );

    let mut workload_json = Vec::new();
    let mut golden_speedups = Vec::new();
    let mut campaign_speedups = Vec::new();

    for name in &names {
        let w = workload_by_name(name)
            .unwrap_or_else(|| panic!("unknown workload '{name}' (see MBFI_WORKLOADS)"));
        let module = w.build_module(InputSize::Tiny);
        let code = CompiledModule::lower(&module);
        let golden = GoldenRun::capture_compiled(&code)
            .unwrap_or_else(|e| panic!("golden run of {name} failed: {e}"));

        // Cross-check once before timing: the two paths must agree exactly.
        let walked = WalkerVm::run_golden(&module, Limits::default());
        let compiled = Vm::run_golden_compiled(&code, Limits::default());
        assert_eq!(
            walked, compiled,
            "{name}: legacy walker and compiled pipeline disagree on the golden run"
        );

        let golden_legacy_ns = median_wall_ns(samples, || {
            let mut hook = NoopHook;
            WalkerVm::new(&module, Limits::default()).run(&mut hook)
        });
        let golden_compiled_ns = median_wall_ns(samples, || {
            let mut hook = NoopHook;
            Vm::new(&code, Limits::default()).run(&mut hook)
        });
        let golden_speedup = golden_legacy_ns as f64 / golden_compiled_ns.max(1) as f64;
        golden_speedups.push(golden_speedup);

        // A seeded single bit-flip batch, run serially on both paths.
        let specs: Vec<ExperimentSpec> = (0..experiments as u64)
            .map(|i| {
                ExperimentSpec::sample(
                    Technique::InjectOnRead,
                    FaultModel::single_bit(),
                    &golden,
                    0xE8EC ^ golden.dynamic_instrs,
                    i,
                    4,
                )
            })
            .collect();
        for s in &specs {
            assert_eq!(
                Experiment::run_legacy(&module, &golden, s),
                Experiment::run_compiled(&code, &golden, s, None),
                "{name}: experiment diverged between walker and compiled paths"
            );
        }
        let campaign_legacy_ns = median_wall_ns(samples, || {
            specs
                .iter()
                .map(|s| Experiment::run_legacy(&module, &golden, s).dynamic_instrs)
                .sum::<u64>()
        });
        let campaign_compiled_ns = median_wall_ns(samples, || {
            specs
                .iter()
                .map(|s| Experiment::run_compiled(&code, &golden, s, None).dynamic_instrs)
                .sum::<u64>()
        });
        let campaign_speedup = campaign_legacy_ns as f64 / campaign_compiled_ns.max(1) as f64;
        campaign_speedups.push(campaign_speedup);

        let legacy_mips = mips(golden.dynamic_instrs, golden_legacy_ns);
        let compiled_mips = mips(golden.dynamic_instrs, golden_compiled_ns);
        let exp_per_sec_legacy = experiments as f64 * 1e9 / campaign_legacy_ns.max(1) as f64;
        let exp_per_sec_compiled = experiments as f64 * 1e9 / campaign_compiled_ns.max(1) as f64;
        println!(
            "{name:<14} golden {legacy_mips:>7.1} -> {compiled_mips:>7.1} MIPS ({golden_speedup:.2}x)  \
             campaign {exp_per_sec_legacy:>8.1} -> {exp_per_sec_compiled:>8.1} exp/s ({campaign_speedup:.2}x)"
        );

        let mut obj = Json::object();
        obj.set("name", name.clone());
        obj.set("golden_dynamic_instrs", golden.dynamic_instrs);
        obj.set("golden_legacy_ns", golden_legacy_ns);
        obj.set("golden_compiled_ns", golden_compiled_ns);
        obj.set("golden_legacy_mips", legacy_mips);
        obj.set("golden_compiled_mips", compiled_mips);
        obj.set("golden_speedup", golden_speedup);
        obj.set("campaign_experiments", experiments);
        obj.set("campaign_legacy_ns", campaign_legacy_ns);
        obj.set("campaign_compiled_ns", campaign_compiled_ns);
        obj.set("campaign_legacy_exp_per_sec", exp_per_sec_legacy);
        obj.set("campaign_compiled_exp_per_sec", exp_per_sec_compiled);
        obj.set("campaign_speedup", campaign_speedup);
        workload_json.push(obj);
    }

    let geomean = |xs: &[f64]| -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
    };
    let golden_geomean = geomean(&golden_speedups);
    let campaign_geomean = geomean(&campaign_speedups);
    println!(
        "geomean: golden {golden_geomean:.2}x, campaign {campaign_geomean:.2}x \
         (compiled pipeline over legacy walker)"
    );

    let mut root = Json::object();
    root.set("suite", "exec");
    root.set("experiments", experiments);
    root.set("samples", samples);
    root.set("workloads", Json::Arr(workload_json));
    root.set("golden_speedup_geomean", golden_geomean);
    root.set(
        "golden_speedup_min",
        golden_speedups
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min),
    );
    root.set("campaign_speedup_geomean", campaign_geomean);
    out.write("BENCH_exec.json", &root.render());
}
