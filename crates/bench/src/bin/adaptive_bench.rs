//! Measures adaptive precision-targeted sampling against fixed-n campaigns
//! at equal realized precision and writes `BENCH_adaptive.json`.
//!
//! **Fixed-n baseline** — every cell of the coarse artifact grid runs the
//! same experiment count: the smallest n that *guarantees* the precision
//! target for any outcome proportion (`Precision::worst_case_fixed_n`, the
//! worst case `p = 0.5`).  That is what a non-adaptive campaign must
//! provision, because it cannot know in advance which cells are easy.
//!
//! **Adaptive** — the same grid with [`SweepConfig::precision`] set: each
//! cell stops at the first deterministic round where both the SDC and the
//! Detection 95 % interval half-widths meet the target, capped at the same
//! worst-case n.  Both sides therefore meet the same precision target on
//! every cell — "equal realized precision" — but the adaptive side spends
//! experiments proportional to each cell's actual variance.
//!
//! The JSON reports total experiments, wall-clock and experiments/sec for
//! both sides, the experiments-saved and wall-clock ratios, and the worst
//! realized half-width of each side.
//!
//! Flags and knobs:
//!
//! * `--check` — self-verifying mode: skip timing and instead (a) run the
//!   adaptive grid at sweep thread counts {1, 4, 8} and compare every cell
//!   byte-for-byte, and (b) verify every stopped cell's realized half-width
//!   meets the target or the cell spent its whole `max_experiments` budget;
//!   exits non-zero on any violation.
//! * `--out-dir <path>` — where `BENCH_adaptive.json` goes (default: CWD).
//! * `MBFI_PRECISION` — the precision spec (default here: `2.5` points,
//!   Wilson, min 60; `--check` default `6` so the sub-grid stays fast).
//! * `MBFI_WORKLOADS` — workload filter (default: `qsort,sad,stringsearch`;
//!   `--check` defaults to `qsort,histo`).
//! * `MBFI_BENCH_SAMPLES` — timing samples per side (default 1; one untimed
//!   warm-up pass runs first and the median sample is reported).
//! * plus the harness knobs (`MBFI_THREADS`, `MBFI_REPLAY`, ...).

use mbfi_bench::artifacts::OutDir;
use mbfi_bench::harness::{CampaignGrid, GridRun, HarnessConfig};
use mbfi_bench::timing::{env_usize, median_wall_ns};
use mbfi_core::report::Json;
use mbfi_core::Precision;

/// Run the coarse artifact grid under `cfg` and return it.
fn run_grid(cfg: &HarnessConfig) -> GridRun {
    let mut grid = CampaignGrid::new(cfg);
    grid.request_artifact_grid();
    grid.run()
}

/// Verify every adaptive cell: the realized half-width meets the target, or
/// the cell exhausted its budget.  Returns the number of violations.
fn check_targets(run: &GridRun, precision: &Precision) -> usize {
    let p = precision.normalized();
    let mut violations = 0usize;
    for r in run.results() {
        let Some(status) = &r.adaptive else {
            eprintln!("VIOLATION: adaptive grid produced a cell without adaptive status");
            violations += 1;
            continue;
        };
        let n = r.total();
        let hw = status.realized_half_width_pct();
        let ok = (status.reached_target && hw <= p.target_half_width_pct)
            || n == p.max_experiments as u64;
        if !ok {
            eprintln!(
                "VIOLATION: {} {} cell stopped at n={n} with half-width {hw:.3} pts \
                 (target {} pts, max {})",
                r.spec.technique,
                r.spec.model.label(),
                p.target_half_width_pct,
                p.max_experiments
            );
            violations += 1;
        }
    }
    violations
}

fn check(cfg: &HarnessConfig, precision: &Precision) -> ! {
    let mut violations = 0usize;
    let reference = {
        let reference_cfg = HarnessConfig {
            threads: 1,
            ..cfg.clone()
        };
        run_grid(&reference_cfg)
    };
    violations += check_targets(&reference, precision);
    println!(
        "threads=1: {} cells, {} experiments, every stopped cell within the target \
         (or capped)",
        reference.cell_count(),
        reference.total_experiments()
    );
    for threads in [4usize, 8] {
        let other_cfg = HarnessConfig {
            threads,
            ..cfg.clone()
        };
        let other = run_grid(&other_cfg);
        let mut diverged = 0usize;
        for (a, b) in reference.results().iter().zip(other.results()) {
            // `spec.threads` records the knob; every payload must match.
            if a.counts != b.counts
                || a.spec.experiments != b.spec.experiments
                || a.activation_histogram != b.activation_histogram
                || a.crash_activation_histogram != b.crash_activation_histogram
                || a.adaptive != b.adaptive
                || a.warnings != b.warnings
            {
                eprintln!(
                    "DIVERGENCE at threads={threads}: {} {} (n {} vs {})",
                    a.spec.technique,
                    a.spec.model.label(),
                    a.total(),
                    b.total()
                );
                diverged += 1;
            }
        }
        violations += diverged;
        println!(
            "threads={threads}: {} cells compared byte-for-byte against threads=1",
            other.cell_count()
        );
    }
    if violations > 0 {
        eprintln!("adaptive_bench --check: {violations} violations");
        std::process::exit(1);
    }
    println!(
        "adaptive_bench --check: thread-count-invariant and every reported interval \
         meets the target"
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let out = OutDir::from_args();

    let mut cfg = HarnessConfig::from_env();
    if cfg.workload_filter.is_none() {
        cfg.workload_filter = Some(if check_mode {
            vec!["qsort".into(), "histo".into()]
        } else {
            vec!["qsort".into(), "sad".into(), "stringsearch".into()]
        });
    }
    // This binary's own precision default; MBFI_PRECISION overrides it.
    let precision = cfg.precision.unwrap_or(Precision {
        target_half_width_pct: if check_mode { 6.0 } else { 2.5 },
        min_experiments: 60,
        ..Precision::default()
    });
    // Equal realized precision by construction: the fixed side provisions
    // the worst-case n for the target, and the adaptive side is capped at
    // exactly that budget (a cell that never meets the target runs the same
    // experiments as the fixed side).  The floor must not exceed the cap —
    // for a loose target the worst-case n can fall below the configured
    // minimum, and normalization would otherwise raise the cap back above
    // the fixed side's budget.
    let fixed_n = precision.worst_case_fixed_n();
    let precision = Precision {
        max_experiments: fixed_n,
        min_experiments: precision.min_experiments.min(fixed_n),
        ..precision
    };
    cfg.precision = Some(precision);
    let samples = env_usize("MBFI_BENCH_SAMPLES", 1);
    eprintln!(
        "adaptive_bench: {} workloads, target ±{} pts ({}), min {} / max {} exps per cell, \
         {} mode",
        cfg.workloads().len(),
        precision.target_half_width_pct,
        precision.interval,
        precision.min_experiments,
        precision.max_experiments,
        if check_mode { "check" } else { "timing" }
    );

    if check_mode {
        check(&cfg, &precision);
    }

    let fixed_cfg = HarnessConfig {
        precision: None,
        experiments: fixed_n,
        ..cfg.clone()
    };

    // Fixed-n side: every cell at the worst-case n.
    let mut fixed_experiments = 0u64;
    let mut fixed_worst_hw = 0f64;
    let mut cells = 0usize;
    let fixed_ns = median_wall_ns(samples, || {
        let run = run_grid(&fixed_cfg);
        cells = run.cell_count();
        fixed_experiments = run.total_experiments();
        fixed_worst_hw = run
            .results()
            .iter()
            .map(|r| {
                r.sdc_proportion_by(precision.interval)
                    .half_width_pct()
                    .max(
                        r.detection_proportion_by(precision.interval)
                            .half_width_pct(),
                    )
            })
            .fold(0.0, f64::max);
    });

    // Adaptive side: same grid, same cap, early stopping.
    let mut adaptive_experiments = 0u64;
    let mut adaptive_summary = None;
    let adaptive_ns = median_wall_ns(samples, || {
        let run = run_grid(&cfg);
        adaptive_experiments = run.total_experiments();
        adaptive_summary = run.adaptive_summary();
    });
    let (met, capped, adaptive_worst_hw) = adaptive_summary.expect("adaptive grid ran");

    let experiments_saved = fixed_experiments as f64 / adaptive_experiments.max(1) as f64;
    let wall_speedup = fixed_ns as f64 / adaptive_ns.max(1) as f64;
    let fixed_eps = fixed_experiments as f64 * 1e9 / fixed_ns.max(1) as f64;
    let adaptive_eps = adaptive_experiments as f64 * 1e9 / adaptive_ns.max(1) as f64;
    println!(
        "fixed-n:  {cells} cells x {fixed_n} experiments = {fixed_experiments}, {:.2} s, \
         {fixed_eps:.0} exp/s, worst half-width {fixed_worst_hw:.2} pts",
        fixed_ns as f64 / 1e9
    );
    println!(
        "adaptive: {cells} cells, {adaptive_experiments} experiments ({met} met the target, \
         {capped} capped), {:.2} s, {adaptive_eps:.0} exp/s, worst half-width \
         {adaptive_worst_hw:.2} pts",
        adaptive_ns as f64 / 1e9
    );
    println!(
        "experiments saved: {experiments_saved:.2}x fewer; wall-clock: {wall_speedup:.2}x \
         (equal realized precision: both sides meet ±{} pts per cell)",
        precision.target_half_width_pct
    );

    let mut root = Json::object();
    root.set("suite", "adaptive");
    root.set(
        "workloads",
        cfg.workloads()
            .iter()
            .map(|w| w.name().to_string())
            .collect::<Vec<_>>(),
    );
    root.set("cells", cells);
    root.set("samples", samples);
    let mut target = Json::object();
    target.set("half_width_pct", precision.target_half_width_pct);
    target.set("interval", precision.interval.label());
    target.set("min_experiments", precision.min_experiments);
    target.set("max_experiments", precision.max_experiments);
    root.set("target", target);
    let mut fixed = Json::object();
    fixed.set("experiments_per_cell", fixed_n);
    fixed.set("experiments", fixed_experiments);
    fixed.set("wall_ns", fixed_ns);
    fixed.set("experiments_per_sec", fixed_eps);
    fixed.set("worst_half_width_pct", fixed_worst_hw);
    root.set("fixed", fixed);
    let mut adaptive = Json::object();
    adaptive.set("experiments", adaptive_experiments);
    adaptive.set("wall_ns", adaptive_ns);
    adaptive.set("experiments_per_sec", adaptive_eps);
    adaptive.set("worst_half_width_pct", adaptive_worst_hw);
    adaptive.set("cells_met_target", met);
    adaptive.set("cells_capped", capped);
    root.set("adaptive", adaptive);
    root.set("experiments_saved", experiments_saved);
    root.set("wall_speedup", wall_speedup);
    out.write("BENCH_adaptive.json", &root.render());
}
