//! Measures copy-on-write snapshot forking against the deep-copy restore
//! baseline and writes `BENCH_snapshot.json`.
//!
//! Every replayed experiment starts by restoring a golden-run checkpoint.
//! Before the CoW memory, that restore cloned the whole snapshot image —
//! the per-experiment cost floor.  With CoW forking the restore re-points
//! chunk Arcs instead, so the floor drops to O(dirty chunks).  This bench
//! isolates that floor with two campaign shapes per workload, both run
//! against a **dense** checkpoint store (`interval = golden / MBFI_DENSE_DIV`,
//! the replay-heavy configuration):
//!
//! * **late** — a fig2-style same-register multi-bit campaign whose first
//!   injections are remapped into the last `1/MBFI_LATE_DENOM` of the
//!   candidate space.  The replayed tail is tiny, so the snapshot restore
//!   dominates, and exp/s is compared CoW vs deep-copy restores directly —
//!   this is the per-experiment cost floor in isolation.
//! * **uniform** — a stock single bit-flip campaign, injection points
//!   uniform over the golden run.  The executed tail dominates here, so the
//!   reported speedup is end-to-end: the CoW + replay pipeline against full
//!   re-execution from instruction 0 (the strict CoW-vs-deep-copy ratio is
//!   also recorded, as `uniform_cow_vs_full_clone`).
//!
//! Flags and knobs:
//!
//! * `--check` — self-verifying mode: skip timing and instead (a) cross-check
//!   the dirty-chunk accounting of the `Memory` CoW engine itself, and
//!   (b) run CoW and deep-copy campaigns over **all 15 workloads** at
//!   threads {1, 4, 8} asserting byte-identical results; exits non-zero on
//!   the first divergence.  This is the CoW contract as an executable.
//! * `--out-dir <path>` — where `BENCH_snapshot.json` goes (default: CWD).
//! * `MBFI_EXPERIMENTS` — experiments per campaign (default 48).
//! * `MBFI_BENCH_SAMPLES` — timing samples per campaign (default 5).
//! * `MBFI_WORKLOADS` — comma-separated workload filter for the timing mode
//!   (default `qsort,sha,stringsearch,susan_smoothing,sad`).
//! * `MBFI_DENSE_DIV` — checkpoint interval divisor (default 4096).
//! * `MBFI_LATE_DENOM` — late-injection tail fraction denominator (default
//!   4096: injections land in the last 1/4096 of the candidate space).

use mbfi_bench::artifacts::OutDir;
use mbfi_bench::timing::{env_usize, median_wall_ns};
use mbfi_core::replay::{CheckpointConfig, CheckpointStore};
use mbfi_core::report::Json;
use mbfi_core::{
    Campaign, CampaignResult, CampaignSpec, Experiment, ExperimentSpec, FaultModel, GoldenRun,
    Technique, WinSize,
};
use mbfi_ir::CompiledModule;
use mbfi_vm::{set_cow_enabled, ChunkSet, Memory, MemoryLayout, CHUNK_BYTES};
use mbfi_workloads::{all_workloads, workload_by_name, InputSize};

/// Late-injection cell target: the best replay-heavy cells must show at
/// least this exp/s ratio, CoW vs deep-copy restores.
const LATE_TARGET: f64 = 3.0;
/// Uniform-injection grid target: geomean end-to-end speedup (CoW + replay
/// vs full re-execution).
const UNIFORM_TARGET: f64 = 1.5;

fn env_names(key: &str, default: &[&str]) -> Vec<String> {
    match std::env::var(key) {
        Ok(v) if !v.trim().is_empty() => v
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
        _ => default.iter().map(|s| s.to_string()).collect(),
    }
}

/// Remap a uniformly drawn candidate ordinal into the last `1/denom` of the
/// candidate space (the generalisation of `last_quartile_target` this bench
/// uses to make the replayed tail arbitrarily small).
fn late_fraction_target(candidates: u64, drawn: u64, denom: u64) -> u64 {
    let candidates = candidates.max(1);
    let tail = (candidates / denom.max(1)).max(1);
    (candidates - tail) + drawn % tail
}

/// Pre-sampled experiment specs, optionally remapped into the late tail.
fn sample_specs(
    spec: &CampaignSpec,
    golden: &GoldenRun,
    late_denom: Option<u64>,
) -> Vec<ExperimentSpec> {
    let mut specs = ExperimentSpec::sample_campaign(spec, golden);
    if let Some(denom) = late_denom {
        for s in &mut specs {
            s.first_target =
                late_fraction_target(golden.candidates(spec.technique), s.first_target, denom);
        }
    }
    specs
}

fn run_serial(
    code: &CompiledModule,
    golden: &GoldenRun,
    specs: &[ExperimentSpec],
    store: &CheckpointStore,
) -> u64 {
    let mut acc = 0u64;
    for s in specs {
        let r = Experiment::run_compiled(code, golden, s, Some(store));
        acc = acc.wrapping_add(r.dynamic_instrs);
    }
    acc
}

/// Dirty-chunk accounting cross-checks on the `Memory` CoW engine itself:
/// restores re-point exactly the mutated chunks, the deep-copy mode reports
/// zero bytes saved, and unique-footprint accounting dedups shared chunks.
fn check_accounting() -> usize {
    let mut failures = 0usize;
    let mut check = |ok: bool, what: &str| {
        if ok {
            println!("accounting: {what}: OK");
        } else {
            eprintln!("accounting: {what}: FAILED");
            failures += 1;
        }
    };

    let globals = [mbfi_ir::Global::zeroed("arena", (16 * CHUNK_BYTES) as u64)];
    let mut mem = Memory::for_globals(&globals, MemoryLayout::default());
    let base = mem.global_addr(0).unwrap();
    for i in 0..16u64 {
        mem.store(mbfi_ir::Type::I64, base + i * CHUNK_BYTES as u64, i + 1)
            .unwrap();
    }
    let image = mem.snapshot_image();

    // Fork, dirty exactly 3 chunks, and restore: the CoW path must re-point
    // exactly those 3 (one copy-on-first-write each), nothing else.
    let mut vm_mem = image.fork_cow();
    vm_mem.reset_cow_stats();
    for i in [2u64, 7, 11] {
        vm_mem
            .store(mbfi_ir::Type::I64, base + i * CHUNK_BYTES as u64, 0xDEAD)
            .unwrap();
    }
    let dirtied = vm_mem.cow_stats();
    check(dirtied.cow_chunks_copied == 3, "3 writes CoW 3 chunks");
    vm_mem.restore_from_with(&image, true);
    let restored = vm_mem.cow_stats();
    check(
        restored.restore_chunks_repointed == 3,
        "restore re-points exactly the 3 dirty chunks",
    );
    check(
        restored.restore_bytes_saved == (16 * CHUNK_BYTES) as u64,
        "restore charges the full 16-chunk image as bytes a deep copy would move",
    );
    let readback = (0..16u64).all(|i| {
        vm_mem
            .load(mbfi_ir::Type::I64, base + i * CHUNK_BYTES as u64)
            .unwrap()
            == i + 1
    });
    check(readback, "restored contents match the snapshot");

    // The deep-copy baseline must report zero CoW activity.
    let mut full_mem = image.fork_full();
    full_mem.store(mbfi_ir::Type::I64, base, 0xBEEF).unwrap();
    full_mem.restore_from_with(&image, false);
    let full_stats = full_mem.cow_stats();
    check(
        full_stats.cow_chunks_copied == 0 && full_stats.restore_bytes_saved == 0,
        "deep-copy mode reports zero chunks copied and zero bytes saved",
    );

    // Unique-footprint accounting: a CoW fork adds only table overhead on
    // top of its image; a deep fork adds the whole image again.
    let mut seen = ChunkSet::default();
    let image_unique = image.unique_bytes(&mut seen);
    let cow_extra = image.fork_cow().unique_bytes(&mut seen);
    check(
        cow_extra < CHUNK_BYTES && image_unique > 16 * CHUNK_BYTES,
        "CoW fork shares every chunk with its image",
    );
    let full_extra = image.fork_full().unique_bytes(&mut seen);
    check(
        full_extra > 16 * CHUNK_BYTES,
        "deep fork duplicates every chunk",
    );
    failures
}

/// Run one campaign with an explicit CoW mode, restoring the switch after.
fn campaign_with_mode(
    cow: bool,
    code: &CompiledModule,
    golden: &GoldenRun,
    spec: &CampaignSpec,
    store: &CheckpointStore,
) -> CampaignResult {
    set_cow_enabled(cow);
    let r = Campaign::run_compiled_with_store(code, golden, spec, Some(store));
    set_cow_enabled(true);
    r
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let out = OutDir::from_args();
    let experiments = env_usize("MBFI_EXPERIMENTS", 48);
    let samples = env_usize("MBFI_BENCH_SAMPLES", 5);
    let dense_div = env_usize("MBFI_DENSE_DIV", 4096) as u64;
    let late_denom = env_usize("MBFI_LATE_DENOM", 4096) as u64;

    if check {
        let mut failures = check_accounting();
        // The CoW contract, campaign-level: byte-identical results with CoW
        // forking and with deep-copy restores, at every thread count.
        for w in all_workloads() {
            let module = w.build_module(InputSize::Tiny);
            let code = CompiledModule::lower(&module);
            let golden = GoldenRun::capture_compiled(&code)
                .unwrap_or_else(|e| panic!("golden run of {} failed: {e}", w.name()));
            let store = CheckpointStore::capture_compiled(
                &code,
                &golden,
                CheckpointConfig::with_interval(golden.default_checkpoint_interval()),
            )
            .unwrap_or_else(|e| panic!("checkpoint capture of {} failed: {e}", w.name()));
            for threads in [1usize, 4, 8] {
                let spec = CampaignSpec {
                    technique: Technique::InjectOnRead,
                    model: FaultModel::multi_bit(3, WinSize::Fixed(0)),
                    experiments: 24,
                    seed: 0xC0B7 ^ golden.dynamic_instrs,
                    hang_factor: 4,
                    threads,
                };
                let cow = campaign_with_mode(true, &code, &golden, &spec, &store);
                let full = campaign_with_mode(false, &code, &golden, &spec, &store);
                if cow == full {
                    println!("{:<14} threads={threads}: OK", w.name());
                } else {
                    eprintln!(
                        "DIVERGENCE: {} threads={threads}: CoW {:?} vs deep-copy {:?}",
                        w.name(),
                        cow.counts,
                        full.counts
                    );
                    failures += 1;
                }
            }
        }
        if failures > 0 {
            eprintln!("snapshot_bench --check: {failures} failures");
            std::process::exit(1);
        }
        println!(
            "snapshot_bench --check: CoW forking is byte-identical to deep-copy restores \
             and the dirty-chunk accounting holds"
        );
        return;
    }

    let names = env_names(
        "MBFI_WORKLOADS",
        &["qsort", "sha", "stringsearch", "susan_smoothing", "sad"],
    );
    // Timing defaults to the `small` input size: the snapshot images are big
    // enough there that the deep-copy restore is the measured cost floor,
    // which is exactly the regime CoW forking attacks.
    let size = match std::env::var("MBFI_SIZE").as_deref() {
        Ok("tiny") | Ok("Tiny") => InputSize::Tiny,
        _ => InputSize::Small,
    };
    eprintln!(
        "snapshot_bench: {} workloads, {experiments} experiments/campaign, {size} inputs, \
         dense K = golden/{dense_div}, late tail = 1/{late_denom}",
        names.len()
    );

    let mut workload_json = Vec::new();
    let mut late_speedups = Vec::new();
    let mut uniform_speedups = Vec::new();

    for name in &names {
        let w = workload_by_name(name)
            .unwrap_or_else(|| panic!("unknown workload '{name}' (see MBFI_WORKLOADS)"));
        let module = w.build_module(size);
        let code = CompiledModule::lower(&module);
        let golden = GoldenRun::capture_compiled(&code)
            .unwrap_or_else(|e| panic!("golden run of {name} failed: {e}"));
        let interval = (golden.dynamic_instrs / dense_div).max(1);
        let store = CheckpointStore::capture_compiled(
            &code,
            &golden,
            CheckpointConfig::with_interval(interval),
        )
        .unwrap_or_else(|e| panic!("checkpoint capture of {name} failed: {e}"));

        let uniform_spec = CampaignSpec {
            technique: Technique::InjectOnRead,
            model: FaultModel::single_bit(),
            experiments,
            seed: 0x5EED ^ golden.dynamic_instrs,
            hang_factor: 4,
            threads: 0,
        };
        let late_spec = CampaignSpec {
            technique: Technique::InjectOnRead,
            model: FaultModel::multi_bit(3, WinSize::Fixed(0)),
            ..uniform_spec
        };
        let late_specs = sample_specs(&late_spec, &golden, Some(late_denom));

        // Late-injection campaign, serial for stable per-experiment timing.
        set_cow_enabled(true);
        let late_cow = median_wall_ns(samples, || run_serial(&code, &golden, &late_specs, &store));
        set_cow_enabled(false);
        let late_full = median_wall_ns(samples, || run_serial(&code, &golden, &late_specs, &store));

        // Uniform campaign, through the campaign runner: the CoW + replay
        // pipeline, the deep-copy-restore pipeline, and full re-execution.
        set_cow_enabled(true);
        let uniform_cow = median_wall_ns(samples, || {
            Campaign::run_compiled_with_store(&code, &golden, &uniform_spec, Some(&store))
        });
        set_cow_enabled(false);
        let uniform_full = median_wall_ns(samples, || {
            Campaign::run_compiled_with_store(&code, &golden, &uniform_spec, Some(&store))
        });
        set_cow_enabled(true);
        let uniform_reexec = median_wall_ns(samples, || {
            Campaign::run_compiled(&code, &golden, &uniform_spec)
        });

        let late_speedup = late_full as f64 / late_cow.max(1) as f64;
        let uniform_speedup = uniform_reexec as f64 / uniform_cow.max(1) as f64;
        let uniform_cow_vs_full = uniform_full as f64 / uniform_cow.max(1) as f64;
        late_speedups.push(late_speedup);
        uniform_speedups.push(uniform_speedup);
        let exps_per_sec = |median_ns: u64| late_specs.len() as f64 / (median_ns as f64 / 1e9);
        println!(
            "{name:<14} golden {:>9} instrs  K={interval:<6} \
             late {late_speedup:>5.2}x ({:.0} -> {:.0} exp/s)  uniform {uniform_speedup:>5.2}x \
             (vs clone {uniform_cow_vs_full:>4.2}x; {} checkpoints, {:.1} MiB unique)",
            golden.dynamic_instrs,
            exps_per_sec(late_full),
            exps_per_sec(late_cow),
            store.len(),
            store.stored_bytes() as f64 / (1 << 20) as f64
        );

        let mut obj = Json::object();
        obj.set("name", name.clone());
        obj.set("golden_dynamic_instrs", golden.dynamic_instrs);
        obj.set("checkpoint_interval", interval);
        obj.set("checkpoints", store.len());
        obj.set("stored_bytes", store.stored_bytes());
        obj.set("late_cow_median_ns", late_cow);
        obj.set("late_full_clone_median_ns", late_full);
        obj.set("late_speedup", late_speedup);
        obj.set("uniform_cow_replay_median_ns", uniform_cow);
        obj.set("uniform_full_clone_median_ns", uniform_full);
        obj.set("uniform_reexec_median_ns", uniform_reexec);
        obj.set("uniform_speedup", uniform_speedup);
        obj.set("uniform_cow_vs_full_clone", uniform_cow_vs_full);
        workload_json.push(obj);
    }

    let geomean = |xs: &[f64]| -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
    };
    let late_geomean = geomean(&late_speedups);
    let uniform_geomean = geomean(&uniform_speedups);
    let best_late = late_speedups.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "late geomean {late_geomean:.2}x (best cell {best_late:.2}x, target >= {LATE_TARGET}x), \
         uniform grid geomean {uniform_geomean:.2}x (target >= {UNIFORM_TARGET}x)"
    );

    let mut root = Json::object();
    root.set("suite", "snapshot");
    root.set("experiments", experiments);
    root.set("samples", samples);
    root.set("dense_div", dense_div);
    root.set("late_denom", late_denom);
    root.set("workloads", Json::Arr(workload_json));
    root.set("late_geomean_speedup", late_geomean);
    root.set("best_late_speedup", best_late);
    root.set("uniform_geomean_speedup", uniform_geomean);
    root.set("late_target", LATE_TARGET);
    root.set("uniform_target", UNIFORM_TARGET);
    root.set("late_target_met", best_late >= LATE_TARGET);
    root.set("uniform_target_met", uniform_geomean >= UNIFORM_TARGET);
    out.write("BENCH_snapshot.json", &root.render());
}
