//! Measures checkpointed golden-run replay against full re-execution and
//! writes `BENCH_replay.json`.
//!
//! Two campaign shapes per workload:
//!
//! * **uniform** — a stock single bit-flip campaign, injection points drawn
//!   uniformly over the golden run (the expected saving is about half the
//!   fault-free prefix);
//! * **late** — a fig2-style same-register multi-bit campaign whose first
//!   injections are remapped into the **last quartile** of the candidate
//!   space, the shape replay helps most (≳ 4× less fault-free prefix work).
//!
//! Flags and knobs:
//!
//! * `--check` — self-verifying mode: skip timing and instead compare every
//!   experiment's full-execution result against its replayed result for
//!   checkpoint intervals K ∈ {1, 7, 64, auto}; exits non-zero on the first
//!   divergence.  This is the determinism contract as an executable.
//! * `--out-dir <path>` — where `BENCH_replay.json` goes (default: CWD).
//! * `MBFI_EXPERIMENTS` — experiments per campaign (default 48).
//! * `MBFI_BENCH_SAMPLES` — timing samples per campaign (default 5).
//! * `MBFI_WORKLOADS` — comma-separated workload filter (default
//!   `qsort,dijkstra,stringsearch`).

use mbfi_bench::artifacts::OutDir;
use mbfi_bench::timing::{env_usize, median_wall_ns};
use mbfi_core::replay::{last_quartile_target, CheckpointConfig, CheckpointStore};
use mbfi_core::report::Json;
use mbfi_core::{
    Campaign, CampaignSpec, Experiment, ExperimentSpec, FaultModel, GoldenRun, Technique, WinSize,
};
use mbfi_ir::CompiledModule;
use mbfi_workloads::{workload_by_name, InputSize};
use std::time::Instant;

fn env_names(key: &str, default: &[&str]) -> Vec<String> {
    match std::env::var(key) {
        Ok(v) if !v.trim().is_empty() => v
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
        _ => default.iter().map(|s| s.to_string()).collect(),
    }
}

/// The experiment specs of a campaign, pre-sampled, optionally with the first
/// injection remapped into the last quartile of the candidate space.
fn sample_specs(spec: &CampaignSpec, golden: &GoldenRun, late: bool) -> Vec<ExperimentSpec> {
    let mut specs = ExperimentSpec::sample_campaign(spec, golden);
    if late {
        for s in &mut specs {
            s.first_target =
                last_quartile_target(golden.candidates(spec.technique), s.first_target);
        }
    }
    specs
}

fn run_serial(
    code: &CompiledModule,
    golden: &GoldenRun,
    specs: &[ExperimentSpec],
    store: Option<&CheckpointStore>,
) -> u64 {
    let mut outcomes = 0u64;
    for s in specs {
        let r = Experiment::run_compiled(code, golden, s, store);
        outcomes = outcomes.wrapping_add(r.dynamic_instrs);
    }
    outcomes
}

/// Compare full vs replayed results for every spec; returns the mismatches.
fn check_specs(
    code: &CompiledModule,
    golden: &GoldenRun,
    specs: &[ExperimentSpec],
    store: &CheckpointStore,
) -> usize {
    let mut mismatches = 0;
    for s in specs {
        let full = Experiment::run_compiled(code, golden, s, None);
        let replayed = Experiment::run_compiled(code, golden, s, Some(store));
        if full != replayed {
            mismatches += 1;
            eprintln!(
                "DIVERGENCE: technique={} first_target={} seed={:#x}: \
                 full={:?}/{} instrs vs replay={:?}/{} instrs",
                s.technique,
                s.first_target,
                s.seed,
                full.outcome,
                full.dynamic_instrs,
                replayed.outcome,
                replayed.dynamic_instrs
            );
        }
    }
    mismatches
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let out = OutDir::from_args();
    let experiments = env_usize("MBFI_EXPERIMENTS", 48);
    let samples = env_usize("MBFI_BENCH_SAMPLES", 5);
    let names = env_names("MBFI_WORKLOADS", &["qsort", "dijkstra", "stringsearch"]);
    eprintln!(
        "replay_bench: {} workloads, {experiments} experiments/campaign, {} mode",
        names.len(),
        if check { "check" } else { "timing" }
    );

    let mut workload_json = Vec::new();
    let mut best_late_speedup = 0.0f64;
    let mut total_mismatches = 0usize;

    for name in &names {
        let w = workload_by_name(name)
            .unwrap_or_else(|| panic!("unknown workload '{name}' (see MBFI_WORKLOADS)"));
        let module = w.build_module(InputSize::Tiny);
        let code = CompiledModule::lower(&module);
        let golden = GoldenRun::capture_compiled(&code)
            .unwrap_or_else(|e| panic!("golden run of {name} failed: {e}"));
        let auto_interval = golden.default_checkpoint_interval();

        let uniform_spec = CampaignSpec {
            technique: Technique::InjectOnRead,
            model: FaultModel::single_bit(),
            experiments,
            seed: 0x5EED ^ golden.dynamic_instrs,
            hang_factor: 4,
            threads: 0,
        };
        // Fig2-style: a same-register multi-bit burst (win-size = 0), first
        // injection in the last quartile of the golden run.
        let late_spec = CampaignSpec {
            technique: Technique::InjectOnRead,
            model: FaultModel::multi_bit(3, WinSize::Fixed(0)),
            ..uniform_spec
        };
        let late_specs = sample_specs(&late_spec, &golden, true);

        if check {
            let uniform_specs = sample_specs(&uniform_spec, &golden, false);
            for k in [1, 7, 64, auto_interval] {
                let store = CheckpointStore::capture_compiled(
                    &code,
                    &golden,
                    CheckpointConfig::with_interval(k),
                )
                .unwrap_or_else(|e| panic!("checkpoint capture of {name} (K={k}) failed: {e}"));
                let m = check_specs(&code, &golden, &uniform_specs, &store)
                    + check_specs(&code, &golden, &late_specs, &store);
                println!(
                    "{name:<14} K={k:<8} {} checkpoints, {} bytes: {}",
                    store.len(),
                    store.stored_bytes(),
                    if m == 0 {
                        "OK".to_string()
                    } else {
                        format!("{m} MISMATCHES")
                    }
                );
                total_mismatches += m;
            }
            continue;
        }

        let capture_start = Instant::now();
        let store = CheckpointStore::capture_compiled(
            &code,
            &golden,
            CheckpointConfig::with_interval(auto_interval),
        )
        .unwrap_or_else(|e| panic!("checkpoint capture of {name} failed: {e}"));
        let capture_ns = capture_start.elapsed().as_nanos() as u64;

        // Uniform campaign, through the threaded Campaign runner.
        let full_uniform = median_wall_ns(samples, || {
            Campaign::run_compiled(&code, &golden, &uniform_spec)
        });
        let replay_uniform = median_wall_ns(samples, || {
            Campaign::run_compiled_with_store(&code, &golden, &uniform_spec, Some(&store))
        });

        // Late-injection campaign, serial for stable per-experiment timing.
        let full_late = median_wall_ns(samples, || run_serial(&code, &golden, &late_specs, None));
        let replay_late = median_wall_ns(samples, || {
            run_serial(&code, &golden, &late_specs, Some(&store))
        });

        let uniform_speedup = full_uniform as f64 / replay_uniform.max(1) as f64;
        let late_speedup = full_late as f64 / replay_late.max(1) as f64;
        best_late_speedup = best_late_speedup.max(late_speedup);
        println!(
            "{name:<14} golden {:>9} instrs  K={auto_interval:<6} \
             uniform {uniform_speedup:>5.2}x  late {late_speedup:>5.2}x \
             (capture {:.1} ms, {} checkpoints, {:.1} MiB)",
            golden.dynamic_instrs,
            capture_ns as f64 / 1e6,
            store.len(),
            store.stored_bytes() as f64 / (1 << 20) as f64
        );

        let mut obj = Json::object();
        obj.set("name", name.clone());
        obj.set("golden_dynamic_instrs", golden.dynamic_instrs);
        obj.set("checkpoint_interval", auto_interval);
        obj.set("checkpoints", store.len());
        obj.set("stored_bytes", store.stored_bytes());
        obj.set("capture_ns", capture_ns);
        obj.set("uniform_full_median_ns", full_uniform);
        obj.set("uniform_replay_median_ns", replay_uniform);
        obj.set("uniform_speedup", uniform_speedup);
        obj.set("late_full_median_ns", full_late);
        obj.set("late_replay_median_ns", replay_late);
        obj.set("late_speedup", late_speedup);
        workload_json.push(obj);
    }

    if check {
        if total_mismatches > 0 {
            eprintln!("replay_bench --check: {total_mismatches} mismatches");
            std::process::exit(1);
        }
        println!("replay_bench --check: replay is byte-identical to full execution");
        return;
    }

    let mut root = Json::object();
    root.set("suite", "replay");
    root.set("experiments", experiments);
    root.set("samples", samples);
    root.set("workloads", Json::Arr(workload_json));
    root.set("best_late_speedup", best_late_speedup);
    out.write("BENCH_replay.json", &root.render());
}
