//! Measures bit-level static pruning ([`BitLevelPruner`]) against unpruned
//! fixed-n campaigns and writes `BENCH_prune.json`.
//!
//! For every workload the binary reports the statically-pruned fraction of
//! the (instruction, register, bit) fault-site space — both in-width and
//! under the paper's 64-bit register model — next to the predicted-vs-
//! measured agreement: a pruned campaign synthesizes the provably-dead share
//! of its experiments and must produce a [`CampaignResult`] byte-identical
//! to the unpruned [`Campaign::run_compiled`] run with the same spec.
//!
//! Flags and knobs:
//!
//! * `--check` — self-verifying mode over **all** workloads: (a) sample
//!   `MBFI_PRUNE_SITES` claimed-dead sites per technique per workload
//!   (default 35 × 2 × 15 = 1050 ≥ 1k) and inject every one — each run must
//!   classify Benign with output bytes identical to golden; (b) compare the
//!   pruned campaign byte-for-byte against the unpruned one at thread counts
//!   {1, 4, 8}; (c) re-run the pruned campaign on an independent seed and
//!   require its SDC / Detection 95 % intervals to overlap the unpruned
//!   ones; (d) require a non-zero model-64 pruned fraction on every
//!   workload.  Exits non-zero on any violation.
//! * `--out-dir <path>` — where `BENCH_prune.json` goes (default: CWD).
//! * `MBFI_PRUNE_SITES` — dead sites sampled per technique per workload in
//!   `--check` (default 35).
//! * `MBFI_BENCH_SAMPLES` — timing samples per side (default 1; one untimed
//!   warm-up pass runs first and the median sample is reported).
//! * plus the harness knobs (`MBFI_WORKLOADS`, `MBFI_EXPERIMENTS`, ...).
//!
//! [`BitLevelPruner`]: mbfi_core::BitLevelPruner
//! [`CampaignResult`]: mbfi_core::CampaignResult
//! [`Campaign::run_compiled`]: mbfi_core::Campaign::run_compiled

use mbfi_bench::artifacts::OutDir;
use mbfi_bench::harness::{prepare, HarnessConfig, WorkloadData};
use mbfi_bench::timing::{env_usize, median_wall_ns};
use mbfi_core::report::Json;
use mbfi_core::stats::{wilson_interval, Proportion};
use mbfi_core::{
    BitLevelPruner, Campaign, CampaignResult, CampaignSpec, FaultModel, OutcomeCounts, Technique,
};
use mbfi_ir::bitflow::BitSpace;

/// Seed perturbation for the independent-seed agreement campaign.
const ALT_SEED_XOR: u64 = 0x5EED_A17E_0B17_F11B;

/// Combined (read + write) model-64 dead fraction — the per-workload
/// "statically pruned fraction" headline number.
fn pruned_fraction_model64(space: &BitSpace) -> f64 {
    let sites = space.read_sites + space.write_sites;
    if sites == 0 {
        return 0.0;
    }
    let dead_read = space.read_dead_bits + space.read_sites * 64 - space.read_site_bits;
    let dead_write = space.write_dead_bits + space.write_sites * 64 - space.write_site_bits;
    (dead_read + dead_write) as f64 / (sites * 64) as f64
}

/// Do two 95 % intervals overlap?
fn overlaps(a: &Proportion, b: &Proportion) -> bool {
    a.lower <= b.upper && b.lower <= a.upper
}

/// Sum the skipped/executed split back together for the bookkeeping check.
fn counts_sum(a: &OutcomeCounts, b: &OutcomeCounts) -> OutcomeCounts {
    OutcomeCounts {
        benign: a.benign + b.benign,
        hw_exception: a.hw_exception + b.hw_exception,
        hang: a.hang + b.hang,
        no_output: a.no_output + b.no_output,
        sdc: a.sdc + b.sdc,
    }
}

/// Compare a pruned result against the unpruned reference modulo the
/// `spec.threads` echo (the knob is recorded, the payload must match).
fn results_match(pruned: &CampaignResult, unpruned: &CampaignResult) -> bool {
    let mut normalized = pruned.clone();
    normalized.spec.threads = unpruned.spec.threads;
    normalized == *unpruned
}

fn check(cfg: &HarnessConfig, sites_per: usize) -> ! {
    let data = prepare(cfg);
    let mut violations = 0usize;
    let mut total_sites = 0u64;
    let mut total_skipped = 0u64;
    let mut total_experiments = 0u64;
    for d in &data {
        let pruner = BitLevelPruner::analyze(&d.code);
        let space = pruner.space();
        let fraction = pruned_fraction_model64(&space);
        if fraction <= 0.0 {
            eprintln!(
                "VIOLATION: {}: model-64 pruned fraction is zero (analysis proved nothing)",
                d.name
            );
            violations += 1;
        }
        let counts = pruner.pc_execution_counts(&d.code, &d.golden);
        for (t, technique) in Technique::ALL.into_iter().enumerate() {
            // (a) Every sampled claimed-dead site must run byte-identical
            // to golden and classify Benign.
            let site_seed = cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(t as u64);
            let sites = pruner.sample_dead_sites(&counts, technique, sites_per, site_seed);
            if sites.len() < sites_per {
                eprintln!(
                    "VIOLATION: {} {technique}: sampled {} dead sites, wanted {sites_per} \
                     (no provably-dead bits on executed code?)",
                    d.name,
                    sites.len()
                );
                violations += 1;
            }
            for site in &sites {
                if let Err(err) = pruner.check_dead_site(&d.code, &d.golden, site) {
                    eprintln!("VIOLATION: {} {technique}: {err}", d.name);
                    violations += 1;
                }
            }
            total_sites += sites.len() as u64;

            // (b) Pruned == unpruned, byte-for-byte, at every thread count.
            let base = CampaignSpec {
                threads: 1,
                ..cfg.campaign_spec(technique, FaultModel::single_bit())
            };
            let unpruned = Campaign::run_compiled(&d.code, &d.golden, &base);
            let mut skipped_here = 0u64;
            for threads in [1usize, 4, 8] {
                let spec = CampaignSpec { threads, ..base };
                let pruned = pruner.run_campaign_pruned(&d.code, &d.golden, &spec);
                if !results_match(&pruned.result, &unpruned) {
                    eprintln!(
                        "VIOLATION: {} {technique} threads={threads}: pruned campaign \
                         diverged from the unpruned result",
                        d.name
                    );
                    violations += 1;
                }
                let split = counts_sum(&pruned.skipped_counts, &pruned.executed_counts);
                if split != pruned.result.counts
                    || pruned.skipped != pruned.skipped_counts.total()
                    || pruned.executed() != pruned.executed_counts.total()
                {
                    eprintln!(
                        "VIOLATION: {} {technique} threads={threads}: skipped/executed \
                         split does not add up to the campaign counts",
                        d.name
                    );
                    violations += 1;
                }
                skipped_here = pruned.skipped;
            }
            total_skipped += skipped_here;
            total_experiments += unpruned.total();

            // (c) Independent-seed agreement: the pruned estimator must land
            // inside the unpruned campaign's statistical noise.
            let alt = CampaignSpec {
                seed: base.seed ^ ALT_SEED_XOR,
                ..base
            };
            let pruned_alt = pruner.run_campaign_pruned(&d.code, &d.golden, &alt);
            let n_ref = unpruned.total();
            let n_alt = pruned_alt.result.total();
            let pairs = [
                ("SDC", unpruned.counts.sdc, pruned_alt.result.counts.sdc),
                (
                    "Detection",
                    unpruned.counts.detection(),
                    pruned_alt.result.counts.detection(),
                ),
            ];
            for (label, reference, measured) in pairs {
                // Wilson, not Wald: a zero-success cell's Wald interval
                // degenerates to [0, 0] and would reject any nonzero
                // independent-seed estimate.
                let a = wilson_interval(reference, n_ref);
                let b = wilson_interval(measured, n_alt);
                if !overlaps(&a, &b) {
                    eprintln!(
                        "VIOLATION: {} {technique}: pruned {label} {:.1}% (n={n_alt}) outside \
                         the unpruned 95% interval [{:.1}%, {:.1}%]",
                        d.name,
                        b.estimate * 100.0,
                        a.lower * 100.0,
                        a.upper * 100.0,
                    );
                    violations += 1;
                }
            }
        }
    }
    let floor = 1000.min(sites_per * 2 * data.len()) as u64;
    if total_sites < floor {
        eprintln!("VIOLATION: only {total_sites} dead sites injected, wanted >= {floor}");
        violations += 1;
    }
    println!(
        "{} workloads: {total_sites} claimed-dead sites injected byte-identical to golden; \
         pruned campaigns byte-identical to unpruned at threads {{1,4,8}} \
         ({total_skipped}/{total_experiments} experiments skipped); independent-seed \
         SDC/Detection within 95% intervals",
        data.len()
    );
    if violations > 0 {
        eprintln!("prune_bench --check: {violations} violations");
        std::process::exit(1);
    }
    println!("prune_bench --check: the static pruner is sound on every workload");
    std::process::exit(0);
}

/// One technique's timed pruned-vs-unpruned comparison on one workload.
struct TechniqueReport {
    technique: Technique,
    skipped: u64,
    experiments: u64,
    skipped_fraction: f64,
    unpruned_ns: u64,
    pruned_ns: u64,
    sdc_pct: f64,
    detection_pct: f64,
    matched: bool,
}

fn time_technique(
    d: &WorkloadData,
    pruner: &BitLevelPruner,
    spec: &CampaignSpec,
    samples: usize,
) -> TechniqueReport {
    let mut unpruned = None;
    let unpruned_ns = median_wall_ns(samples, || {
        unpruned = Some(Campaign::run_compiled(&d.code, &d.golden, spec));
    });
    let mut pruned = None;
    let pruned_ns = median_wall_ns(samples, || {
        pruned = Some(pruner.run_campaign_pruned(&d.code, &d.golden, spec));
    });
    let unpruned = unpruned.expect("unpruned campaign ran");
    let pruned = pruned.expect("pruned campaign ran");
    TechniqueReport {
        technique: spec.technique,
        skipped: pruned.skipped,
        experiments: unpruned.total(),
        skipped_fraction: pruned.skipped_fraction(),
        unpruned_ns,
        pruned_ns,
        sdc_pct: unpruned.counts.sdc_pct(),
        detection_pct: unpruned.counts.detection_pct(),
        matched: results_match(&pruned.result, &unpruned),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let out = OutDir::from_args();

    let cfg = HarnessConfig::from_env();
    let sites_per = env_usize("MBFI_PRUNE_SITES", 35);
    let samples = env_usize("MBFI_BENCH_SAMPLES", 1);
    eprintln!(
        "prune_bench: {} workloads, {} experiments per campaign, {} mode",
        cfg.workloads().len(),
        cfg.experiments,
        if check_mode { "check" } else { "timing" }
    );

    if check_mode {
        check(&cfg, sites_per);
    }

    let data = prepare(&cfg);
    let mut per_workload = Vec::new();
    let mut fractions = Vec::new();
    let mut total_unpruned_ns = 0u64;
    let mut total_pruned_ns = 0u64;
    let mut total_skipped = 0u64;
    let mut total_experiments = 0u64;
    let mut mismatches = 0usize;
    for d in &data {
        let pruner = BitLevelPruner::analyze(&d.code);
        let space = pruner.space();
        let fraction = pruned_fraction_model64(&space);
        fractions.push(fraction);

        let mut entry = Json::object();
        entry.set("name", d.name.clone());
        entry.set("read_sites", space.read_sites);
        entry.set("write_sites", space.write_sites);
        entry.set("read_dead_fraction", space.read_dead_fraction());
        entry.set("write_dead_fraction", space.write_dead_fraction());
        entry.set(
            "read_dead_fraction_model64",
            space.read_dead_fraction_model64(),
        );
        entry.set(
            "write_dead_fraction_model64",
            space.write_dead_fraction_model64(),
        );
        entry.set("pruned_fraction_model64", fraction);
        for technique in Technique::ALL {
            let spec = cfg.campaign_spec(technique, FaultModel::single_bit());
            let r = time_technique(d, &pruner, &spec, samples);
            if !r.matched {
                eprintln!(
                    "VIOLATION: {} {technique}: pruned campaign diverged from unpruned",
                    d.name
                );
                mismatches += 1;
            }
            total_unpruned_ns += r.unpruned_ns;
            total_pruned_ns += r.pruned_ns;
            total_skipped += r.skipped;
            total_experiments += r.experiments;
            let mut tech = Json::object();
            tech.set("skipped", r.skipped);
            tech.set("experiments", r.experiments);
            tech.set("skipped_fraction", r.skipped_fraction);
            tech.set("wall_ns_unpruned", r.unpruned_ns);
            tech.set("wall_ns_pruned", r.pruned_ns);
            tech.set("speedup", r.unpruned_ns as f64 / r.pruned_ns.max(1) as f64);
            tech.set("sdc_pct", r.sdc_pct);
            tech.set("detection_pct", r.detection_pct);
            tech.set("matches_unpruned", r.matched);
            entry.set(
                match r.technique {
                    Technique::InjectOnRead => "read",
                    Technique::InjectOnWrite => "write",
                },
                tech,
            );
            println!(
                "{:<14} {technique}: {:>5.1}% statically pruned, {}/{} experiments skipped, \
                 {:.2}x wall-clock",
                d.name,
                fraction * 100.0,
                r.skipped,
                r.experiments,
                r.unpruned_ns as f64 / r.pruned_ns.max(1) as f64,
            );
        }
        per_workload.push(entry);
    }
    let geomean = if fractions.is_empty() || fractions.iter().any(|f| *f <= 0.0) {
        0.0
    } else {
        (fractions.iter().map(|f| f.ln()).sum::<f64>() / fractions.len() as f64).exp()
    };
    println!(
        "geomean statically-pruned fraction (64-bit model): {:.1}% over {} workloads; \
         {total_skipped}/{total_experiments} campaign experiments skipped, {:.2}x wall-clock",
        geomean * 100.0,
        data.len(),
        total_unpruned_ns as f64 / total_pruned_ns.max(1) as f64,
    );

    let mut root = Json::object();
    root.set("suite", "prune");
    root.set(
        "workloads",
        data.iter().map(|d| d.name.clone()).collect::<Vec<_>>(),
    );
    root.set("experiments_per_campaign", cfg.experiments);
    root.set("samples", samples);
    root.set("per_workload", Json::Arr(per_workload));
    root.set("geomean_pruned_fraction_model64", geomean);
    let mut totals = Json::object();
    totals.set("experiments", total_experiments);
    totals.set("skipped", total_skipped);
    totals.set(
        "skipped_fraction",
        total_skipped as f64 / total_experiments.max(1) as f64,
    );
    totals.set("wall_ns_unpruned", total_unpruned_ns);
    totals.set("wall_ns_pruned", total_pruned_ns);
    totals.set(
        "speedup",
        total_unpruned_ns as f64 / total_pruned_ns.max(1) as f64,
    );
    totals.set("all_match_unpruned", mismatches == 0);
    root.set("totals", totals);
    out.write("BENCH_prune.json", &root.render());
    if mismatches > 0 {
        eprintln!("prune_bench: {mismatches} pruned campaigns diverged");
        std::process::exit(1);
    }
}
