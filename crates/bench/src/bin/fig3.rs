//! Regenerates Fig. 3: distribution of the number of activated errors before
//! a crash when max-MBF = 30.

use mbfi_bench::{harness, Artefact};
use mbfi_core::Technique;

fn main() {
    let cfg = harness::HarnessConfig::from_env();
    eprintln!(
        "fig3: {} workloads, {}",
        cfg.workloads().len(),
        cfg.sampling_label()
    );
    let mut artefact = Artefact::from_args("fig3");
    let mut grid = harness::CampaignGrid::new(&cfg);
    for technique in Technique::ALL {
        grid.request_activation(technique);
    }
    let run = grid.run();
    for technique in Technique::ALL {
        let campaigns = harness::activation_results(&cfg, &run, technique);
        let (table, analysis) = harness::fig3(technique, &campaigns);
        artefact.emit(table.render());
        artefact.emit(format!(
            "suggested max-MBF bound for 95% coverage ({technique}): {}\n",
            analysis.suggested_bound(0.95)
        ));
    }
    artefact.finish();
}
