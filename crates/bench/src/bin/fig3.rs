//! Regenerates Fig. 3: distribution of the number of activated errors before
//! a crash when max-MBF = 30.

use mbfi_bench::harness;
use mbfi_core::Technique;

fn main() {
    let cfg = harness::HarnessConfig::from_env();
    eprintln!(
        "fig3: {} workloads, {} experiments/campaign",
        cfg.workloads().len(),
        cfg.experiments
    );
    let data = harness::prepare(&cfg);
    for technique in Technique::ALL {
        let campaigns = harness::activation_results(&cfg, &data, technique);
        let (table, analysis) = harness::fig3(technique, &campaigns);
        println!("{}", table.render());
        println!(
            "suggested max-MBF bound for 95% coverage ({technique}): {}\n",
            analysis.suggested_bound(0.95)
        );
    }
}
