//! Regenerates Fig. 2: SDC percentage when flipping 1..30 bits of the same
//! register (win-size = 0), per workload and technique.

use mbfi_bench::{harness, Artefact};
use mbfi_core::Technique;

fn main() {
    let cfg = harness::HarnessConfig::from_env();
    eprintln!(
        "fig2: {} workloads, {}",
        cfg.workloads().len(),
        cfg.sampling_label()
    );
    let mut artefact = Artefact::from_args("fig2");
    let mut grid = harness::CampaignGrid::new(&cfg);
    for technique in Technique::ALL {
        grid.request_same_register(technique);
    }
    let run = grid.run();
    for technique in Technique::ALL {
        let results = harness::same_register_results(&cfg, &run, technique);
        artefact.emit(harness::fig2(technique, &results).render());
    }
    artefact.finish();
}
