//! Regenerates Table III: the (max-MBF, win-size) configuration causing the
//! highest SDC percentage per workload and technique.

use mbfi_bench::{harness, Artefact};
use mbfi_core::Technique;

fn main() {
    let cfg = harness::HarnessConfig::from_env();
    eprintln!(
        "table3: {} workloads, {}, grid = {}",
        cfg.workloads().len(),
        cfg.sampling_label(),
        if cfg.full_grid { "full" } else { "coarse" }
    );
    let mut artefact = Artefact::from_args("table3");
    let mut grid = harness::CampaignGrid::new(&cfg);
    for technique in Technique::ALL {
        grid.request_multi_register(technique);
    }
    let run = grid.run();
    let read = harness::multi_register_results(&cfg, &run, Technique::InjectOnRead);
    let write = harness::multi_register_results(&cfg, &run, Technique::InjectOnWrite);
    artefact.emit(harness::table3(&read, &write).render());
    artefact.finish();
}
