//! Rendering for `mbfi-monitor`: turn a [`MonitorState`] accumulated from a
//! telemetry JSONL stream into either a live ANSI dashboard (per-cell
//! progress bars, outcome mix, throughput) or a plain headless report for CI
//! logs.  All layout logic is pure string building so it is testable without
//! a terminal.

use std::fmt::Write as _;

use mbfi_core::{MonitorState, Outcome};

/// Width of the per-cell progress bar, in character cells.
const BAR_WIDTH: usize = 24;

/// One-letter legend per outcome, in [`Outcome::ALL`] order: Benign,
/// Detected-by-hw-exception, Hang, No-output, SDC.
const OUTCOME_KEYS: [char; 5] = ['B', 'D', 'H', 'N', 'S'];

fn outcome_tallies(counts: &mbfi_core::OutcomeCounts) -> [u64; 5] {
    [
        counts.benign,
        counts.hw_exception,
        counts.hang,
        counts.no_output,
        counts.sdc,
    ]
}

/// `done/planned` as a `[####....]` bar.  Adaptive cells can finish under
/// budget (or the stream may still be in flight), so the fill saturates.
fn bar(done: u64, planned: u64) -> String {
    let filled = if planned == 0 {
        BAR_WIDTH
    } else {
        ((done as u128 * BAR_WIDTH as u128) / planned as u128).min(BAR_WIDTH as u128) as usize
    };
    let mut s = String::with_capacity(BAR_WIDTH + 2);
    s.push('[');
    for i in 0..BAR_WIDTH {
        s.push(if i < filled { '#' } else { '.' });
    }
    s.push(']');
    s
}

/// Outcome mix of one cell as `B:12 D:3 S:1` (zero tallies omitted).
fn mix(counts: &mbfi_core::OutcomeCounts) -> String {
    let mut s = String::new();
    for (key, n) in OUTCOME_KEYS.iter().zip(outcome_tallies(counts)) {
        if n > 0 {
            if !s.is_empty() {
                s.push(' ');
            }
            let _ = write!(s, "{key}:{n}");
        }
    }
    if s.is_empty() {
        s.push('-');
    }
    s
}

fn header_line(state: &MonitorState) -> String {
    let (total, counts) = state.totals();
    format!(
        "{} | {} cells, {} threads | {} experiments | {:.0} exp/s | SDC {:.2}%{}{}",
        if state.finished { "done" } else { "running" },
        state.cells.len(),
        state.threads,
        total,
        state.exps_per_sec(),
        counts.fraction(Outcome::Sdc) * 100.0,
        if state.cow_chunks_copied == 0 && state.cow_restore_bytes_saved == 0 {
            String::new()
        } else {
            format!(
                " | cow {} chunks, {:.1} MiB saved",
                state.cow_chunks_copied,
                state.cow_restore_bytes_saved as f64 / (1024.0 * 1024.0),
            )
        },
        if state.errors.is_empty() {
            String::new()
        } else {
            format!(" | {} decode errors", state.errors.len())
        },
    )
}

fn cell_lines(state: &MonitorState) -> Vec<String> {
    let label_width = state
        .cells
        .iter()
        .map(|c| c.label.chars().count())
        .max()
        .unwrap_or(0)
        .max(4);
    state
        .cells
        .iter()
        .map(|c| {
            let mut line = format!(
                "{:<label_width$} {} {:>6}/{:<6}",
                if c.label.is_empty() { "?" } else { &c.label },
                bar(c.done, c.planned),
                c.done,
                c.planned,
            );
            if let (Some(sdc), Some(det)) = (c.sdc_half_width_pct, c.detection_half_width_pct) {
                let _ = write!(line, " r{} ±{sdc:.2}/±{det:.2}", c.rounds);
            }
            let _ = write!(line, "  {}", mix(&c.counts));
            if c.finished {
                line.push_str("  ✓");
            }
            line
        })
        .collect()
}

/// The live dashboard: cursor-home + clear-to-end ANSI prefix, a header line
/// and one bar per cell.  Re-printing the returned string over the previous
/// frame redraws in place.
pub fn render_dashboard(state: &MonitorState) -> String {
    let mut out = String::from("\x1b[H\x1b[J");
    out.push_str(&header_line(state));
    out.push('\n');
    for line in cell_lines(state) {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// The `--headless` one-shot report: no ANSI, header plus cells plus the
/// outcome legend, suitable for CI logs.
pub fn render_headless(state: &MonitorState) -> String {
    let mut out = header_line(state);
    out.push('\n');
    for line in cell_lines(state) {
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("legend: B benign, D detected-hw-exception, H hang, N no-output, S sdc\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbfi_core::OutcomeCounts;

    fn state_from(lines: &str) -> MonitorState {
        let mut state = MonitorState::new();
        for line in lines.lines() {
            state.apply_line(line).expect("fixture line must parse");
        }
        state
    }

    const STREAM: &str = r#"{"seq": 0, "t_ns": 10, "kind": "sweep_started", "cells": 2, "threads": 3, "planned": 30}
{"seq": 1, "t_ns": 20, "kind": "cell_planned", "cell": 0, "unit": 0, "label": "u0 read 1-bit", "planned": 10}
{"seq": 2, "t_ns": 30, "kind": "cell_planned", "cell": 1, "unit": 1, "label": "u1 write m=3,w=100", "planned": 20}
{"seq": 3, "t_ns": 500, "kind": "batch_done", "cell": 0, "batch": 0, "experiments": 10, "benign": 6, "hw_exception": 2, "hang": 0, "no_output": 0, "sdc": 2, "wall_ns": 400, "worker": 0, "stolen": false}
{"seq": 4, "t_ns": 600, "kind": "cell_finished", "cell": 0, "experiments": 10, "benign": 6, "hw_exception": 2, "hang": 0, "no_output": 0, "sdc": 2, "rounds": 0}
{"seq": 5, "t_ns": 700, "kind": "batch_done", "cell": 1, "batch": 0, "experiments": 5, "benign": 5, "hw_exception": 0, "hang": 0, "no_output": 0, "sdc": 0, "wall_ns": 300, "worker": 1, "stolen": true}
"#;

    #[test]
    fn bars_fill_proportionally_and_saturate() {
        assert_eq!(bar(0, 10), format!("[{}]", ".".repeat(BAR_WIDTH)));
        assert_eq!(bar(10, 10), format!("[{}]", "#".repeat(BAR_WIDTH)));
        assert_eq!(bar(25, 10), format!("[{}]", "#".repeat(BAR_WIDTH)));
        assert_eq!(bar(0, 0), format!("[{}]", "#".repeat(BAR_WIDTH)));
        let half = bar(5, 10);
        assert_eq!(half.matches('#').count(), BAR_WIDTH / 2);
    }

    #[test]
    fn outcome_mix_lists_nonzero_tallies_in_order() {
        let counts = OutcomeCounts {
            benign: 6,
            hw_exception: 2,
            sdc: 1,
            ..OutcomeCounts::default()
        };
        assert_eq!(mix(&counts), "B:6 D:2 S:1");
        assert_eq!(mix(&OutcomeCounts::default()), "-");
    }

    #[test]
    fn headless_report_shows_progress_and_outcomes() {
        let state = state_from(STREAM);
        let report = render_headless(&state);
        assert!(report.starts_with("running | 2 cells, 3 threads | 15 experiments"));
        assert!(report.contains("u0 read 1-bit"));
        assert!(report.contains("u1 write m=3,w=100"));
        assert!(report.contains("10/10"), "finished cell at full budget");
        assert!(report.contains("5/20"), "in-flight cell partial");
        assert!(report.contains("B:6 D:2 S:2"));
        assert!(report.contains('✓'), "finished cell is ticked");
        assert!(report.contains("legend:"));
        assert!(!report.contains('\x1b'), "headless output has no ANSI");
    }

    #[test]
    fn cow_totals_surface_in_header_once_the_sweep_finishes() {
        // No CoW activity recorded yet: the header stays compact.
        assert!(!header_line(&state_from(STREAM)).contains("cow"));
        let finished = format!(
            "{STREAM}{}\n",
            r#"{"seq": 6, "t_ns": 900, "kind": "sweep_finished", "cells": 2, "experiments": 15, "wall_ns": 890, "cow_chunks": 12, "cow_saved": 2097152}"#
        );
        let state = state_from(&finished);
        let report = render_headless(&state);
        assert!(report.contains("cow 12 chunks, 2.0 MiB saved"), "{report}");
    }

    #[test]
    fn dashboard_prefixes_ansi_redraw_and_matches_headless_body() {
        let state = state_from(STREAM);
        let dash = render_dashboard(&state);
        assert!(dash.starts_with("\x1b[H\x1b[J"));
        assert!(dash.contains("u0 read 1-bit"));
        // Same body as the headless report, minus the legend footer.
        let body = dash.trim_start_matches("\x1b[H\x1b[J");
        assert!(render_headless(&state).starts_with(body));
    }
}
