//! # mbfi-bench
//!
//! The experiment harness of the reproduction: for every table and figure in
//! the paper's evaluation section there is a binary that regenerates the
//! corresponding rows or data series on the re-implemented substrate.
//!
//! | Target | Paper artefact |
//! |--------|----------------|
//! | `table2` | Table II — candidate instruction counts per workload |
//! | `fig1`   | Fig. 1 — outcome classification, single bit-flip model |
//! | `fig2`   | Fig. 2 — SDC% for 1..30 flips of the same register |
//! | `fig3`   | Fig. 3 — activated errors before a crash (max-MBF = 30) |
//! | `fig4`   | Fig. 4 — SDC% across the max-MBF × win-size grid, inject-on-read |
//! | `fig5`   | Fig. 5 — SDC% across the grid, inject-on-write |
//! | `table3` | Table III — configuration with the highest SDC% per program |
//! | `table4` | Table IV — Transition I / II likelihoods (Fig. 6 state machine) |
//! | `run_all`| Everything above plus the RQ1–RQ5 summary |
//! | `replay_bench` | Full re-execution vs checkpointed golden-run replay (`BENCH_replay.json`; `--check` verifies byte-equivalence) |
//! | `sweep_bench` | Whole-grid sweep vs per-campaign serial grid walk (`BENCH_sweep.json`; `--check` verifies per-cell byte-equivalence) |
//! | `adaptive_bench` | Adaptive precision-targeted sampling vs fixed-n at equal realized precision (`BENCH_adaptive.json`; `--check` verifies thread-count invariance and per-cell targets) |
//! | `telemetry_bench` | Telemetry overhead at off/counters/full (`BENCH_telemetry.json`; `--check` verifies byte-identical reports and monitor/snapshot totals) |
//! | `mbfi-monitor` | Live dashboard (or `--headless` CI verifier) for the JSONL event stream a `MBFI_TELEMETRY=full` run writes |
//!
//! Campaign cells are requested on a [`harness::CampaignGrid`], deduplicated,
//! and executed as **one** `mbfi_core::Sweep` per binary; shared per-workload
//! artifacts (lowered module, golden run, checkpoint store) come from a
//! [`harness::SweepCache`].
//!
//! Every binary also accepts `--out-dir <path>` for its artefact files
//! (default: the current working directory).
//!
//! Every binary honours the environment variables described in
//! [`HarnessConfig::from_env`] so the fidelity/runtime trade-off is a knob,
//! not a code change.

pub mod artifacts;
pub mod harness;
pub mod monitor;
pub mod timing;

pub use artifacts::{Artefact, OutDir};
pub use harness::{CampaignGrid, GridRun, HarnessConfig, SweepCache, WorkloadData};
pub use monitor::{render_dashboard, render_headless};
pub use timing::{median_wall_ns, BenchSuite, Measurement};
