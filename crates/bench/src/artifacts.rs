//! Artefact output directory handling shared by all bench binaries.
//!
//! Every binary accepts `--out-dir <path>` (or `--out-dir=<path>`) and writes
//! its artefacts — rendered tables/figures, `BENCH_*.json` files — into that
//! directory instead of the current working directory.  The default stays the
//! CWD, so existing invocations keep their behaviour.

use std::path::{Path, PathBuf};

/// Where a binary writes its artefact files.
#[derive(Debug, Clone)]
pub struct OutDir {
    dir: PathBuf,
}

impl Default for OutDir {
    fn default() -> Self {
        OutDir {
            dir: PathBuf::from("."),
        }
    }
}

impl OutDir {
    /// Parse `--out-dir <path>` / `--out-dir=<path>` from the process
    /// arguments; defaults to the current working directory.
    pub fn from_args() -> OutDir {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit argument list (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> OutDir {
        let mut dir = None;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            if arg == "--out-dir" {
                dir = args.next();
            } else if let Some(path) = arg.strip_prefix("--out-dir=") {
                dir = Some(path.to_string());
            }
        }
        OutDir {
            dir: PathBuf::from(dir.unwrap_or_else(|| ".".to_string())),
        }
    }

    /// The configured directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Write one artefact file into the directory (creating it if needed),
    /// logging the destination; I/O failures are reported on stderr rather
    /// than aborting a run whose results are already on stdout.
    pub fn write(&self, file_name: &str, contents: &str) {
        let path = self.dir.join(file_name);
        let result =
            std::fs::create_dir_all(&self.dir).and_then(|()| std::fs::write(&path, contents));
        match result {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

/// Collects a binary's rendered tables/figures: everything [`Artefact::emit`]
/// prints to stdout is also accumulated and written as `<bin>.txt` into the
/// `--out-dir` directory by [`Artefact::finish`].
#[derive(Debug)]
pub struct Artefact {
    out: OutDir,
    file_name: String,
    buf: String,
}

impl Artefact {
    /// An artefact named after the binary, with the directory taken from the
    /// process arguments.
    pub fn from_args(bin: &str) -> Artefact {
        Artefact::new(bin, OutDir::from_args())
    }

    /// An artefact with an explicit output directory (testable).
    pub fn new(bin: &str, out: OutDir) -> Artefact {
        Artefact {
            out,
            file_name: format!("{bin}.txt"),
            buf: String::new(),
        }
    }

    /// Print one rendered block to stdout and record it for the file.
    pub fn emit(&mut self, text: impl AsRef<str>) {
        let text = text.as_ref();
        println!("{text}");
        self.buf.push_str(text);
        self.buf.push('\n');
    }

    /// Write the accumulated text to `<out-dir>/<bin>.txt`.
    pub fn finish(self) {
        self.out.write(&self.file_name, &self.buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artefact_accumulates_emitted_blocks() {
        let dir = std::env::temp_dir().join("mbfi-artefact-test");
        std::fs::remove_dir_all(&dir).ok();
        let out = OutDir::parse_from(vec![format!("--out-dir={}", dir.display())]);
        let mut a = Artefact::new("selftest", out);
        a.emit("first");
        a.emit("second");
        a.finish();
        assert_eq!(
            std::fs::read_to_string(dir.join("selftest.txt")).unwrap(),
            "first\nsecond\n"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_both_flag_forms_and_defaults_to_cwd() {
        let d = OutDir::parse_from(Vec::new());
        assert_eq!(d.path(), Path::new("."));
        let d = OutDir::parse_from(vec!["--out-dir".to_string(), "/tmp/x".to_string()]);
        assert_eq!(d.path(), Path::new("/tmp/x"));
        let d = OutDir::parse_from(vec!["--check".to_string(), "--out-dir=/tmp/y".to_string()]);
        assert_eq!(d.path(), Path::new("/tmp/y"));
        // A trailing flag without a value falls back to the default.
        let d = OutDir::parse_from(vec!["--out-dir".to_string()]);
        assert_eq!(d.path(), Path::new("."));
    }

    #[test]
    fn write_creates_the_directory_and_file() {
        let dir = std::env::temp_dir().join("mbfi-outdir-test");
        std::fs::remove_dir_all(&dir).ok();
        let out = OutDir::parse_from(vec![format!("--out-dir={}", dir.display())]);
        out.write("artefact.txt", "hello");
        assert_eq!(
            std::fs::read_to_string(dir.join("artefact.txt")).unwrap(),
            "hello"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
