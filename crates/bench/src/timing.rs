//! Plain-`std` benchmark harness (no criterion — the build must work fully
//! offline).
//!
//! Each benchmark target under `benches/` is a `harness = false` binary that
//! uses [`BenchSuite`] to time closures with `std::time::Instant`: every
//! measurement takes `samples` wall-clock samples of `iters` iterations each
//! and reports the **median** nanoseconds per iteration (the median is robust
//! against scheduler noise, which is all a CI smoke benchmark can hope for).
//!
//! Output is twofold:
//!
//! * a human-readable line per benchmark on stdout, and
//! * a machine-readable `BENCH_<suite>.json` file written via the
//!   hand-rolled JSON writer in [`mbfi_core::report::json`], with the full
//!   per-sample data so regressions can be analysed after the fact.
//!
//! Knobs (environment variables, so CI can dial the cost):
//!
//! * `MBFI_BENCH_SAMPLES` — samples per benchmark (default 7)
//! * `MBFI_BENCH_ITERS` — iterations per sample (default 3)
//! * `MBFI_BENCH_OUT` — directory for the `BENCH_*.json` files (default `.`)

use mbfi_core::report::Json;
use std::time::Instant;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (unique within the suite).
    pub name: String,
    /// Nanoseconds per iteration, one value per sample, sorted ascending.
    pub samples_ns: Vec<u64>,
    /// Iterations per sample.
    pub iters: usize,
    /// Optional throughput denominator (e.g. dynamic instructions per
    /// iteration), for "elements per second" style reporting.
    pub throughput_elements: Option<u64>,
}

impl Measurement {
    /// Median nanoseconds per iteration.
    pub fn median_ns(&self) -> u64 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        self.samples_ns[self.samples_ns.len() / 2]
    }

    /// Fastest sample.
    pub fn min_ns(&self) -> u64 {
        self.samples_ns.first().copied().unwrap_or(0)
    }

    /// Slowest sample.
    pub fn max_ns(&self) -> u64 {
        self.samples_ns.last().copied().unwrap_or(0)
    }

    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("name", self.name.clone());
        obj.set("median_ns", self.median_ns());
        obj.set("min_ns", self.min_ns());
        obj.set("max_ns", self.max_ns());
        obj.set("iters_per_sample", self.iters);
        obj.set("samples_ns", self.samples_ns.clone());
        if let Some(elements) = self.throughput_elements {
            obj.set("throughput_elements", elements);
            let median = self.median_ns().max(1);
            obj.set("elements_per_sec", elements as f64 * 1e9 / median as f64);
        }
        obj
    }
}

/// A named collection of benchmarks that ends in one `BENCH_<suite>.json`.
pub struct BenchSuite {
    name: String,
    samples: usize,
    iters: usize,
    out_dir: std::path::PathBuf,
    results: Vec<Measurement>,
}

impl BenchSuite {
    /// Create a suite, reading the sample/iteration/output knobs from the
    /// environment (the constructor the bench binaries use).
    pub fn new(name: impl Into<String>) -> BenchSuite {
        BenchSuite::with_config(
            name,
            env_usize("MBFI_BENCH_SAMPLES", 7),
            env_usize("MBFI_BENCH_ITERS", 3),
            std::env::var("MBFI_BENCH_OUT").unwrap_or_else(|_| ".".to_string()),
        )
    }

    /// Create a suite with explicit knobs (no process-global state).
    pub fn with_config(
        name: impl Into<String>,
        samples: usize,
        iters: usize,
        out_dir: impl Into<std::path::PathBuf>,
    ) -> BenchSuite {
        let samples = samples.max(1);
        let iters = iters.max(1);
        let name = name.into();
        println!("suite {name}: {samples} samples x {iters} iters (median of samples)");
        BenchSuite {
            name,
            samples,
            iters,
            out_dir: out_dir.into(),
            results: Vec::new(),
        }
    }

    /// Time `f`, recording median-of-N nanoseconds per iteration.
    pub fn bench<T>(&mut self, name: impl Into<String>, f: impl FnMut() -> T) {
        self.bench_with_throughput(name, None, f)
    }

    /// Like [`BenchSuite::bench`], with a throughput denominator (elements
    /// processed per iteration) for elements-per-second reporting.
    pub fn bench_with_throughput<T>(
        &mut self,
        name: impl Into<String>,
        throughput_elements: Option<u64>,
        mut f: impl FnMut() -> T,
    ) {
        let name = name.into();
        // One untimed warm-up iteration.
        std::hint::black_box(f());
        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            samples_ns.push((elapsed.as_nanos() / self.iters as u128) as u64);
        }
        samples_ns.sort_unstable();
        let m = Measurement {
            name,
            samples_ns,
            iters: self.iters,
            throughput_elements,
        };
        let throughput = match m.throughput_elements {
            Some(e) => format!(
                "  ({:.1} Melem/s)",
                e as f64 * 1e3 / m.median_ns().max(1) as f64
            ),
            None => String::new(),
        };
        println!(
            "{:<40} median {:>12} ns/iter  (min {}, max {}){throughput}",
            m.name,
            m.median_ns(),
            m.min_ns(),
            m.max_ns()
        );
        self.results.push(m);
    }

    /// Print the summary and write `BENCH_<suite>.json`; returns the path.
    pub fn finish(self) -> std::path::PathBuf {
        let mut obj = Json::object();
        obj.set("suite", self.name.clone());
        obj.set("samples", self.samples);
        obj.set("iters_per_sample", self.iters);
        obj.set(
            "results",
            Json::Arr(self.results.iter().map(Measurement::to_json).collect()),
        );
        let path = self.out_dir.join(format!("BENCH_{}.json", self.name));
        if let Err(e) = std::fs::write(&path, obj.render()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("wrote {}", path.display());
        }
        path
    }
}

/// Median wall-clock nanoseconds over `samples` runs of `f`, with one
/// untimed warm-up run — the same methodology [`BenchSuite`] uses, exposed
/// for ad-hoc comparisons (e.g. the `replay_bench` binary) so the timing
/// method lives in one place.
pub fn median_wall_ns<T>(samples: usize, mut f: impl FnMut() -> T) -> u64 {
    std::hint::black_box(f());
    let mut times: Vec<u64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Parse an environment knob, warning on stderr and falling back to
/// `default` when the variable is set but malformed (shared by
/// [`BenchSuite`], `HarnessConfig::from_env` and the bench binaries, so
/// every knob has the same warn-on-garbage behaviour).
pub fn env_parsed<T: std::str::FromStr + std::fmt::Display>(key: &str, default: T) -> T {
    match std::env::var(key) {
        Err(_) => default,
        Ok(v) => match v.trim().parse::<T>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("warning: {key}={v:?} is not a valid value; falling back to {default}");
                default
            }
        },
    }
}

/// [`env_parsed`] for the common `usize` knobs.
pub fn env_usize(key: &str, default: usize) -> usize {
    env_parsed(key, default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_min_max_come_from_sorted_samples() {
        let m = Measurement {
            name: "x".into(),
            samples_ns: vec![10, 20, 30, 40, 50],
            iters: 1,
            throughput_elements: None,
        };
        assert_eq!(m.median_ns(), 30);
        assert_eq!(m.min_ns(), 10);
        assert_eq!(m.max_ns(), 50);
    }

    #[test]
    fn suite_measures_and_writes_json() {
        let dir = std::env::temp_dir().join("mbfi-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut suite = BenchSuite::with_config("selftest", 3, 2, &dir);
        let mut acc = 0u64;
        suite.bench("spin", || {
            for i in 0..1000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc
        });
        suite.bench_with_throughput("with_tp", Some(1000), || 1u32);
        let path = suite.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"suite\":\"selftest\""));
        assert!(text.contains("\"name\":\"spin\""));
        assert!(text.contains("\"elements_per_sec\""));
        std::fs::remove_file(&path).ok();
    }
}
