//! Shared machinery for the per-table / per-figure binaries.
//!
//! Since the sweep refactor the harness is split into three layers:
//!
//! 1. **[`SweepCache`]** — per-`(workload, input size)` artifacts (built IR
//!    module, lowered bytecode, golden run, checkpoint store), built once on
//!    first request and shared by every campaign that touches the workload.
//! 2. **[`CampaignGrid`]** — a request/run/extract pipeline: binaries
//!    *request* the campaign cells their figures need (duplicates collapse
//!    onto one cell), `run` submits every cell as **one**
//!    [`mbfi_core::Sweep`] on a global work-stealing worker pool, and the
//!    extractors below pull each figure's slice out of the [`GridRun`].
//! 3. **Renderers** (`fig1`, `fig2`, ..., `table4`) — unchanged: they turn
//!    extracted results into the paper's tables and figures.
//!
//! The sweep is deterministic (see `mbfi_core::sweep`), so every artifact is
//! byte-identical to running each cell through `Campaign::run_compiled`
//! serially — the pre-refactor behaviour.

use std::collections::HashMap;

use crate::timing::env_parsed;
use mbfi_core::cluster::{MAX_MBF_VALUES, WIN_SIZE_VALUES};
use mbfi_core::pruning::{ActivationAnalysis, LocationAnalysis, PessimisticAnalysis};
use mbfi_core::replay::{CheckpointConfig, CheckpointStore};
use mbfi_core::report::{FigureData, Series, TextTable};
use mbfi_core::space::{ErrorSpace, REGISTER_BITS};
use mbfi_core::{
    Campaign, CampaignResult, CampaignSpec, CampaignWarning, FaultModel, GoldenRun, IntervalMethod,
    Metric, Outcome, Precision, Sweep, SweepCampaign, SweepConfig, SweepUnit, Technique,
    TelemetryHub, TelemetryLevel, TelemetrySink, TelemetrySnapshot, WinSize,
};
use mbfi_ir::{CompiledModule, Module};
use mbfi_workloads::{all_workloads, InputSize, Workload};

/// Runtime configuration of the harness, read from environment variables so
/// that every binary shares the same knobs.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Experiments per campaign (the paper uses 10,000; default here is 60 so
    /// the full suite completes in minutes on a laptop).
    pub experiments: usize,
    /// Base seed for all campaigns.
    pub seed: u64,
    /// Input size for every workload.
    pub size: InputSize,
    /// Optional comma-separated workload filter.
    pub workload_filter: Option<Vec<String>>,
    /// Hang threshold as a multiple of the golden run length.
    pub hang_factor: u64,
    /// Worker threads for the sweep pool (0 = all cores).
    pub threads: usize,
    /// Use the full 10 × 9 parameter grid instead of the coarse sub-grid.
    pub full_grid: bool,
    /// Run campaigns through the checkpointed golden-run replay engine.
    /// On by default since the sweep refactor: one store per workload is
    /// shared read-only by every campaign of the grid, so the capture cost
    /// amortizes across the whole sweep (results are byte-identical either
    /// way, by the replay contract).
    pub replay: bool,
    /// Checkpoint interval in dynamic instructions; `None` picks a
    /// per-workload interval (1/128th of the golden run length).
    pub replay_interval: Option<u64>,
    /// Memory budget for each workload's checkpoint store, in bytes.
    pub replay_budget_bytes: usize,
    /// Experiments per stealable sweep batch (0 = auto).
    pub sweep_batch: usize,
    /// Adaptive precision-targeted sampling: `Some` stops every sweep cell
    /// once its SDC and Detection 95 % interval half-widths meet the target
    /// (cell budget = `precision.max_experiments`; `experiments` is
    /// ignored).  `None` — the default, so figure regeneration stays
    /// byte-reproducible at a known fixed n — runs every cell at
    /// `experiments`.
    pub precision: Option<Precision>,
    /// Copy-on-write snapshot forking (`true` by default).  Off forces the
    /// deep-copy restore path; results are byte-identical either way (the CoW
    /// contract), so the knob exists for A/B benchmarking only.
    pub cow: bool,
    /// Telemetry recording level for grid sweeps (`Off` by default; results
    /// are byte-identical at every level — telemetry only observes).
    pub telemetry: TelemetryLevel,
    /// Where [`TelemetryLevel::Full`] grid runs write their JSONL event
    /// stream (tail it with `mbfi-monitor`, or verify it with
    /// `mbfi-monitor --headless`).
    pub telemetry_out: String,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            experiments: 60,
            seed: 0x0B17,
            size: InputSize::Tiny,
            workload_filter: None,
            hang_factor: 20,
            threads: 0,
            full_grid: false,
            replay: true,
            replay_interval: None,
            replay_budget_bytes: CheckpointConfig::default().max_bytes,
            sweep_batch: 0,
            cow: true,
            precision: None,
            telemetry: TelemetryLevel::Off,
            telemetry_out: "telemetry.jsonl".to_string(),
        }
    }
}

impl HarnessConfig {
    /// Build a configuration from environment variables:
    ///
    /// * `MBFI_EXPERIMENTS` — experiments per campaign (default 60)
    /// * `MBFI_SEED` — base seed (default 0x0B17)
    /// * `MBFI_SIZE` — `tiny` or `small` (default tiny)
    /// * `MBFI_WORKLOADS` — comma-separated names (default: all 15)
    /// * `MBFI_HANG_FACTOR` — hang threshold multiplier (default 20)
    /// * `MBFI_THREADS` — sweep worker threads (default: all cores)
    /// * `MBFI_GRID` — `full` for the 10 × 9 grid, `coarse` for the sub-grid
    ///   used by default
    /// * `MBFI_REPLAY` — `off` to re-execute every experiment from
    ///   instruction 0, `on` (the default) for checkpointed replay with an
    ///   auto-picked interval, or a number for an explicit checkpoint
    ///   interval
    /// * `MBFI_REPLAY_BUDGET_MB` — checkpoint-store memory budget per
    ///   workload in MiB (default 64)
    /// * `MBFI_SWEEP_BATCH` — experiments per stealable sweep batch
    ///   (default: auto)
    /// * `MBFI_COW` — `off` to force the deep-copy snapshot restore path,
    ///   `on` (the default) for copy-on-write forking.  Results are
    ///   byte-identical either way; the knob is for A/B benchmarking.
    ///   Applied process-wide via [`mbfi_vm::set_cow_enabled`].
    /// * `MBFI_PRECISION` — `off` (the default: fixed-n sampling with
    ///   `MBFI_EXPERIMENTS` per cell) or
    ///   `<pct>[,<min>[,<max>[,wald|wilson]]]` for adaptive
    ///   precision-targeted sampling: stop each cell once the SDC and
    ///   Detection 95 % interval half-widths are ≤ `<pct>` points (never
    ///   before `<min>` experiments, never beyond `<max>`; unspecified
    ///   fields keep the [`Precision`] defaults).  E.g.
    ///   `MBFI_PRECISION=2.5` or `MBFI_PRECISION=2,100,5000,wilson`.
    /// * `MBFI_TELEMETRY` — `off` (default), `counters` for the near-zero-
    ///   cost metrics registry, or `full` for metrics plus the structured
    ///   JSONL event stream.  Results are byte-identical at every level.
    /// * `MBFI_TELEMETRY_OUT` — path for the `full`-level JSONL event stream
    ///   (default `telemetry.jsonl` in the working directory)
    ///
    /// A set-but-malformed value falls back to the default with a one-line
    /// warning on stderr naming the variable and the value kept.
    pub fn from_env() -> HarnessConfig {
        let mut cfg = HarnessConfig::default();
        cfg.experiments = env_parsed("MBFI_EXPERIMENTS", cfg.experiments);
        cfg.seed = env_parsed("MBFI_SEED", cfg.seed);
        if let Ok(v) = std::env::var("MBFI_SIZE") {
            cfg.size = match v.to_ascii_lowercase().as_str() {
                "small" => InputSize::Small,
                "tiny" => InputSize::Tiny,
                _ => {
                    eprintln!(
                        "warning: MBFI_SIZE={v:?} is not \"tiny\" or \"small\"; \
                         falling back to {}",
                        cfg.size
                    );
                    cfg.size
                }
            };
        }
        if let Ok(v) = std::env::var("MBFI_WORKLOADS") {
            let names: Vec<String> = v
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if !names.is_empty() {
                cfg.workload_filter = Some(names);
            }
        }
        cfg.hang_factor = env_parsed("MBFI_HANG_FACTOR", cfg.hang_factor);
        cfg.threads = env_parsed("MBFI_THREADS", cfg.threads);
        if let Ok(v) = std::env::var("MBFI_GRID") {
            cfg.full_grid = match v.to_ascii_lowercase().as_str() {
                "full" => true,
                "coarse" => false,
                _ => {
                    eprintln!(
                        "warning: MBFI_GRID={v:?} is not \"full\" or \"coarse\"; \
                         falling back to {}",
                        if cfg.full_grid { "full" } else { "coarse" }
                    );
                    cfg.full_grid
                }
            };
        }
        if let Ok(v) = std::env::var("MBFI_REPLAY") {
            match v.to_ascii_lowercase().as_str() {
                "on" | "auto" | "1" | "true" => cfg.replay = true,
                "off" | "0" | "false" | "no" => cfg.replay = false,
                other => match other.parse::<u64>() {
                    Ok(n) => {
                        cfg.replay = true;
                        cfg.replay_interval = Some(n);
                    }
                    Err(_) => {
                        eprintln!(
                            "warning: MBFI_REPLAY={v:?} is not on/off or an interval; \
                             falling back to {}",
                            if cfg.replay { "on" } else { "off" }
                        );
                    }
                },
            }
        }
        let budget_mb = env_parsed("MBFI_REPLAY_BUDGET_MB", cfg.replay_budget_bytes >> 20);
        cfg.replay_budget_bytes = budget_mb << 20;
        cfg.sweep_batch = env_parsed("MBFI_SWEEP_BATCH", cfg.sweep_batch);
        if let Ok(v) = std::env::var("MBFI_COW") {
            match v.to_ascii_lowercase().as_str() {
                "on" | "1" | "true" | "yes" => cfg.cow = true,
                "off" | "0" | "false" | "no" => cfg.cow = false,
                _ => eprintln!(
                    "warning: MBFI_COW={v:?} is not on/off; falling back to {}",
                    if cfg.cow { "on" } else { "off" }
                ),
            }
        }
        mbfi_vm::set_cow_enabled(cfg.cow);
        if let Ok(v) = std::env::var("MBFI_PRECISION") {
            match parse_precision(&v) {
                Some(p) => cfg.precision = p,
                None => eprintln!(
                    "warning: MBFI_PRECISION={v:?} is not \"off\" or \
                     \"<pct>[,<min>[,<max>[,wald|wilson]]]\"; falling back to fixed-n sampling"
                ),
            }
        }
        if let Ok(v) = std::env::var("MBFI_TELEMETRY") {
            match TelemetryLevel::parse(&v) {
                Some(level) => cfg.telemetry = level,
                None => eprintln!(
                    "warning: MBFI_TELEMETRY={v:?} is not off/counters/full; \
                     falling back to {}",
                    cfg.telemetry.label()
                ),
            }
        }
        if let Ok(v) = std::env::var("MBFI_TELEMETRY_OUT") {
            if !v.trim().is_empty() {
                cfg.telemetry_out = v;
            }
        }
        cfg
    }

    /// The selected workloads.
    pub fn workloads(&self) -> Vec<Box<dyn Workload>> {
        let all = all_workloads();
        match &self.workload_filter {
            None => all,
            Some(names) => all
                .into_iter()
                .filter(|w| names.iter().any(|n| n.eq_ignore_ascii_case(w.name())))
                .collect(),
        }
    }

    /// The `max-MBF` values of the active grid.
    pub fn max_mbf_values(&self) -> Vec<u32> {
        if self.full_grid {
            MAX_MBF_VALUES.to_vec()
        } else {
            vec![2, 3, 4, 5, 10, 30]
        }
    }

    /// The multi-register `win-size` values of the active grid.
    pub fn win_size_values(&self) -> Vec<WinSize> {
        if self.full_grid {
            WIN_SIZE_VALUES
                .iter()
                .copied()
                .filter(|w| !w.is_same_register())
                .collect()
        } else {
            vec![
                WinSize::Fixed(1),
                WinSize::Fixed(10),
                WinSize::Fixed(100),
                WinSize::Fixed(1000),
            ]
        }
    }

    /// One-line description of the sampling mode for the bins' stderr
    /// banners: the fixed experiment count, or the adaptive precision spec
    /// (under which `experiments` is ignored).
    pub fn sampling_label(&self) -> String {
        match &self.precision {
            Some(p) => format!(
                "adaptive ±{} pts ({}, {}..{} exps/cell)",
                p.target_half_width_pct, p.interval, p.min_experiments, p.max_experiments
            ),
            None => format!("{} experiments/campaign", self.experiments),
        }
    }

    /// The sweep executor knobs this configuration asks for.
    pub fn sweep_config(&self) -> SweepConfig {
        SweepConfig {
            threads: self.threads,
            batch_size: self.sweep_batch,
            keep_records: false,
            precision: self.precision,
        }
    }

    /// The spec this configuration gives one campaign cell (shared by the
    /// grid, `sweep_bench`'s serial baseline and the equivalence tests, so
    /// the sweep-vs-serial comparisons can never drift).
    pub fn campaign_spec(&self, technique: Technique, model: FaultModel) -> CampaignSpec {
        CampaignSpec {
            technique,
            model,
            experiments: self.experiments,
            seed: self.seed,
            hang_factor: self.hang_factor,
            threads: self.threads,
        }
    }
}

/// Parse an `MBFI_PRECISION` value: `Some(None)` for `off`,
/// `Some(Some(precision))` for `<pct>[,<min>[,<max>[,wald|wilson]]]`, and
/// `None` when the value is malformed (the caller warns and keeps fixed-n).
pub fn parse_precision(value: &str) -> Option<Option<Precision>> {
    let value = value.trim();
    match value.to_ascii_lowercase().as_str() {
        "off" | "0" | "false" | "no" | "none" => return Some(None),
        _ => {}
    }
    let mut parts = value.split(',').map(str::trim);
    let mut p = Precision::with_target(parts.next()?.parse().ok().filter(|t| *t > 0.0)?);
    if let Some(min) = parts.next() {
        p.min_experiments = min.parse().ok()?;
    }
    if let Some(max) = parts.next() {
        p.max_experiments = max.parse().ok()?;
    }
    if let Some(interval) = parts.next() {
        p.interval = match interval.to_ascii_lowercase().as_str() {
            "wald" => IntervalMethod::Wald,
            "wilson" => IntervalMethod::Wilson,
            _ => return None,
        };
    }
    if parts.next().is_some() {
        return None;
    }
    Some(Some(p))
}

/// A workload prepared for campaigns: its module (tree and compiled forms),
/// its golden run, and (when replay is enabled) its golden-run checkpoint
/// store.
pub struct WorkloadData {
    /// Workload name.
    pub name: String,
    /// Package within its suite.
    pub package: String,
    /// One-line description.
    pub description: String,
    /// The built IR module (kept for analyses that need the tree form).
    pub module: Module,
    /// The flat bytecode every campaign executes — lowered once per workload
    /// and shared by all campaigns and worker threads.
    pub code: CompiledModule,
    /// The fault-free profiling run.
    pub golden: GoldenRun,
    /// Golden-run checkpoints shared by every campaign on this workload.
    pub store: Option<CheckpointStore>,
}

impl WorkloadData {
    /// Run one campaign on this workload through the compiled pipeline, and
    /// through the checkpoint store when one was captured.  Replay-on and
    /// replay-off results are byte-identical by contract, so figures and
    /// tables do not depend on the knob.
    pub fn campaign(&self, spec: &CampaignSpec) -> CampaignResult {
        Campaign::run_compiled_with_store(&self.code, &self.golden, spec, self.store.as_ref())
    }

    /// The borrowed artifact bundle a sweep executes this workload through.
    pub fn sweep_unit(&self) -> SweepUnit<'_> {
        SweepUnit {
            code: &self.code,
            golden: &self.golden,
            store: self.store.as_ref(),
        }
    }
}

/// Shared per-workload artifacts, keyed by `(workload name, input size)`.
///
/// The first request for a key builds the module, lowers it, captures the
/// golden run and (when [`HarnessConfig::replay`] is on) lazily captures one
/// checkpoint store; every later request returns the same entry.  One cache
/// therefore backs a whole grid of campaigns — and several grids in one
/// process, even at different input sizes — without ever re-deriving an
/// artifact.
#[derive(Default)]
pub struct SweepCache {
    entries: HashMap<(String, InputSize), usize>,
    data: Vec<WorkloadData>,
    hits: u64,
    misses: u64,
}

impl SweepCache {
    /// An empty cache.
    pub fn new() -> SweepCache {
        SweepCache::default()
    }

    /// Index of the artifacts for `(workload, size)`, building them on the
    /// first request.
    pub fn get_or_build(
        &mut self,
        cfg: &HarnessConfig,
        workload: &dyn Workload,
        size: InputSize,
    ) -> usize {
        let key = (workload.name().to_string(), size);
        if let Some(&index) = self.entries.get(&key) {
            self.hits += 1;
            return index;
        }
        self.misses += 1;
        let module = workload.build_module(size);
        let code = CompiledModule::lower(&module);
        let golden = GoldenRun::capture_compiled(&code)
            .unwrap_or_else(|e| panic!("golden run of {} failed: {e}", workload.name()));
        let store = cfg.replay.then(|| {
            let config = match cfg.replay_interval {
                Some(interval) => CheckpointConfig {
                    interval,
                    max_bytes: cfg.replay_budget_bytes,
                },
                None => CheckpointConfig::auto_for(&golden, cfg.replay_budget_bytes),
            };
            CheckpointStore::capture_compiled(&code, &golden, config)
                .unwrap_or_else(|e| panic!("checkpoint capture of {} failed: {e}", workload.name()))
        });
        let index = self.data.len();
        self.data.push(WorkloadData {
            name: workload.name().to_string(),
            package: workload.package().to_string(),
            description: workload.description().to_string(),
            module,
            code,
            golden,
            store,
        });
        self.entries.insert(key, index);
        index
    }

    /// The cached artifacts, in build order.
    pub fn data(&self) -> &[WorkloadData] {
        &self.data
    }

    /// `(hits, misses)` of [`SweepCache::get_or_build`] so far: hits are
    /// requests that reused an already-built `(workload, size)` entry.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Consume the cache, keeping the artifacts.
    pub fn into_data(self) -> Vec<WorkloadData> {
        self.data
    }
}

/// Build modules, lower them, capture golden runs (and checkpoint stores,
/// when replay is enabled) for the configured workloads, via a fresh
/// [`SweepCache`].
pub fn prepare(cfg: &HarnessConfig) -> Vec<WorkloadData> {
    let mut cache = SweepCache::new();
    for w in cfg.workloads() {
        cache.get_or_build(cfg, w.as_ref(), cfg.size);
    }
    cache.into_data()
}

// ---------------------------------------------------------------------------
// The campaign grid: request cells, run one sweep, extract figures.
// ---------------------------------------------------------------------------

/// A whole grid of campaign cells over prepared workloads, submitted as one
/// sweep.  Requesting the same `(workload, technique, model)` cell twice —
/// e.g. the single-bit campaign that Fig. 1, Fig. 2 and Fig. 4/5 all need —
/// collapses onto one cell, executed once.
pub struct CampaignGrid<'a> {
    cfg: &'a HarnessConfig,
    data: Vec<WorkloadData>,
    cells: Vec<SweepCampaign>,
    index: HashMap<(usize, Technique, FaultModel), usize>,
    requested: u64,
}

impl<'a> CampaignGrid<'a> {
    /// A grid over the configured workloads (prepared via [`prepare`]).
    pub fn new(cfg: &'a HarnessConfig) -> CampaignGrid<'a> {
        Self::from_data(cfg, prepare(cfg))
    }

    /// A grid over explicitly prepared workloads.
    pub fn from_data(cfg: &'a HarnessConfig, data: Vec<WorkloadData>) -> CampaignGrid<'a> {
        CampaignGrid {
            cfg,
            data,
            cells: Vec::new(),
            index: HashMap::new(),
            requested: 0,
        }
    }

    /// The prepared workloads this grid runs on.
    pub fn data(&self) -> &[WorkloadData] {
        &self.data
    }

    /// Number of distinct cells requested so far.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Request one campaign cell (deduplicating).
    pub fn request(&mut self, workload: usize, technique: Technique, model: FaultModel) {
        self.requested += 1;
        let key = (workload, technique, model);
        if self.index.contains_key(&key) {
            return;
        }
        self.index.insert(key, self.cells.len());
        self.cells.push(SweepCampaign {
            unit: workload,
            spec: self.cfg.campaign_spec(technique, model),
        });
    }

    /// Request the single bit-flip campaigns of Fig. 1 (both techniques, all
    /// workloads).
    pub fn request_single_bit(&mut self) {
        for w in 0..self.data.len() {
            for technique in Technique::ALL {
                self.request(w, technique, FaultModel::single_bit());
            }
        }
    }

    /// Request the Fig. 2 same-register sweep for one technique: the
    /// single-bit baseline plus every configured `max-MBF` at win-size 0.
    pub fn request_same_register(&mut self, technique: Technique) {
        for w in 0..self.data.len() {
            self.request(w, technique, FaultModel::single_bit());
            for &m in &self.cfg.max_mbf_values() {
                self.request(w, technique, FaultModel::multi_bit(m, WinSize::Fixed(0)));
            }
        }
    }

    /// Request the Fig. 3 activation campaigns for one technique: max-MBF 30
    /// over every configured multi-register window.
    pub fn request_activation(&mut self, technique: Technique) {
        for w in 0..self.data.len() {
            for &win in &self.cfg.win_size_values() {
                self.request(w, technique, FaultModel::multi_bit(30, win));
            }
        }
    }

    /// Request the Fig. 4/5 multi-register grid for one technique: the
    /// single-bit baseline plus every `(max-MBF, win-size)` point.
    pub fn request_multi_register(&mut self, technique: Technique) {
        for w in 0..self.data.len() {
            self.request(w, technique, FaultModel::single_bit());
            for &m in &self.cfg.max_mbf_values() {
                for &win in &self.cfg.win_size_values() {
                    self.request(w, technique, FaultModel::multi_bit(m, win));
                }
            }
        }
    }

    /// Request every cell `run_all` needs (all figures and tables).
    pub fn request_artifact_grid(&mut self) {
        self.request_single_bit();
        for technique in Technique::ALL {
            self.request_same_register(technique);
            self.request_activation(technique);
            self.request_multi_register(technique);
        }
    }

    /// Submit every requested cell as one sweep and collect the results.
    ///
    /// With [`HarnessConfig::telemetry`] above `off`, the sweep runs through
    /// a [`TelemetryHub`]: the final snapshot rides along in
    /// [`GridRun::telemetry`], a one-line summary goes to stderr, and at the
    /// `full` level the JSONL event stream is written to
    /// [`HarnessConfig::telemetry_out`].  Results are byte-identical to a
    /// telemetry-off run at every level.
    pub fn run(self) -> GridRun {
        let CampaignGrid {
            cfg,
            data,
            cells,
            index,
            requested,
        } = self;
        let config = cfg.sweep_config();
        let units: Vec<SweepUnit<'_>> = data.iter().map(WorkloadData::sweep_unit).collect();
        let (report, telemetry) = if cfg.telemetry > TelemetryLevel::Off {
            let hub = TelemetryHub::new(cfg.telemetry);
            let report = Sweep::run_with(&units, &cells, &config, &hub);
            // Cell-request dedup is the grid's artifact cache: every request
            // beyond the first for a `(workload, technique, model)` key
            // reused an executed cell.
            hub.add(Metric::CacheHits, requested - cells.len() as u64);
            hub.add(Metric::CacheMisses, cells.len() as u64);
            if cfg.telemetry == TelemetryLevel::Full {
                let jsonl = hub.drain_jsonl();
                match std::fs::write(&cfg.telemetry_out, &jsonl) {
                    Ok(()) => eprintln!(
                        "telemetry: wrote {} events to {}",
                        jsonl.lines().count(),
                        cfg.telemetry_out
                    ),
                    Err(e) => {
                        eprintln!("warning: cannot write {}: {e}", cfg.telemetry_out)
                    }
                }
            }
            let snapshot = hub.snapshot();
            eprintln!(
                "telemetry: {} experiments in {} batches ({} stolen), \
                 {:.0} exp/s, {} parks, cache {}/{} hit/miss",
                snapshot.counter(Metric::ExperimentsRun),
                snapshot.counter(Metric::BatchesRun),
                snapshot.counter(Metric::BatchesStolen),
                snapshot.exps_per_sec(),
                snapshot.counter(Metric::WorkerParks),
                snapshot.counter(Metric::CacheHits),
                snapshot.counter(Metric::CacheMisses),
            );
            (report, Some(snapshot))
        } else {
            (Sweep::run(&units, &cells, &config), None)
        };
        drop(units);
        GridRun {
            data,
            results: report.results.into_iter().map(|r| r.result).collect(),
            warnings: report.warnings,
            index,
            telemetry,
        }
    }
}

/// The executed grid: per-workload artifacts plus one [`CampaignResult`] per
/// requested cell, looked up by `(workload, technique, model)`.
pub struct GridRun {
    /// The prepared workloads, in grid order.
    pub data: Vec<WorkloadData>,
    /// Distinct validation warnings across the whole sweep.
    pub warnings: Vec<CampaignWarning>,
    /// Final telemetry snapshot when the grid ran with
    /// [`HarnessConfig::telemetry`] above `off` (`None` otherwise).
    pub telemetry: Option<TelemetrySnapshot>,
    results: Vec<CampaignResult>,
    index: HashMap<(usize, Technique, FaultModel), usize>,
}

impl GridRun {
    /// The result of one cell; panics if the cell was never requested.
    pub fn get(&self, workload: usize, technique: Technique, model: FaultModel) -> &CampaignResult {
        let slot = self
            .index
            .get(&(workload, technique, model))
            .unwrap_or_else(|| {
                panic!(
                "campaign cell ({}, {technique}, {}) was not requested before CampaignGrid::run",
                self.data
                    .get(workload)
                    .map(|w| w.name.as_str())
                    .unwrap_or("?"),
                model.label()
            )
            });
        &self.results[*slot]
    }

    /// Number of executed cells.
    pub fn cell_count(&self) -> usize {
        self.results.len()
    }

    /// Total experiments across all executed cells.
    pub fn total_experiments(&self) -> u64 {
        self.results.iter().map(CampaignResult::total).sum()
    }

    /// Every executed cell's result, in request order.
    pub fn results(&self) -> &[CampaignResult] {
        &self.results
    }

    /// Summary of an adaptive grid: `(cells that met the target, cells that
    /// exhausted max_experiments, worst realized half-width in points)`.
    /// `None` when the grid ran fixed-n.
    pub fn adaptive_summary(&self) -> Option<(usize, usize, f64)> {
        let mut met = 0usize;
        let mut capped = 0usize;
        let mut worst: f64 = 0.0;
        let mut any = false;
        for r in &self.results {
            if let Some(status) = &r.adaptive {
                any = true;
                if status.reached_target {
                    met += 1;
                } else {
                    capped += 1;
                }
                worst = worst.max(status.realized_half_width_pct());
            }
        }
        any.then_some((met, capped, worst))
    }
}

// ---------------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------------

/// Table II: candidate instruction counts per workload and technique.
pub fn table2(cfg: &HarnessConfig, data: &[WorkloadData]) -> TextTable {
    let mut table = TextTable::new(
        format!(
            "Table II — candidate fault-injection instructions ({} input)",
            cfg.size
        ),
        &[
            "program",
            "package",
            "dynamic instrs",
            "inject-on-read",
            "inject-on-write",
            "1-bit space (log10)",
        ],
    );
    for w in data {
        let read = w.golden.candidates(Technique::InjectOnRead);
        let write = w.golden.candidates(Technique::InjectOnWrite);
        let space = ErrorSpace::new(read, REGISTER_BITS);
        table.add_row(vec![
            w.name.clone(),
            w.package.clone(),
            w.golden.dynamic_instrs.to_string(),
            read.to_string(),
            write.to_string(),
            format!("{:.2}", space.single_bit_log10()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 1 — single bit-flip outcome classification
// ---------------------------------------------------------------------------

/// Extract the single-bit campaigns per workload: `(name, read, write)`.
pub fn single_bit_results(run: &GridRun) -> Vec<(String, CampaignResult, CampaignResult)> {
    run.data
        .iter()
        .enumerate()
        .map(|(w, data)| {
            let read = run
                .get(w, Technique::InjectOnRead, FaultModel::single_bit())
                .clone();
            let write = run
                .get(w, Technique::InjectOnWrite, FaultModel::single_bit())
                .clone();
            (data.name.clone(), read, write)
        })
        .collect()
}

/// Fig. 1: outcome classification tables for both techniques.
pub fn fig1(results: &[(String, CampaignResult, CampaignResult)]) -> Vec<(Technique, TextTable)> {
    Technique::ALL
        .iter()
        .map(|technique| {
            let mut table = TextTable::new(
                format!("Fig. 1 — single bit-flip outcome classification ({technique})"),
                &["program", "SDC%", "±", "Detection%", "Benign%"],
            );
            for (name, read, write) in results {
                let r = if technique.is_write() { write } else { read };
                let sdc = r.sdc_proportion();
                table.add_row(vec![
                    name.clone(),
                    format!("{:.2}", r.sdc_pct()),
                    format!("{:.2}", sdc.half_width_pct()),
                    format!("{:.2}", r.counts.detection_pct()),
                    format!("{:.2}", r.counts.fraction(Outcome::Benign) * 100.0),
                ]);
            }
            (*technique, table)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 2 — multiple bits of the same register (win-size = 0)
// ---------------------------------------------------------------------------

/// Extract the same-register sweep per workload: campaigns for max-MBF = 1
/// (single) followed by the configured multi-bit values, all at win-size = 0.
pub fn same_register_results(
    cfg: &HarnessConfig,
    run: &GridRun,
    technique: Technique,
) -> Vec<(String, Vec<CampaignResult>)> {
    run.data
        .iter()
        .enumerate()
        .map(|(w, data)| {
            let mut results = vec![run.get(w, technique, FaultModel::single_bit()).clone()];
            for &m in &cfg.max_mbf_values() {
                results.push(
                    run.get(w, technique, FaultModel::multi_bit(m, WinSize::Fixed(0)))
                        .clone(),
                );
            }
            (data.name.clone(), results)
        })
        .collect()
}

/// Fig. 2: SDC% per program for 1..max flips of the same register.
pub fn fig2(technique: Technique, results: &[(String, Vec<CampaignResult>)]) -> TextTable {
    let headers: Vec<String> = std::iter::once("program".to_string())
        .chain(
            results
                .first()
                .map(|(_, rs)| rs.iter().map(|r| r.spec.model.label()).collect::<Vec<_>>())
                .unwrap_or_default(),
        )
        .collect();
    let mut table = TextTable::new(
        format!("Fig. 2 — SDC% for multiple bits of the same register ({technique})"),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for (name, rs) in results {
        let mut row = vec![name.clone()];
        row.extend(rs.iter().map(|r| format!("{:.2}", r.sdc_pct())));
        table.add_row(row);
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 3 — activated errors at max-MBF = 30
// ---------------------------------------------------------------------------

/// Extract the max-MBF = 30 campaigns over all configured win-size > 0 values.
pub fn activation_results(
    cfg: &HarnessConfig,
    run: &GridRun,
    technique: Technique,
) -> Vec<CampaignResult> {
    let mut out = Vec::new();
    for w in 0..run.data.len() {
        for &win in &cfg.win_size_values() {
            out.push(
                run.get(w, technique, FaultModel::multi_bit(30, win))
                    .clone(),
            );
        }
    }
    out
}

/// Fig. 3: distribution of activated errors before a crash at max-MBF = 30.
pub fn fig3(technique: Technique, campaigns: &[CampaignResult]) -> (TextTable, ActivationAnalysis) {
    let crash = ActivationAnalysis::crashes_from_campaigns(campaigns.iter());
    let mut table = TextTable::new(
        format!("Fig. 3 — activated errors before a crash, max-MBF = 30 ({technique})"),
        &["activated errors", "fraction of crashes"],
    );
    for k in 0..crash.histogram.len() {
        if crash.histogram[k] == 0 {
            continue;
        }
        table.add_row(vec![k.to_string(), format!("{:.3}", crash.fraction(k))]);
    }
    let (le5, six_to_ten, gt10) = crash.fig3_buckets();
    table.add_row(vec!["<= 5 (bucket)".into(), format!("{le5:.3}")]);
    table.add_row(vec!["6..10 (bucket)".into(), format!("{six_to_ten:.3}")]);
    table.add_row(vec!["> 10 (bucket)".into(), format!("{gt10:.3}")]);
    (table, crash)
}

// ---------------------------------------------------------------------------
// Fig. 4 / Fig. 5 — SDC% across the max-MBF × win-size grid
// ---------------------------------------------------------------------------

/// Raw multi-register sweep for one workload: the single-bit baseline plus a
/// campaign per `(max-MBF, win-size)` point of the active grid.
pub struct MultiRegisterSweep {
    /// Workload name.
    pub name: String,
    /// Single bit-flip baseline.
    pub single: CampaignResult,
    /// Multi-bit campaigns over the grid.
    pub grid: Vec<CampaignResult>,
}

/// Extract the multi-register sweep (win-size > 0) for every workload.
pub fn multi_register_results(
    cfg: &HarnessConfig,
    run: &GridRun,
    technique: Technique,
) -> Vec<MultiRegisterSweep> {
    run.data
        .iter()
        .enumerate()
        .map(|(w, data)| {
            let single = run.get(w, technique, FaultModel::single_bit()).clone();
            let mut grid = Vec::new();
            for &m in &cfg.max_mbf_values() {
                for &win in &cfg.win_size_values() {
                    grid.push(run.get(w, technique, FaultModel::multi_bit(m, win)).clone());
                }
            }
            MultiRegisterSweep {
                name: data.name.clone(),
                single,
                grid,
            }
        })
        .collect()
}

/// Fig. 4 (read) / Fig. 5 (write): per-workload SDC% series, one series per
/// win-size, indexed by max-MBF, with the single-bit value as the first point.
pub fn fig45(technique: Technique, sweeps: &[MultiRegisterSweep]) -> Vec<FigureData> {
    let fig_no = if technique.is_write() { 5 } else { 4 };
    sweeps
        .iter()
        .map(|sweep| {
            let mut fig = FigureData::new(format!(
                "Fig. {fig_no} — SDC% targeting multiple registers ({technique}) — {}",
                sweep.name
            ));
            // Collect the win sizes present in the grid, preserving order.
            let mut wins: Vec<WinSize> = Vec::new();
            for r in &sweep.grid {
                if !wins.contains(&r.spec.model.win_size) {
                    wins.push(r.spec.model.win_size);
                }
            }
            for win in wins {
                let mut series = Series::new(format!("w={}", win.label()));
                series.push("1", sweep.single.sdc_pct());
                for r in sweep.grid.iter().filter(|r| r.spec.model.win_size == win) {
                    series.push(r.spec.model.max_mbf.to_string(), r.sdc_pct());
                }
                fig.series.push(series);
            }
            fig
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table III — configurations causing the highest SDC%
// ---------------------------------------------------------------------------

/// Table III: the `(max-MBF, win-size)` pair with the highest SDC% per program
/// and technique, alongside the single-bit baseline.
pub fn table3(read: &[MultiRegisterSweep], write: &[MultiRegisterSweep]) -> TextTable {
    let analysis = PessimisticAnalysis::default();
    let mut table = TextTable::new(
        "Table III — configuration with the highest SDC% among multi-bit campaigns",
        &[
            "program",
            "read: max-MBF",
            "read: win-size",
            "read: SDC%",
            "read: 1-bit SDC%",
            "write: max-MBF",
            "write: win-size",
            "write: SDC%",
            "write: 1-bit SDC%",
        ],
    );
    for (r, w) in read.iter().zip(write) {
        let re = analysis.table3_entry(&r.grid);
        let we = analysis.table3_entry(&w.grid);
        table.add_row(vec![
            r.name.clone(),
            re.model.max_mbf.to_string(),
            re.model.win_size.label(),
            format!("{:.2}", re.sdc_pct),
            format!("{:.2}", r.single.sdc_pct()),
            we.model.max_mbf.to_string(),
            we.model.win_size.label(),
            format!("{:.2}", we.sdc_pct),
            format!("{:.2}", w.single.sdc_pct()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Table IV — Transition I / II likelihoods (Fig. 6)
// ---------------------------------------------------------------------------

/// Table IV: Transition I (Detection→SDC) and Transition II (Benign→SDC)
/// likelihoods using each workload's worst-case configuration from Table III.
pub fn table4(
    cfg: &HarnessConfig,
    data: &[WorkloadData],
    read: &[MultiRegisterSweep],
    write: &[MultiRegisterSweep],
) -> (TextTable, Vec<(String, LocationAnalysis, LocationAnalysis)>) {
    let analysis = PessimisticAnalysis::default();
    let mut table = TextTable::new(
        "Table IV — likelihood of Transition I (Detection→SDC) and Transition II (Benign→SDC)",
        &[
            "program",
            "read: Tran. I",
            "read: Tran. II",
            "read: prunable",
            "write: Tran. I",
            "write: Tran. II",
            "write: prunable",
        ],
    );
    let mut raw = Vec::new();
    for ((w, r_sweep), w_sweep) in data.iter().zip(read).zip(write) {
        let worst_read = analysis.table3_entry(&r_sweep.grid).model;
        let worst_write = analysis.table3_entry(&w_sweep.grid).model;
        let read_loc = LocationAnalysis::run(
            &w.module,
            &w.golden,
            Technique::InjectOnRead,
            worst_read,
            cfg.experiments,
            cfg.seed ^ 0xF166,
            cfg.hang_factor,
        );
        let write_loc = LocationAnalysis::run(
            &w.module,
            &w.golden,
            Technique::InjectOnWrite,
            worst_write,
            cfg.experiments,
            cfg.seed ^ 0xF167,
            cfg.hang_factor,
        );
        table.add_row(vec![
            w.name.clone(),
            format!("{:.1}%", read_loc.transition1() * 100.0),
            format!("{:.1}%", read_loc.transition2() * 100.0),
            format!("{:.1}%", read_loc.prunable_fraction() * 100.0),
            format!("{:.1}%", write_loc.transition1() * 100.0),
            format!("{:.1}%", write_loc.transition2() * 100.0),
            format!("{:.1}%", write_loc.prunable_fraction() * 100.0),
        ]);
        raw.push((w.name.clone(), read_loc, write_loc));
    }
    (table, raw)
}

// ---------------------------------------------------------------------------
// RQ summary
// ---------------------------------------------------------------------------

/// Aggregate answers to RQ1–RQ5 from the sweep results.
pub fn summary(
    read_activation: &ActivationAnalysis,
    write_activation: &ActivationAnalysis,
    read: &[MultiRegisterSweep],
    write: &[MultiRegisterSweep],
    locations: &[(String, LocationAnalysis, LocationAnalysis)],
) -> String {
    let analysis = PessimisticAnalysis::default();
    let mut pessimistic = 0usize;
    let mut total = 0usize;
    let mut sufficient_mbf: Vec<u32> = Vec::new();
    for sweep in read.iter().chain(write) {
        let cmp = analysis.compare(&sweep.single, &sweep.grid);
        total += 1;
        if cmp.single_bit_is_pessimistic {
            pessimistic += 1;
        }
        sufficient_mbf.push(cmp.sufficient_max_mbf);
    }
    let max_sufficient = sufficient_mbf.iter().copied().max().unwrap_or(0);
    let t1_mean: f64 = locations
        .iter()
        .map(|(_, r, w)| (r.transition1() + w.transition1()) / 2.0)
        .sum::<f64>()
        / locations.len().max(1) as f64;
    let t2_mean: f64 = locations
        .iter()
        .map(|(_, r, w)| (r.transition2() + w.transition2()) / 2.0)
        .sum::<f64>()
        / locations.len().max(1) as f64;
    let prunable_mean: f64 = locations
        .iter()
        .map(|(_, r, w)| (r.prunable_fraction() + w.prunable_fraction()) / 2.0)
        .sum::<f64>()
        / locations.len().max(1) as f64;

    format!(
        "RQ1: {:.1}% of inject-on-read and {:.1}% of inject-on-write max-MBF=30 crashes \
activated fewer than 10 errors (suggested bound: read {}, write {}).\n\
RQ2: the single bit-flip model is pessimistic (within 1 point) for {pessimistic}/{total} \
program/technique sweeps.\n\
RQ3: at most {max_sufficient} errors were needed to reach the highest SDC% in any sweep.\n\
RQ4: see the per-figure series — window size matters mainly for inject-on-write.\n\
RQ5: Transition I averages {:.1}% vs Transition II {:.1}%; on average {:.1}% of single-bit \
locations (Detection or SDC outcomes) can be pruned from multi-bit campaigns.\n",
        read_activation.cumulative_fraction(9) * 100.0,
        write_activation.cumulative_fraction(9) * 100.0,
        read_activation.suggested_bound(0.95),
        write_activation.suggested_bound(0.95),
        t1_mean * 100.0,
        t2_mean * 100.0,
        prunable_mean * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> HarnessConfig {
        HarnessConfig {
            experiments: 15,
            workload_filter: Some(vec!["qsort".to_string(), "histo".to_string()]),
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn config_filters_workloads_case_insensitively() {
        let cfg = HarnessConfig {
            workload_filter: Some(vec!["QSORT".into(), "crc32".into()]),
            ..HarnessConfig::default()
        };
        let names: Vec<_> = cfg
            .workloads()
            .iter()
            .map(|w| w.name().to_string())
            .collect();
        assert_eq!(names, vec!["qsort", "CRC32"]);
        assert_eq!(HarnessConfig::default().workloads().len(), 15);
    }

    #[test]
    fn coarse_grid_is_a_subset_of_the_full_grid() {
        let coarse = HarnessConfig::default();
        let full = HarnessConfig {
            full_grid: true,
            ..HarnessConfig::default()
        };
        assert!(coarse.max_mbf_values().len() < full.max_mbf_values().len());
        assert!(coarse.win_size_values().len() < full.win_size_values().len());
        for m in coarse.max_mbf_values() {
            assert!(full.max_mbf_values().contains(&m));
        }
        assert_eq!(full.max_mbf_values(), MAX_MBF_VALUES.to_vec());
        assert_eq!(full.win_size_values().len(), 8);
    }

    #[test]
    fn sweep_cache_shares_artifacts_per_workload_and_size() {
        let cfg = HarnessConfig {
            replay: false,
            ..HarnessConfig::default()
        };
        let workloads = cfg.workloads();
        let qsort = workloads.iter().find(|w| w.name() == "qsort").unwrap();
        let histo = workloads.iter().find(|w| w.name() == "histo").unwrap();
        let mut cache = SweepCache::new();
        let a = cache.get_or_build(&cfg, qsort.as_ref(), InputSize::Tiny);
        let b = cache.get_or_build(&cfg, qsort.as_ref(), InputSize::Tiny);
        assert_eq!(a, b, "same (workload, size) key must reuse the entry");
        let c = cache.get_or_build(&cfg, qsort.as_ref(), InputSize::Small);
        assert_ne!(a, c, "a different input size is a different entry");
        let d = cache.get_or_build(&cfg, histo.as_ref(), InputSize::Tiny);
        assert_ne!(a, d);
        assert_eq!(cache.data().len(), 3);
        assert_eq!(cache.stats(), (1, 3), "one reuse, three builds");
        assert!(cache.data()[a].store.is_none(), "replay off: no store");

        let replay_cfg = HarnessConfig::default();
        let mut cache = SweepCache::new();
        let e = cache.get_or_build(&replay_cfg, histo.as_ref(), InputSize::Tiny);
        assert!(
            cache.data()[e].store.is_some(),
            "replay on (the default): the store is built lazily on first use"
        );
    }

    #[test]
    fn table2_lists_all_selected_workloads() {
        let cfg = tiny_cfg();
        let data = prepare(&cfg);
        let table = table2(&cfg, &data);
        assert_eq!(table.rows.len(), 2);
        assert!(table.render().contains("qsort"));
        assert!(table.render().contains("histo"));
    }

    #[test]
    fn grid_deduplicates_shared_cells_and_feeds_every_figure() {
        let cfg = HarnessConfig {
            experiments: 10,
            workload_filter: Some(vec!["stringsearch".into()]),
            ..HarnessConfig::default()
        };
        let mut grid = CampaignGrid::new(&cfg);
        grid.request_artifact_grid();
        // Per workload and technique: 1 single + |mbf| same-register +
        // |mbf| × |win| multi-register cells; the activation row (max-MBF 30)
        // and the single-bit baselines are shared, not re-run.
        let mbf = cfg.max_mbf_values().len();
        let win = cfg.win_size_values().len();
        assert_eq!(grid.cell_count(), 2 * (1 + mbf + mbf * win));
        let run = grid.run();
        assert_eq!(run.cell_count(), 2 * (1 + mbf + mbf * win));
        assert_eq!(
            run.total_experiments(),
            (run.cell_count() * cfg.experiments) as u64
        );

        let singles = single_bit_results(&run);
        let tables = fig1(&singles);
        assert_eq!(tables.len(), 2);
        assert!(tables[0].1.render().contains("SDC%"));

        let same_reg = same_register_results(&cfg, &run, Technique::InjectOnWrite);
        let t = fig2(Technique::InjectOnWrite, &same_reg);
        assert!(t.render().contains("1-bit"));
        assert!(t.render().contains("m=30,w=0"));

        let read = multi_register_results(&cfg, &run, Technique::InjectOnRead);
        let write = multi_register_results(&cfg, &run, Technique::InjectOnWrite);
        assert_eq!(read[0].grid.len(), mbf * win);

        let figs = fig45(Technique::InjectOnRead, &read);
        assert_eq!(figs.len(), 1);
        assert_eq!(figs[0].series.len(), win);

        let t3 = table3(&read, &write);
        assert_eq!(t3.rows.len(), 1);

        let (t4, raw) = table4(&cfg, &run.data, &read, &write);
        assert_eq!(t4.rows.len(), 1);
        assert_eq!(raw.len(), 1);
    }

    #[test]
    fn grid_cells_match_the_per_campaign_runner() {
        let cfg = HarnessConfig {
            experiments: 12,
            workload_filter: Some(vec!["crc32".into()]),
            ..HarnessConfig::default()
        };
        let mut grid = CampaignGrid::new(&cfg);
        grid.request_single_bit();
        let run = grid.run();
        for technique in Technique::ALL {
            let from_grid = run.get(0, technique, FaultModel::single_bit());
            let serial =
                run.data[0].campaign(&cfg.campaign_spec(technique, FaultModel::single_bit()));
            assert_eq!(from_grid, &serial, "{technique}: grid cell diverged");
        }
    }

    #[test]
    fn replay_enabled_harness_produces_identical_campaigns() {
        let cfg_off = HarnessConfig {
            experiments: 12,
            workload_filter: Some(vec!["crc32".into()]),
            replay: false,
            ..HarnessConfig::default()
        };
        let cfg_on = HarnessConfig {
            replay: true,
            ..cfg_off.clone()
        };
        let data_off = prepare(&cfg_off);
        let data_on = prepare(&cfg_on);
        assert!(data_off[0].store.is_none());
        assert!(data_on[0].store.is_some());
        let run_off = {
            let mut g = CampaignGrid::from_data(&cfg_off, data_off);
            g.request_single_bit();
            g.run()
        };
        let run_on = {
            let mut g = CampaignGrid::from_data(&cfg_on, data_on);
            g.request_single_bit();
            g.run()
        };
        assert_eq!(
            single_bit_results(&run_off),
            single_bit_results(&run_on),
            "replay must not change any campaign result"
        );
    }

    /// One combined test so that only a single test in this binary mutates
    /// the process environment — `set_var` concurrent with `env::var` reads
    /// from a parallel test thread is undefined behaviour on glibc.
    #[test]
    fn env_config_round_trip_and_malformed_fallback() {
        std::env::set_var("MBFI_EXPERIMENTS", "7");
        std::env::set_var("MBFI_SIZE", "small");
        std::env::set_var("MBFI_GRID", "full");
        std::env::set_var("MBFI_WORKLOADS", "sha, bfs");
        std::env::set_var("MBFI_REPLAY", "off");
        std::env::set_var("MBFI_SWEEP_BATCH", "9");
        std::env::set_var("MBFI_PRECISION", "2.5,80,4000,wald");
        std::env::set_var("MBFI_TELEMETRY", "full");
        std::env::set_var("MBFI_TELEMETRY_OUT", "events.jsonl");
        std::env::set_var("MBFI_COW", "off");
        let cfg = HarnessConfig::from_env();
        assert!(!cfg.cow);
        assert!(!mbfi_vm::cow_enabled());
        assert_eq!(cfg.experiments, 7);
        assert_eq!(cfg.telemetry, TelemetryLevel::Full);
        assert_eq!(cfg.telemetry_out, "events.jsonl");
        assert_eq!(cfg.size, InputSize::Small);
        assert!(cfg.full_grid);
        assert_eq!(cfg.workloads().len(), 2);
        assert!(!cfg.replay);
        assert_eq!(cfg.sweep_batch, 9);
        assert_eq!(cfg.sweep_config().batch_size, 9);
        assert_eq!(
            cfg.precision,
            Some(Precision {
                target_half_width_pct: 2.5,
                min_experiments: 80,
                max_experiments: 4000,
                interval: IntervalMethod::Wald,
            })
        );
        assert_eq!(cfg.sweep_config().precision, cfg.precision);
        std::env::remove_var("MBFI_EXPERIMENTS");
        std::env::remove_var("MBFI_SIZE");
        std::env::remove_var("MBFI_GRID");
        std::env::remove_var("MBFI_WORKLOADS");
        std::env::remove_var("MBFI_REPLAY");
        std::env::remove_var("MBFI_SWEEP_BATCH");
        std::env::remove_var("MBFI_PRECISION");
        std::env::remove_var("MBFI_TELEMETRY");
        std::env::remove_var("MBFI_TELEMETRY_OUT");

        // Malformed values fall back to the defaults (with a stderr warning,
        // not capturable here) instead of being silently dropped mid-parse.
        // MBFI_COW falling back to `on` here also restores the process-global
        // CoW switch flipped off above.
        std::env::set_var("MBFI_HANG_FACTOR", "twenty");
        std::env::set_var("MBFI_REPLAY_BUDGET_MB", "-3");
        std::env::set_var("MBFI_PRECISION", "tight");
        std::env::set_var("MBFI_TELEMETRY", "verbose");
        std::env::set_var("MBFI_COW", "maybe");
        let cfg = HarnessConfig::from_env();
        assert!(cfg.cow);
        assert!(mbfi_vm::cow_enabled());
        assert_eq!(cfg.hang_factor, HarnessConfig::default().hang_factor);
        assert_eq!(
            cfg.replay_budget_bytes,
            HarnessConfig::default().replay_budget_bytes
        );
        assert_eq!(cfg.precision, None);
        assert_eq!(cfg.telemetry, TelemetryLevel::Off);
        assert_eq!(cfg.telemetry_out, "telemetry.jsonl");
        std::env::remove_var("MBFI_HANG_FACTOR");
        std::env::remove_var("MBFI_REPLAY_BUDGET_MB");
        std::env::remove_var("MBFI_PRECISION");
        std::env::remove_var("MBFI_TELEMETRY");
        std::env::remove_var("MBFI_COW");
        assert_eq!(env_parsed("MBFI_NOT_SET_EVER", 42usize), 42);
    }

    /// `parse_precision` grammar, without touching the process environment.
    #[test]
    fn precision_knob_grammar() {
        assert_eq!(parse_precision("off"), Some(None));
        assert_eq!(parse_precision("none"), Some(None));
        assert_eq!(
            parse_precision("3"),
            Some(Some(Precision::with_target(3.0)))
        );
        assert_eq!(
            parse_precision(" 1.5 , 50 "),
            Some(Some(Precision {
                min_experiments: 50,
                ..Precision::with_target(1.5)
            }))
        );
        assert_eq!(
            parse_precision("2,100,5000,wilson"),
            Some(Some(Precision {
                min_experiments: 100,
                max_experiments: 5000,
                interval: IntervalMethod::Wilson,
                ..Precision::with_target(2.0)
            }))
        );
        for bad in ["", "-2", "0", "2,x", "2,1,2,gauss", "2,1,2,wald,extra"] {
            // "0" parses as off (fixed-n), everything else is malformed.
            let parsed = parse_precision(bad);
            assert!(
                parsed.is_none() || parsed == Some(None),
                "{bad:?} must not produce a precision spec, got {parsed:?}"
            );
        }
        assert_eq!(parse_precision("-2"), None);
        assert_eq!(parse_precision("2,"), None);
    }
}
