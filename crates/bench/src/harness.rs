//! Shared machinery for the per-table / per-figure binaries.

use mbfi_core::cluster::{MAX_MBF_VALUES, WIN_SIZE_VALUES};
use mbfi_core::pruning::{ActivationAnalysis, LocationAnalysis, PessimisticAnalysis};
use mbfi_core::replay::{CheckpointConfig, CheckpointStore};
use mbfi_core::report::{FigureData, Series, TextTable};
use mbfi_core::space::ErrorSpace;
use mbfi_core::{
    Campaign, CampaignResult, CampaignSpec, FaultModel, GoldenRun, Outcome, Technique, WinSize,
};
use mbfi_ir::{CompiledModule, Module};
use mbfi_workloads::{all_workloads, InputSize, Workload};

/// Runtime configuration of the harness, read from environment variables so
/// that every binary shares the same knobs.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Experiments per campaign (the paper uses 10,000; default here is 60 so
    /// the full suite completes in minutes on a laptop).
    pub experiments: usize,
    /// Base seed for all campaigns.
    pub seed: u64,
    /// Input size for every workload.
    pub size: InputSize,
    /// Optional comma-separated workload filter.
    pub workload_filter: Option<Vec<String>>,
    /// Hang threshold as a multiple of the golden run length.
    pub hang_factor: u64,
    /// Worker threads per campaign (0 = all cores).
    pub threads: usize,
    /// Use the full 10 × 9 parameter grid instead of the coarse sub-grid.
    pub full_grid: bool,
    /// Run campaigns through the checkpointed golden-run replay engine.
    pub replay: bool,
    /// Checkpoint interval in dynamic instructions; `None` picks a
    /// per-workload interval (1/128th of the golden run length).
    pub replay_interval: Option<u64>,
    /// Memory budget for each workload's checkpoint store, in bytes.
    pub replay_budget_bytes: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            experiments: 60,
            seed: 0x0B17,
            size: InputSize::Tiny,
            workload_filter: None,
            hang_factor: 20,
            threads: 0,
            full_grid: false,
            replay: false,
            replay_interval: None,
            replay_budget_bytes: CheckpointConfig::default().max_bytes,
        }
    }
}

impl HarnessConfig {
    /// Build a configuration from environment variables:
    ///
    /// * `MBFI_EXPERIMENTS` — experiments per campaign (default 60)
    /// * `MBFI_SEED` — base seed (default 0x0B17)
    /// * `MBFI_SIZE` — `tiny` or `small` (default tiny)
    /// * `MBFI_WORKLOADS` — comma-separated names (default: all 15)
    /// * `MBFI_HANG_FACTOR` — hang threshold multiplier (default 20)
    /// * `MBFI_THREADS` — worker threads per campaign (default: all cores)
    /// * `MBFI_GRID` — `full` for the 10 × 9 grid, anything else for the
    ///   coarse sub-grid used by default
    /// * `MBFI_REPLAY` — `on` to run campaigns via the checkpointed replay
    ///   engine with an auto-picked interval, a number for an explicit
    ///   checkpoint interval, `off`/unset to re-execute from instruction 0
    /// * `MBFI_REPLAY_BUDGET_MB` — checkpoint-store memory budget per
    ///   workload in MiB (default 64)
    pub fn from_env() -> HarnessConfig {
        let mut cfg = HarnessConfig::default();
        if let Ok(v) = std::env::var("MBFI_EXPERIMENTS") {
            if let Ok(n) = v.parse() {
                cfg.experiments = n;
            }
        }
        if let Ok(v) = std::env::var("MBFI_SEED") {
            if let Ok(n) = v.parse() {
                cfg.seed = n;
            }
        }
        if let Ok(v) = std::env::var("MBFI_SIZE") {
            cfg.size = match v.to_ascii_lowercase().as_str() {
                "small" => InputSize::Small,
                _ => InputSize::Tiny,
            };
        }
        if let Ok(v) = std::env::var("MBFI_WORKLOADS") {
            let names: Vec<String> = v
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if !names.is_empty() {
                cfg.workload_filter = Some(names);
            }
        }
        if let Ok(v) = std::env::var("MBFI_HANG_FACTOR") {
            if let Ok(n) = v.parse() {
                cfg.hang_factor = n;
            }
        }
        if let Ok(v) = std::env::var("MBFI_THREADS") {
            if let Ok(n) = v.parse() {
                cfg.threads = n;
            }
        }
        if let Ok(v) = std::env::var("MBFI_GRID") {
            cfg.full_grid = v.eq_ignore_ascii_case("full");
        }
        if let Ok(v) = std::env::var("MBFI_REPLAY") {
            if v.eq_ignore_ascii_case("on") {
                cfg.replay = true;
            } else if let Ok(n) = v.parse::<u64>() {
                if n > 0 {
                    cfg.replay = true;
                    cfg.replay_interval = Some(n);
                }
            }
        }
        if let Ok(v) = std::env::var("MBFI_REPLAY_BUDGET_MB") {
            if let Ok(n) = v.parse::<usize>() {
                cfg.replay_budget_bytes = n << 20;
            }
        }
        cfg
    }

    /// The selected workloads.
    pub fn workloads(&self) -> Vec<Box<dyn Workload>> {
        let all = all_workloads();
        match &self.workload_filter {
            None => all,
            Some(names) => all
                .into_iter()
                .filter(|w| names.iter().any(|n| n.eq_ignore_ascii_case(w.name())))
                .collect(),
        }
    }

    /// The `max-MBF` values of the active grid.
    pub fn max_mbf_values(&self) -> Vec<u32> {
        if self.full_grid {
            MAX_MBF_VALUES.to_vec()
        } else {
            vec![2, 3, 4, 5, 10, 30]
        }
    }

    /// The multi-register `win-size` values of the active grid.
    pub fn win_size_values(&self) -> Vec<WinSize> {
        if self.full_grid {
            WIN_SIZE_VALUES
                .iter()
                .copied()
                .filter(|w| !w.is_same_register())
                .collect()
        } else {
            vec![
                WinSize::Fixed(1),
                WinSize::Fixed(10),
                WinSize::Fixed(100),
                WinSize::Fixed(1000),
            ]
        }
    }

    fn campaign_spec(&self, technique: Technique, model: FaultModel) -> CampaignSpec {
        CampaignSpec {
            technique,
            model,
            experiments: self.experiments,
            seed: self.seed,
            hang_factor: self.hang_factor,
            threads: self.threads,
        }
    }
}

/// A workload prepared for campaigns: its module (tree and compiled forms),
/// its golden run, and (when replay is enabled) its golden-run checkpoint
/// store.
pub struct WorkloadData {
    /// Workload name.
    pub name: String,
    /// Package within its suite.
    pub package: String,
    /// One-line description.
    pub description: String,
    /// The built IR module (kept for analyses that need the tree form).
    pub module: Module,
    /// The flat bytecode every campaign executes — lowered once per workload
    /// and shared by all campaigns and worker threads.
    pub code: CompiledModule,
    /// The fault-free profiling run.
    pub golden: GoldenRun,
    /// Golden-run checkpoints shared by every campaign on this workload.
    pub store: Option<CheckpointStore>,
}

impl WorkloadData {
    /// Run one campaign on this workload through the compiled pipeline, and
    /// through the checkpoint store when one was captured.  Replay-on and
    /// replay-off results are byte-identical by contract, so figures and
    /// tables do not depend on the knob.
    pub fn campaign(&self, spec: &CampaignSpec) -> CampaignResult {
        Campaign::run_compiled_with_store(&self.code, &self.golden, spec, self.store.as_ref())
    }
}

/// Build modules, lower them, capture golden runs (and checkpoint stores,
/// when replay is enabled) for the configured workloads.
pub fn prepare(cfg: &HarnessConfig) -> Vec<WorkloadData> {
    cfg.workloads()
        .iter()
        .map(|w| {
            let module = w.build_module(cfg.size);
            let code = CompiledModule::lower(&module);
            let golden = GoldenRun::capture_compiled(&code)
                .unwrap_or_else(|e| panic!("golden run of {} failed: {e}", w.name()));
            let store = cfg.replay.then(|| {
                let interval = cfg
                    .replay_interval
                    .unwrap_or_else(|| (golden.dynamic_instrs / 128).max(1));
                let config = CheckpointConfig {
                    interval,
                    max_bytes: cfg.replay_budget_bytes,
                };
                CheckpointStore::capture_compiled(&code, &golden, config)
                    .unwrap_or_else(|e| panic!("checkpoint capture of {} failed: {e}", w.name()))
            });
            WorkloadData {
                name: w.name().to_string(),
                package: w.package().to_string(),
                description: w.description().to_string(),
                module,
                code,
                golden,
                store,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------------

/// Table II: candidate instruction counts per workload and technique.
pub fn table2(cfg: &HarnessConfig, data: &[WorkloadData]) -> TextTable {
    let mut table = TextTable::new(
        format!(
            "Table II — candidate fault-injection instructions ({} input)",
            cfg.size
        ),
        &[
            "program",
            "package",
            "dynamic instrs",
            "inject-on-read",
            "inject-on-write",
            "1-bit space (log10)",
        ],
    );
    for w in data {
        let read = w.golden.candidates(Technique::InjectOnRead);
        let write = w.golden.candidates(Technique::InjectOnWrite);
        let space = ErrorSpace::new(read, 64);
        table.add_row(vec![
            w.name.clone(),
            w.package.clone(),
            w.golden.dynamic_instrs.to_string(),
            read.to_string(),
            write.to_string(),
            format!("{:.2}", space.single_bit_log10()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 1 — single bit-flip outcome classification
// ---------------------------------------------------------------------------

/// Raw single-bit campaign results per workload: `(name, read, write)`.
pub fn single_bit_results(
    cfg: &HarnessConfig,
    data: &[WorkloadData],
) -> Vec<(String, CampaignResult, CampaignResult)> {
    data.iter()
        .map(|w| {
            let read =
                w.campaign(&cfg.campaign_spec(Technique::InjectOnRead, FaultModel::single_bit()));
            let write =
                w.campaign(&cfg.campaign_spec(Technique::InjectOnWrite, FaultModel::single_bit()));
            (w.name.clone(), read, write)
        })
        .collect()
}

/// Fig. 1: outcome classification tables for both techniques.
pub fn fig1(results: &[(String, CampaignResult, CampaignResult)]) -> Vec<(Technique, TextTable)> {
    Technique::ALL
        .iter()
        .map(|technique| {
            let mut table = TextTable::new(
                format!("Fig. 1 — single bit-flip outcome classification ({technique})"),
                &["program", "SDC%", "±", "Detection%", "Benign%"],
            );
            for (name, read, write) in results {
                let r = if technique.is_write() { write } else { read };
                let sdc = r.sdc_proportion();
                table.add_row(vec![
                    name.clone(),
                    format!("{:.2}", r.sdc_pct()),
                    format!("{:.2}", sdc.half_width_pct()),
                    format!("{:.2}", r.counts.detection_pct()),
                    format!("{:.2}", r.counts.fraction(Outcome::Benign) * 100.0),
                ]);
            }
            (*technique, table)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 2 — multiple bits of the same register (win-size = 0)
// ---------------------------------------------------------------------------

/// Raw same-register sweep per workload: campaigns for max-MBF = 1 (single)
/// followed by the configured multi-bit values, all at win-size = 0.
pub fn same_register_results(
    cfg: &HarnessConfig,
    data: &[WorkloadData],
    technique: Technique,
) -> Vec<(String, Vec<CampaignResult>)> {
    data.iter()
        .map(|w| {
            let mut results =
                vec![w.campaign(&cfg.campaign_spec(technique, FaultModel::single_bit()))];
            for &m in &cfg.max_mbf_values() {
                results.push(w.campaign(
                    &cfg.campaign_spec(technique, FaultModel::multi_bit(m, WinSize::Fixed(0))),
                ));
            }
            (w.name.clone(), results)
        })
        .collect()
}

/// Fig. 2: SDC% per program for 1..max flips of the same register.
pub fn fig2(technique: Technique, results: &[(String, Vec<CampaignResult>)]) -> TextTable {
    let headers: Vec<String> = std::iter::once("program".to_string())
        .chain(
            results
                .first()
                .map(|(_, rs)| rs.iter().map(|r| r.spec.model.label()).collect::<Vec<_>>())
                .unwrap_or_default(),
        )
        .collect();
    let mut table = TextTable::new(
        format!("Fig. 2 — SDC% for multiple bits of the same register ({technique})"),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for (name, rs) in results {
        let mut row = vec![name.clone()];
        row.extend(rs.iter().map(|r| format!("{:.2}", r.sdc_pct())));
        table.add_row(row);
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 3 — activated errors at max-MBF = 30
// ---------------------------------------------------------------------------

/// Raw max-MBF = 30 campaigns over all configured win-size > 0 values.
pub fn activation_results(
    cfg: &HarnessConfig,
    data: &[WorkloadData],
    technique: Technique,
) -> Vec<CampaignResult> {
    let mut out = Vec::new();
    for w in data {
        for &win in &cfg.win_size_values() {
            out.push(w.campaign(&cfg.campaign_spec(technique, FaultModel::multi_bit(30, win))));
        }
    }
    out
}

/// Fig. 3: distribution of activated errors before a crash at max-MBF = 30.
pub fn fig3(technique: Technique, campaigns: &[CampaignResult]) -> (TextTable, ActivationAnalysis) {
    let crash = ActivationAnalysis::crashes_from_campaigns(campaigns.iter());
    let mut table = TextTable::new(
        format!("Fig. 3 — activated errors before a crash, max-MBF = 30 ({technique})"),
        &["activated errors", "fraction of crashes"],
    );
    for k in 0..crash.histogram.len() {
        if crash.histogram[k] == 0 {
            continue;
        }
        table.add_row(vec![k.to_string(), format!("{:.3}", crash.fraction(k))]);
    }
    let (le5, six_to_ten, gt10) = crash.fig3_buckets();
    table.add_row(vec!["<= 5 (bucket)".into(), format!("{le5:.3}")]);
    table.add_row(vec!["6..10 (bucket)".into(), format!("{six_to_ten:.3}")]);
    table.add_row(vec!["> 10 (bucket)".into(), format!("{gt10:.3}")]);
    (table, crash)
}

// ---------------------------------------------------------------------------
// Fig. 4 / Fig. 5 — SDC% across the max-MBF × win-size grid
// ---------------------------------------------------------------------------

/// Raw multi-register sweep for one workload: the single-bit baseline plus a
/// campaign per `(max-MBF, win-size)` point of the active grid.
pub struct MultiRegisterSweep {
    /// Workload name.
    pub name: String,
    /// Single bit-flip baseline.
    pub single: CampaignResult,
    /// Multi-bit campaigns over the grid.
    pub grid: Vec<CampaignResult>,
}

/// Run the multi-register sweep (win-size > 0) for every workload.
pub fn multi_register_results(
    cfg: &HarnessConfig,
    data: &[WorkloadData],
    technique: Technique,
) -> Vec<MultiRegisterSweep> {
    data.iter()
        .map(|w| {
            let single = w.campaign(&cfg.campaign_spec(technique, FaultModel::single_bit()));
            let mut grid = Vec::new();
            for &m in &cfg.max_mbf_values() {
                for &win in &cfg.win_size_values() {
                    grid.push(
                        w.campaign(&cfg.campaign_spec(technique, FaultModel::multi_bit(m, win))),
                    );
                }
            }
            MultiRegisterSweep {
                name: w.name.clone(),
                single,
                grid,
            }
        })
        .collect()
}

/// Fig. 4 (read) / Fig. 5 (write): per-workload SDC% series, one series per
/// win-size, indexed by max-MBF, with the single-bit value as the first point.
pub fn fig45(technique: Technique, sweeps: &[MultiRegisterSweep]) -> Vec<FigureData> {
    let fig_no = if technique.is_write() { 5 } else { 4 };
    sweeps
        .iter()
        .map(|sweep| {
            let mut fig = FigureData::new(format!(
                "Fig. {fig_no} — SDC% targeting multiple registers ({technique}) — {}",
                sweep.name
            ));
            // Collect the win sizes present in the grid, preserving order.
            let mut wins: Vec<WinSize> = Vec::new();
            for r in &sweep.grid {
                if !wins.contains(&r.spec.model.win_size) {
                    wins.push(r.spec.model.win_size);
                }
            }
            for win in wins {
                let mut series = Series::new(format!("w={}", win.label()));
                series.push("1", sweep.single.sdc_pct());
                for r in sweep.grid.iter().filter(|r| r.spec.model.win_size == win) {
                    series.push(r.spec.model.max_mbf.to_string(), r.sdc_pct());
                }
                fig.series.push(series);
            }
            fig
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table III — configurations causing the highest SDC%
// ---------------------------------------------------------------------------

/// Table III: the `(max-MBF, win-size)` pair with the highest SDC% per program
/// and technique, alongside the single-bit baseline.
pub fn table3(read: &[MultiRegisterSweep], write: &[MultiRegisterSweep]) -> TextTable {
    let analysis = PessimisticAnalysis::default();
    let mut table = TextTable::new(
        "Table III — configuration with the highest SDC% among multi-bit campaigns",
        &[
            "program",
            "read: max-MBF",
            "read: win-size",
            "read: SDC%",
            "read: 1-bit SDC%",
            "write: max-MBF",
            "write: win-size",
            "write: SDC%",
            "write: 1-bit SDC%",
        ],
    );
    for (r, w) in read.iter().zip(write) {
        let re = analysis.table3_entry(&r.grid);
        let we = analysis.table3_entry(&w.grid);
        table.add_row(vec![
            r.name.clone(),
            re.model.max_mbf.to_string(),
            re.model.win_size.label(),
            format!("{:.2}", re.sdc_pct),
            format!("{:.2}", r.single.sdc_pct()),
            we.model.max_mbf.to_string(),
            we.model.win_size.label(),
            format!("{:.2}", we.sdc_pct),
            format!("{:.2}", w.single.sdc_pct()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Table IV — Transition I / II likelihoods (Fig. 6)
// ---------------------------------------------------------------------------

/// Table IV: Transition I (Detection→SDC) and Transition II (Benign→SDC)
/// likelihoods using each workload's worst-case configuration from Table III.
pub fn table4(
    cfg: &HarnessConfig,
    data: &[WorkloadData],
    read: &[MultiRegisterSweep],
    write: &[MultiRegisterSweep],
) -> (TextTable, Vec<(String, LocationAnalysis, LocationAnalysis)>) {
    let analysis = PessimisticAnalysis::default();
    let mut table = TextTable::new(
        "Table IV — likelihood of Transition I (Detection→SDC) and Transition II (Benign→SDC)",
        &[
            "program",
            "read: Tran. I",
            "read: Tran. II",
            "read: prunable",
            "write: Tran. I",
            "write: Tran. II",
            "write: prunable",
        ],
    );
    let mut raw = Vec::new();
    for ((w, r_sweep), w_sweep) in data.iter().zip(read).zip(write) {
        let worst_read = analysis.table3_entry(&r_sweep.grid).model;
        let worst_write = analysis.table3_entry(&w_sweep.grid).model;
        let read_loc = LocationAnalysis::run(
            &w.module,
            &w.golden,
            Technique::InjectOnRead,
            worst_read,
            cfg.experiments,
            cfg.seed ^ 0xF166,
            cfg.hang_factor,
        );
        let write_loc = LocationAnalysis::run(
            &w.module,
            &w.golden,
            Technique::InjectOnWrite,
            worst_write,
            cfg.experiments,
            cfg.seed ^ 0xF167,
            cfg.hang_factor,
        );
        table.add_row(vec![
            w.name.clone(),
            format!("{:.1}%", read_loc.transition1() * 100.0),
            format!("{:.1}%", read_loc.transition2() * 100.0),
            format!("{:.1}%", read_loc.prunable_fraction() * 100.0),
            format!("{:.1}%", write_loc.transition1() * 100.0),
            format!("{:.1}%", write_loc.transition2() * 100.0),
            format!("{:.1}%", write_loc.prunable_fraction() * 100.0),
        ]);
        raw.push((w.name.clone(), read_loc, write_loc));
    }
    (table, raw)
}

// ---------------------------------------------------------------------------
// RQ summary
// ---------------------------------------------------------------------------

/// Aggregate answers to RQ1–RQ5 from the sweep results.
pub fn summary(
    read_activation: &ActivationAnalysis,
    write_activation: &ActivationAnalysis,
    read: &[MultiRegisterSweep],
    write: &[MultiRegisterSweep],
    locations: &[(String, LocationAnalysis, LocationAnalysis)],
) -> String {
    let analysis = PessimisticAnalysis::default();
    let mut pessimistic = 0usize;
    let mut total = 0usize;
    let mut sufficient_mbf: Vec<u32> = Vec::new();
    for sweep in read.iter().chain(write) {
        let cmp = analysis.compare(&sweep.single, &sweep.grid);
        total += 1;
        if cmp.single_bit_is_pessimistic {
            pessimistic += 1;
        }
        sufficient_mbf.push(cmp.sufficient_max_mbf);
    }
    let max_sufficient = sufficient_mbf.iter().copied().max().unwrap_or(0);
    let t1_mean: f64 = locations
        .iter()
        .map(|(_, r, w)| (r.transition1() + w.transition1()) / 2.0)
        .sum::<f64>()
        / locations.len().max(1) as f64;
    let t2_mean: f64 = locations
        .iter()
        .map(|(_, r, w)| (r.transition2() + w.transition2()) / 2.0)
        .sum::<f64>()
        / locations.len().max(1) as f64;
    let prunable_mean: f64 = locations
        .iter()
        .map(|(_, r, w)| (r.prunable_fraction() + w.prunable_fraction()) / 2.0)
        .sum::<f64>()
        / locations.len().max(1) as f64;

    format!(
        "RQ1: {:.1}% of inject-on-read and {:.1}% of inject-on-write max-MBF=30 crashes \
activated fewer than 10 errors (suggested bound: read {}, write {}).\n\
RQ2: the single bit-flip model is pessimistic (within 1 point) for {pessimistic}/{total} \
program/technique sweeps.\n\
RQ3: at most {max_sufficient} errors were needed to reach the highest SDC% in any sweep.\n\
RQ4: see the per-figure series — window size matters mainly for inject-on-write.\n\
RQ5: Transition I averages {:.1}% vs Transition II {:.1}%; on average {:.1}% of single-bit \
locations (Detection or SDC outcomes) can be pruned from multi-bit campaigns.\n",
        read_activation.cumulative_fraction(9) * 100.0,
        write_activation.cumulative_fraction(9) * 100.0,
        read_activation.suggested_bound(0.95),
        write_activation.suggested_bound(0.95),
        t1_mean * 100.0,
        t2_mean * 100.0,
        prunable_mean * 100.0,
    )
}

/// Convenience bundle of everything `run_all` produces.
pub struct SweepResults {
    /// Per-workload prepared data.
    pub data: Vec<WorkloadData>,
    /// Multi-register sweeps, inject-on-read.
    pub read: Vec<MultiRegisterSweep>,
    /// Multi-register sweeps, inject-on-write.
    pub write: Vec<MultiRegisterSweep>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> HarnessConfig {
        HarnessConfig {
            experiments: 15,
            workload_filter: Some(vec!["qsort".to_string(), "histo".to_string()]),
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn config_filters_workloads_case_insensitively() {
        let cfg = HarnessConfig {
            workload_filter: Some(vec!["QSORT".into(), "crc32".into()]),
            ..HarnessConfig::default()
        };
        let names: Vec<_> = cfg
            .workloads()
            .iter()
            .map(|w| w.name().to_string())
            .collect();
        assert_eq!(names, vec!["qsort", "CRC32"]);
        assert_eq!(HarnessConfig::default().workloads().len(), 15);
    }

    #[test]
    fn coarse_grid_is_a_subset_of_the_full_grid() {
        let coarse = HarnessConfig::default();
        let full = HarnessConfig {
            full_grid: true,
            ..HarnessConfig::default()
        };
        assert!(coarse.max_mbf_values().len() < full.max_mbf_values().len());
        assert!(coarse.win_size_values().len() < full.win_size_values().len());
        for m in coarse.max_mbf_values() {
            assert!(full.max_mbf_values().contains(&m));
        }
        assert_eq!(full.max_mbf_values(), MAX_MBF_VALUES.to_vec());
        assert_eq!(full.win_size_values().len(), 8);
    }

    #[test]
    fn table2_lists_all_selected_workloads() {
        let cfg = tiny_cfg();
        let data = prepare(&cfg);
        let table = table2(&cfg, &data);
        assert_eq!(table.rows.len(), 2);
        assert!(table.render().contains("qsort"));
        assert!(table.render().contains("histo"));
    }

    #[test]
    fn fig1_and_fig2_render_for_a_small_run() {
        let cfg = tiny_cfg();
        let data = prepare(&cfg);
        let singles = single_bit_results(&cfg, &data);
        let tables = fig1(&singles);
        assert_eq!(tables.len(), 2);
        assert!(tables[0].1.render().contains("SDC%"));

        let same_reg = same_register_results(
            &HarnessConfig {
                experiments: 10,
                ..tiny_cfg()
            },
            &data[..1],
            Technique::InjectOnWrite,
        );
        let t = fig2(Technique::InjectOnWrite, &same_reg);
        assert!(t.render().contains("1-bit"));
        assert!(t.render().contains("m=30,w=0"));
    }

    #[test]
    fn multi_register_sweep_feeds_table3_and_fig45() {
        let cfg = HarnessConfig {
            experiments: 10,
            workload_filter: Some(vec!["stringsearch".into()]),
            ..HarnessConfig::default()
        };
        let data = prepare(&cfg);
        let read = multi_register_results(&cfg, &data, Technique::InjectOnRead);
        let write = multi_register_results(&cfg, &data, Technique::InjectOnWrite);
        assert_eq!(
            read[0].grid.len(),
            cfg.max_mbf_values().len() * cfg.win_size_values().len()
        );

        let figs = fig45(Technique::InjectOnRead, &read);
        assert_eq!(figs.len(), 1);
        assert_eq!(figs[0].series.len(), cfg.win_size_values().len());

        let t3 = table3(&read, &write);
        assert_eq!(t3.rows.len(), 1);

        let (t4, raw) = table4(&cfg, &data, &read, &write);
        assert_eq!(t4.rows.len(), 1);
        assert_eq!(raw.len(), 1);
    }

    #[test]
    fn replay_enabled_harness_produces_identical_campaigns() {
        let cfg_off = HarnessConfig {
            experiments: 12,
            workload_filter: Some(vec!["crc32".into()]),
            ..HarnessConfig::default()
        };
        let cfg_on = HarnessConfig {
            replay: true,
            ..cfg_off.clone()
        };
        let data_off = prepare(&cfg_off);
        let data_on = prepare(&cfg_on);
        assert!(data_off[0].store.is_none());
        assert!(data_on[0].store.is_some());
        let off = single_bit_results(&cfg_off, &data_off);
        let on = single_bit_results(&cfg_on, &data_on);
        assert_eq!(off, on, "replay must not change any campaign result");
    }

    #[test]
    fn env_config_round_trip() {
        std::env::set_var("MBFI_EXPERIMENTS", "7");
        std::env::set_var("MBFI_SIZE", "small");
        std::env::set_var("MBFI_GRID", "full");
        std::env::set_var("MBFI_WORKLOADS", "sha, bfs");
        let cfg = HarnessConfig::from_env();
        assert_eq!(cfg.experiments, 7);
        assert_eq!(cfg.size, InputSize::Small);
        assert!(cfg.full_grid);
        assert_eq!(cfg.workloads().len(), 2);
        std::env::remove_var("MBFI_EXPERIMENTS");
        std::env::remove_var("MBFI_SIZE");
        std::env::remove_var("MBFI_GRID");
        std::env::remove_var("MBFI_WORKLOADS");
    }
}
