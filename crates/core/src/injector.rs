//! The bit-flip injector: an [`ExecHook`] that corrupts register reads or
//! writes according to a single- or multiple-bit fault model.
//!
//! This is the extension of LLFI described in §III-C of the paper: on top of
//! LLFI's time–location pair (a dynamic instruction and a register), the
//! injector takes the two additional parameters `max-MBF` (how many flips may
//! occur in one run) and `win-size` (how many dynamic instructions apart
//! consecutive flips land).
//!
//! Scheduling rules:
//!
//! * The **first** flip is injected at the `first_target`-th candidate
//!   instruction (candidate ordinals are counted over the technique's
//!   candidate set and are valid because execution is fault-free up to the
//!   first flip).
//! * With `win-size = 0`, all remaining flips are applied to the **same
//!   register at the same dynamic instruction**, choosing distinct bit
//!   positions (§IV-B, Fig. 2).
//! * With `win-size = w > 0`, after a flip at dynamic instruction `d` the
//!   next flip is applied at the first candidate instruction whose dynamic
//!   index is at least `d + w` (§IV-C).  If the program crashes or finishes
//!   first, the remaining flips are simply not activated — which is exactly
//!   the effect the activation analysis of RQ1 measures.

use crate::rng::{Rng, SmallRng};
use crate::technique::Technique;
use mbfi_ir::Reg;
use mbfi_vm::{ExecHook, InstrContext, Value};

/// One applied bit-flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionRecord {
    /// 1-based ordinal of this flip within the experiment.
    pub ordinal: u32,
    /// Dynamic instruction index at which the flip was applied.
    pub dyn_index: u64,
    /// The register that was corrupted.
    pub reg: Reg,
    /// Bit position that was flipped.
    pub bit: u32,
    /// For inject-on-read, the index of the corrupted register operand.
    pub operand_index: Option<usize>,
    /// Raw value before the flip.
    pub before: u64,
    /// Raw value after the flip.
    pub after: u64,
}

impl InjectionRecord {
    /// Wire encoding of one flip.
    pub fn to_json(&self) -> crate::report::json::Json {
        let mut obj = crate::report::json::Json::object();
        obj.set("ordinal", self.ordinal);
        obj.set("dyn_index", self.dyn_index);
        obj.set("reg", self.reg.0);
        obj.set("bit", self.bit);
        obj.set(
            "operand_index",
            match self.operand_index {
                Some(i) => crate::report::json::Json::UInt(i as u64),
                None => crate::report::json::Json::Null,
            },
        );
        obj.set("before", self.before);
        obj.set("after", self.after);
        obj
    }

    /// Parse the wire encoding back.
    pub fn from_json(v: &crate::report::json::Json) -> Option<InjectionRecord> {
        Some(InjectionRecord {
            ordinal: u32::try_from(v.get("ordinal")?.as_u64()?).ok()?,
            dyn_index: v.get("dyn_index")?.as_u64()?,
            reg: Reg(u32::try_from(v.get("reg")?.as_u64()?).ok()?),
            bit: u32::try_from(v.get("bit")?.as_u64()?).ok()?,
            operand_index: match v.get("operand_index")? {
                crate::report::json::Json::Null => None,
                idx => Some(usize::try_from(idx.as_u64()?).ok()?),
            },
            before: v.get("before")?.as_u64()?,
            after: v.get("after")?.as_u64()?,
        })
    }
}

/// A pending injection armed by `on_instr`, to be applied by the matching
/// `on_read` / `on_write` of the same dynamic instruction.
#[derive(Debug, Clone, Copy)]
struct Pending {
    /// Dynamic index of the armed instruction (guards against corrupting a
    /// different instruction, e.g. callee instructions executing between a
    /// `call` and the write of its return value).
    dyn_index: u64,
    /// For inject-on-read: which register operand to corrupt.
    operand_index: usize,
    /// Number of distinct bits to flip in the targeted value.
    flips: u32,
}

/// Fault-injecting execution hook.
#[derive(Debug, Clone)]
pub struct InjectorHook {
    technique: Technique,
    max_mbf: u32,
    win_size: u64,
    first_target: u64,
    rng: SmallRng,
    candidate_seen: u64,
    next_dyn_threshold: Option<u64>,
    pending: Option<Pending>,
    injections: Vec<InjectionRecord>,
}

impl InjectorHook {
    /// Create an injector.
    ///
    /// * `first_target` — candidate ordinal (0-based) of the first injection,
    ///   drawn uniformly from the golden run's candidate count.
    /// * `win_size` — concrete window size for this experiment (already
    ///   sampled if the configuration uses a random range).
    /// * `seed` — seed for the injector's private RNG (bit and operand
    ///   selection), making experiments reproducible.
    pub fn new(
        technique: Technique,
        max_mbf: u32,
        win_size: u64,
        first_target: u64,
        seed: u64,
    ) -> InjectorHook {
        assert!(max_mbf >= 1, "max-MBF must be at least 1");
        InjectorHook {
            technique,
            max_mbf,
            win_size,
            first_target,
            rng: SmallRng::seed_from_u64(seed),
            candidate_seen: 0,
            next_dyn_threshold: None,
            pending: None,
            injections: Vec::new(),
        }
    }

    /// Fast-forward the candidate counter to resume from a golden-run
    /// checkpoint: `candidates_already_seen` candidates of this injector's
    /// technique executed before the checkpoint, so the next candidate
    /// observed gets that ordinal.  Valid only before any flip is armed or
    /// applied — the checkpointed prefix must be fault-free.
    ///
    /// # Panics
    ///
    /// Panics if the injector has already armed or applied a flip, or if the
    /// offset overshoots the first injection target (the target candidate
    /// would never be observed).
    pub fn resume_candidates(&mut self, candidates_already_seen: u64) {
        assert!(
            self.injections.is_empty() && self.pending.is_none() && self.candidate_seen == 0,
            "resume_candidates called on an injector that already made progress"
        );
        assert!(
            candidates_already_seen <= self.first_target,
            "checkpoint is past the first injection target"
        );
        self.candidate_seen = candidates_already_seen;
    }

    /// Number of bit-flips applied so far ("activated errors" in the paper).
    pub fn activated(&self) -> u32 {
        self.injections.len() as u32
    }

    /// The applied flips, in order.
    pub fn records(&self) -> &[InjectionRecord] {
        &self.injections
    }

    /// Consume the hook and return the applied flips.
    pub fn into_records(self) -> Vec<InjectionRecord> {
        self.injections
    }

    fn is_candidate(&self, ctx: &InstrContext) -> bool {
        match self.technique {
            Technique::InjectOnRead => ctx.reg_reads > 0,
            Technique::InjectOnWrite => ctx.has_dest,
        }
    }

    fn apply_flips(
        &mut self,
        ctx: &InstrContext,
        reg: Reg,
        value: Value,
        pending: Pending,
    ) -> Value {
        let width = value.ty.bit_width();
        let flips = pending.flips.min(width);
        let mut chosen: Vec<u32> = Vec::with_capacity(flips as usize);
        while (chosen.len() as u32) < flips {
            let bit = self.rng.gen_range(0..width);
            if !chosen.contains(&bit) {
                chosen.push(bit);
            }
        }
        let mut current = value;
        for bit in chosen {
            let after = current.flip_bit(bit);
            self.injections.push(InjectionRecord {
                ordinal: self.injections.len() as u32 + 1,
                dyn_index: ctx.dyn_index,
                reg,
                bit,
                operand_index: if self.technique.is_write() {
                    None
                } else {
                    Some(pending.operand_index)
                },
                before: current.bits,
                after: after.bits,
            });
            current = after;
        }
        if self.win_size > 0 && (self.injections.len() as u32) < self.max_mbf {
            self.next_dyn_threshold = Some(ctx.dyn_index + self.win_size);
        } else {
            self.next_dyn_threshold = None;
        }
        current
    }
}

impl ExecHook for InjectorHook {
    fn on_instr(&mut self, ctx: &InstrContext) {
        if self.activated() >= self.max_mbf || self.pending.is_some() {
            return;
        }
        if !self.is_candidate(ctx) {
            return;
        }
        let ordinal = self.candidate_seen;
        self.candidate_seen += 1;

        let should_inject = if self.injections.is_empty() {
            ordinal == self.first_target
        } else {
            match self.next_dyn_threshold {
                Some(threshold) => ctx.dyn_index >= threshold,
                None => false,
            }
        };
        if !should_inject {
            return;
        }

        // With win-size = 0 all remaining flips are applied at this single
        // instruction; otherwise exactly one flip is applied here.
        let flips = if self.win_size == 0 {
            self.max_mbf - self.activated()
        } else {
            1
        };
        let operand_index = match self.technique {
            Technique::InjectOnRead => self.rng.gen_range(0..ctx.reg_reads),
            Technique::InjectOnWrite => 0,
        };
        self.pending = Some(Pending {
            dyn_index: ctx.dyn_index,
            operand_index,
            flips,
        });
    }

    fn on_read(
        &mut self,
        ctx: &InstrContext,
        operand_index: usize,
        reg: Reg,
        value: Value,
    ) -> Value {
        if self.technique.is_write() {
            return value;
        }
        match self.pending {
            Some(p) if p.dyn_index == ctx.dyn_index && p.operand_index == operand_index => {
                self.pending = None;
                self.apply_flips(ctx, reg, value, p)
            }
            _ => value,
        }
    }

    fn on_write(&mut self, ctx: &InstrContext, reg: Reg, value: Value) -> Value {
        if !self.technique.is_write() {
            return value;
        }
        match self.pending {
            Some(p) if p.dyn_index == ctx.dyn_index => {
                self.pending = None;
                self.apply_flips(ctx, reg, value, p)
            }
            _ => value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbfi_ir::{ModuleBuilder, Type};
    use mbfi_vm::{Limits, Vm};

    /// A straight-line program with a known number of candidates.
    fn straight_line_module() -> mbfi_ir::Module {
        let mut mb = ModuleBuilder::new("sl");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let a = f.add(Type::I64, 1i64, 2i64); // no reg reads, has dest
            let b = f.add(Type::I64, a, 10i64); // 1 reg read, dest
            let c = f.mul(Type::I64, b, b); // 2 reg reads, dest
            let d = f.add(Type::I64, c, a); // 2 reg reads, dest
            f.print_i64(d); // 1 reg read, no dest
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    fn run_with(module: &mbfi_ir::Module, hook: &mut InjectorHook) -> mbfi_vm::RunResult {
        let code = mbfi_ir::CompiledModule::lower(module);
        Vm::new(&code, Limits::default()).run(hook)
    }

    #[test]
    fn single_flip_on_write_corrupts_output_deterministically() {
        let m = straight_line_module();
        // Target candidate 0 for write = the first `add` destination.
        let mut hook = InjectorHook::new(Technique::InjectOnWrite, 1, 0, 0, 7);
        let result = run_with(&m, &mut hook);
        assert_eq!(hook.activated(), 1);
        let rec = hook.records()[0];
        assert_eq!(rec.ordinal, 1);
        assert!(rec.operand_index.is_none());
        assert_ne!(rec.before, rec.after);
        // One bit differs between before and after.
        assert_eq!((rec.before ^ rec.after).count_ones(), 1);
        // The corrupted value propagates: output differs from golden.
        let golden = Vm::run_golden(&m, Limits::default());
        assert_ne!(result.output, golden.output);
    }

    #[test]
    fn single_flip_on_read_reports_operand_index() {
        let m = straight_line_module();
        let mut hook = InjectorHook::new(Technique::InjectOnRead, 1, 0, 1, 3);
        let _ = run_with(&m, &mut hook);
        assert_eq!(hook.activated(), 1);
        let rec = hook.records()[0];
        assert!(rec.operand_index.is_some());
        assert_eq!((rec.before ^ rec.after).count_ones(), 1);
    }

    #[test]
    fn same_register_multi_bit_flips_distinct_bits_at_one_instruction() {
        let m = straight_line_module();
        let mut hook = InjectorHook::new(Technique::InjectOnWrite, 5, 0, 1, 11);
        let _ = run_with(&m, &mut hook);
        assert_eq!(hook.activated(), 5);
        let records = hook.records();
        let dyn_indices: std::collections::HashSet<_> =
            records.iter().map(|r| r.dyn_index).collect();
        assert_eq!(dyn_indices.len(), 1, "all flips land in one instruction");
        let bits: std::collections::HashSet<_> = records.iter().map(|r| r.bit).collect();
        assert_eq!(bits.len(), 5, "bits are distinct");
        let regs: std::collections::HashSet<_> = records.iter().map(|r| r.reg).collect();
        assert_eq!(regs.len(), 1, "all flips target one register");
    }

    #[test]
    fn flip_count_is_capped_by_register_width() {
        // Target an i1 register (comparison result): only one bit can flip.
        let mut mb = ModuleBuilder::new("i1");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let slot = f.slot(Type::I64);
            f.store(Type::I64, 3i64, slot);
            let x = f.load(Type::I64, slot);
            let c = f.icmp(mbfi_ir::IcmpPred::Slt, Type::I64, x, 10i64);
            let v = f.select(Type::I64, c, 1i64, 0i64);
            f.print_i64(v);
            f.ret_void();
        }
        mb.set_entry(main);
        let m = mb.finish();
        // Write candidates: alloca(0), load(1), icmp(2), select(3).
        let mut hook = InjectorHook::new(Technique::InjectOnWrite, 30, 0, 2, 5);
        let _ = run_with(&m, &mut hook);
        assert_eq!(
            hook.activated(),
            1,
            "an i1 register can absorb only one flip"
        );
    }

    #[test]
    fn windowed_injections_respect_the_dynamic_distance() {
        // A loop gives us plenty of candidates spread over dynamic time.
        let mut mb = ModuleBuilder::new("loop");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 200i64, |f, i| {
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, i);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        let m = mb.finish();

        // Depending on where the first flip lands, the program may crash
        // before later flips activate (that is exactly the RQ1 effect), so
        // scan a few seeds and require that at least one experiment activates
        // several flips — and that *every* experiment respects the window.
        let win = 10u64;
        let mut saw_multiple = false;
        for seed in 0..20u64 {
            let mut hook = InjectorHook::new(Technique::InjectOnRead, 4, win, seed % 7, seed);
            let _ = run_with(&m, &mut hook);
            let records = hook.records();
            if records.len() >= 2 {
                saw_multiple = true;
            }
            for pair in records.windows(2) {
                assert!(
                    pair[1].dyn_index >= pair[0].dyn_index + win,
                    "flip at {} too close to previous at {}",
                    pair[1].dyn_index,
                    pair[0].dyn_index
                );
            }
        }
        assert!(saw_multiple, "no experiment activated more than one flip");
    }

    #[test]
    fn flips_stop_after_max_mbf() {
        let mut mb = ModuleBuilder::new("loop");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 500i64, |f, i| {
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, i);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        let m = mb.finish();
        // The number of activated flips never exceeds max-MBF, and some seed
        // activates all of them (experiments that crash early activate fewer).
        let mut saw_full = false;
        for seed in 0..20u64 {
            let mut hook = InjectorHook::new(Technique::InjectOnRead, 3, 1, seed, seed * 7 + 1);
            let _ = run_with(&m, &mut hook);
            assert!(hook.activated() <= 3);
            if hook.activated() == 3 {
                saw_full = true;
            }
        }
        assert!(saw_full, "no experiment activated all three flips");
    }

    #[test]
    fn out_of_range_target_never_activates() {
        let m = straight_line_module();
        let mut hook = InjectorHook::new(Technique::InjectOnWrite, 1, 0, 10_000, 1);
        let result = run_with(&m, &mut hook);
        assert_eq!(hook.activated(), 0);
        let golden = Vm::run_golden(&m, Limits::default());
        assert_eq!(result.output, golden.output);
    }

    #[test]
    fn call_return_value_corruption_targets_the_call_not_the_callee() {
        let mut mb = ModuleBuilder::new("call");
        let helper = mb.declare("helper", &[(Type::I64, "x")], Some(Type::I64));
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(helper);
            let x = f.param(0);
            let y = f.add(Type::I64, x, 1i64);
            f.ret(y);
        }
        {
            let mut f = mb.define(main);
            let a = f.add(Type::I64, 5i64, 0i64); // write candidate 0
            let r = f
                .call(helper, &[mbfi_ir::Operand::Reg(a)], Some(Type::I64))
                .unwrap(); // write candidate 1 (the call's return value)
            f.print_i64(r);
            f.ret_void();
        }
        mb.set_entry(main);
        let m = mb.finish();
        let mut hook = InjectorHook::new(Technique::InjectOnWrite, 1, 0, 1, 21);
        let _ = run_with(&m, &mut hook);
        assert_eq!(hook.activated(), 1);
        let rec = hook.records()[0];
        // The corrupted value must be the call's return value (6 before the flip),
        // not a value computed inside the callee at a later dynamic index.
        assert_eq!(rec.before, 6);
    }

    #[test]
    fn injector_requires_at_least_one_flip() {
        let result =
            std::panic::catch_unwind(|| InjectorHook::new(Technique::InjectOnRead, 0, 0, 0, 0));
        assert!(result.is_err());
    }
}
