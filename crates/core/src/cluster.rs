//! Error-space clustering: the max-MBF × win-size parameter grid (Table I)
//! and the enumeration of the 182 campaigns per workload (§III-E).
//!
//! Each cluster groups errors with the same two characteristics — the number
//! of bit-flips that may occur in a run, and the dynamic-instruction distance
//! between consecutive flips.  Exploring clusters instead of individual
//! errors is what makes the multi-bit error space tractable.

use crate::fault_model::{FaultModel, WinSize};
use crate::technique::Technique;

/// The `max-MBF` values of Table I (m1..m10).
pub const MAX_MBF_VALUES: [u32; 10] = [2, 3, 4, 5, 6, 7, 8, 9, 10, 30];

/// The `win-size` values of Table I (w1..w9).
pub const WIN_SIZE_VALUES: [WinSize; 9] = [
    WinSize::Fixed(0),
    WinSize::Fixed(1),
    WinSize::Fixed(4),
    WinSize::Random { lo: 2, hi: 10 },
    WinSize::Fixed(10),
    WinSize::Random { lo: 11, hi: 100 },
    WinSize::Fixed(100),
    WinSize::Random { lo: 101, hi: 1000 },
    WinSize::Fixed(1000),
];

/// One point of the campaign grid: a technique plus a fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CampaignPoint {
    /// Injection technique.
    pub technique: Technique,
    /// Fault model (single or multi bit).
    pub model: FaultModel,
}

impl CampaignPoint {
    /// Label like `read/1-bit` or `write/m=3,w=4`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.technique.short_name(), self.model.label())
    }
}

/// The full parameter grid of the paper.
#[derive(Debug, Clone, Default)]
pub struct ParameterGrid;

impl ParameterGrid {
    /// The 182 campaign points per workload: for each technique, one
    /// single-bit campaign plus the 10 × 9 multi-bit grid.
    pub fn all_campaigns() -> Vec<CampaignPoint> {
        let mut out = Vec::with_capacity(182);
        for technique in Technique::ALL {
            out.push(CampaignPoint {
                technique,
                model: FaultModel::single_bit(),
            });
            for &max_mbf in &MAX_MBF_VALUES {
                for &win_size in &WIN_SIZE_VALUES {
                    out.push(CampaignPoint {
                        technique,
                        model: FaultModel::multi_bit(max_mbf, win_size),
                    });
                }
            }
        }
        out
    }

    /// Campaigns with `win-size = 0` for one technique (the Fig. 2
    /// "multiple bits of the same register" sweep), single-bit included.
    pub fn same_register_sweep(technique: Technique) -> Vec<CampaignPoint> {
        let mut out = vec![CampaignPoint {
            technique,
            model: FaultModel::single_bit(),
        }];
        for &max_mbf in &MAX_MBF_VALUES {
            out.push(CampaignPoint {
                technique,
                model: FaultModel::multi_bit(max_mbf, WinSize::Fixed(0)),
            });
        }
        out
    }

    /// Multi-register campaigns (`win-size > 0`) for one technique, i.e. the
    /// grid behind Fig. 4 (read) and Fig. 5 (write).
    pub fn multi_register_grid(technique: Technique) -> Vec<CampaignPoint> {
        let mut out = Vec::new();
        for &max_mbf in &MAX_MBF_VALUES {
            for &win_size in &WIN_SIZE_VALUES {
                if win_size.is_same_register() {
                    continue;
                }
                out.push(CampaignPoint {
                    technique,
                    model: FaultModel::multi_bit(max_mbf, win_size),
                });
            }
        }
        out
    }

    /// Render Table I (parameter values) as text.
    pub fn table1() -> String {
        let mut out = String::from("Table I: max-MBF and win-size values\n");
        out.push_str("index  max-MBF    index  win-size\n");
        for i in 0..MAX_MBF_VALUES.len().max(WIN_SIZE_VALUES.len()) {
            let left = MAX_MBF_VALUES
                .get(i)
                .map(|v| format!("m{:<2}    {:<8}", i + 1, v))
                .unwrap_or_else(|| " ".repeat(15));
            let right = WIN_SIZE_VALUES
                .get(i)
                .map(|v| format!("w{:<2}    {}", i + 1, v.label()))
                .unwrap_or_default();
            out.push_str(&format!("{left}   {right}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_exactly_182_campaigns() {
        let all = ParameterGrid::all_campaigns();
        assert_eq!(all.len(), 182);
        let singles = all.iter().filter(|c| c.model.is_single()).count();
        assert_eq!(singles, 2);
        let reads = all
            .iter()
            .filter(|c| c.technique == Technique::InjectOnRead)
            .count();
        assert_eq!(reads, 91);
    }

    #[test]
    fn campaigns_are_unique() {
        let all = ParameterGrid::all_campaigns();
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn same_register_sweep_matches_fig2() {
        let sweep = ParameterGrid::same_register_sweep(Technique::InjectOnWrite);
        // 1 single-bit + 10 multi-bit bars per program in Fig. 2.
        assert_eq!(sweep.len(), 11);
        assert!(sweep[0].model.is_single());
        assert!(sweep[1..]
            .iter()
            .all(|c| c.model.win_size.is_same_register()));
    }

    #[test]
    fn multi_register_grid_excludes_window_zero() {
        let grid = ParameterGrid::multi_register_grid(Technique::InjectOnRead);
        assert_eq!(grid.len(), 10 * 8);
        assert!(grid.iter().all(|c| !c.model.win_size.is_same_register()));
    }

    #[test]
    fn table1_lists_all_values() {
        let t = ParameterGrid::table1();
        assert!(t.contains("30"));
        assert!(t.contains("RND(101-1000)"));
        assert!(t.contains("1000"));
    }

    #[test]
    fn labels_are_informative() {
        let p = CampaignPoint {
            technique: Technique::InjectOnWrite,
            model: FaultModel::multi_bit(4, WinSize::Fixed(10)),
        };
        assert_eq!(p.label(), "write/m=4,w=10");
    }
}
