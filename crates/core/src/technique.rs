//! The two fault-injection techniques of the paper (§III-A).

use std::fmt;

/// Where in the dataflow a bit-flip is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Technique {
    /// Corrupt a source register just before an instruction reads it.
    ///
    /// Emulates errors that propagate into a register (e.g. a direct particle
    /// hit on the register file).  All faults that hit a given bit between
    /// the register's last write and this read are equivalent to this single
    /// injection (Barbosa et al.'s pre-injection analysis).
    InjectOnRead,
    /// Corrupt a destination register right after an instruction writes it.
    ///
    /// Emulates errors in computation — ALUs and pipeline registers — that
    /// manifest as a corrupted result.
    InjectOnWrite,
}

impl Technique {
    /// Both techniques, in the order the paper lists them.
    pub const ALL: [Technique; 2] = [Technique::InjectOnRead, Technique::InjectOnWrite];

    /// Whether this technique targets destination registers.
    pub fn is_write(self) -> bool {
        matches!(self, Technique::InjectOnWrite)
    }

    /// Short name used in tables and reports.
    pub fn short_name(self) -> &'static str {
        match self {
            Technique::InjectOnRead => "read",
            Technique::InjectOnWrite => "write",
        }
    }

    /// Parse a [`Technique::short_name`] back (the serve wire encoding).
    pub fn from_short_name(name: &str) -> Option<Technique> {
        Technique::ALL.into_iter().find(|t| t.short_name() == name)
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Technique::InjectOnRead => f.write_str("inject-on-read"),
            Technique::InjectOnWrite => f.write_str("inject-on-write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_flags() {
        assert_eq!(Technique::InjectOnRead.to_string(), "inject-on-read");
        assert_eq!(Technique::InjectOnWrite.short_name(), "write");
        assert!(Technique::InjectOnWrite.is_write());
        assert!(!Technique::InjectOnRead.is_write());
        assert_eq!(Technique::ALL.len(), 2);
    }
}
