//! The golden (fault-free) run of a workload.
//!
//! Golden runs execute through the compiled pipeline: the module is lowered
//! once with [`CompiledModule::lower`] and profiled on the flat bytecode, so
//! candidate counting consumes the lowering-time static metadata instead of
//! re-deriving per-instruction facts.  [`GoldenRun::capture_compiled`] takes
//! a pre-lowered module for callers (campaigns, benches) that reuse one.

use mbfi_ir::{CompiledModule, Module};
use mbfi_vm::{CountingHook, ExecutionProfile, Limits, RunOutcome, Vm};

/// Result of profiling one workload without faults.
///
/// Every campaign starts from a `GoldenRun`: it provides the reference output
/// for SDC detection, the dynamic instruction count used to derive the hang
/// threshold, and the candidate counts from which injection targets are
/// drawn (Table II of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenRun {
    /// Output produced by the fault-free run.
    pub output: Vec<u8>,
    /// Number of dynamic instructions in the fault-free run.
    pub dynamic_instrs: u64,
    /// Candidate counts and opcode histogram.
    pub profile: ExecutionProfile,
}

/// Errors that can occur while capturing a golden run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldenError {
    /// The fault-free run did not complete normally (the workload is broken).
    DidNotComplete(String),
    /// The fault-free run produced no output, so SDCs could never be observed.
    NoOutput,
}

impl std::fmt::Display for GoldenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GoldenError::DidNotComplete(why) => {
                write!(f, "fault-free run did not complete: {why}")
            }
            GoldenError::NoOutput => write!(f, "fault-free run produced no output"),
        }
    }
}

impl std::error::Error for GoldenError {}

impl GoldenRun {
    /// Execute the module once without faults and capture its profile.
    pub fn capture(module: &Module) -> Result<GoldenRun, GoldenError> {
        Self::capture_with_limits(module, Limits::default())
    }

    /// Capture with explicit execution limits (useful in tests).
    pub fn capture_with_limits(module: &Module, limits: Limits) -> Result<GoldenRun, GoldenError> {
        let code = CompiledModule::lower(module);
        Self::capture_compiled_with_limits(&code, limits)
    }

    /// Capture from a pre-lowered module (the path campaigns and benches use
    /// so lowering happens once per workload).
    pub fn capture_compiled(code: &CompiledModule) -> Result<GoldenRun, GoldenError> {
        Self::capture_compiled_with_limits(code, Limits::default())
    }

    /// Capture from a pre-lowered module with explicit execution limits.
    pub fn capture_compiled_with_limits(
        code: &CompiledModule,
        limits: Limits,
    ) -> Result<GoldenRun, GoldenError> {
        let mut hook = CountingHook::new();
        let result = Vm::new(code, limits).run(&mut hook);
        match &result.outcome {
            RunOutcome::Completed { .. } => {}
            RunOutcome::Trapped(trap) => return Err(GoldenError::DidNotComplete(trap.to_string())),
            RunOutcome::InstrLimitExceeded => {
                return Err(GoldenError::DidNotComplete(
                    "dynamic instruction limit exceeded".to_string(),
                ))
            }
        }
        if result.output.is_empty() {
            return Err(GoldenError::NoOutput);
        }
        Ok(GoldenRun {
            output: result.output,
            dynamic_instrs: result.dynamic_instrs,
            profile: hook.into_profile(),
        })
    }

    /// Number of injection candidates for a technique.
    pub fn candidates(&self, technique: crate::Technique) -> u64 {
        self.profile.candidates_for(technique.is_write())
    }

    /// Hang-detection limits for faulty runs derived from this golden run.
    pub fn faulty_run_limits(&self, hang_factor: u64) -> Limits {
        Limits::hang_threshold(self.dynamic_instrs, hang_factor)
    }

    /// The checkpoint interval a replay store defaults to for this run:
    /// 1/128th of the golden run length (at least 1), i.e. at most ~128
    /// checkpoints and an expected replayed prefix of 1/256th of the run.
    /// Shared by `CheckpointConfig::auto_for` and the bench harness so the
    /// heuristic lives in one place.
    pub fn default_checkpoint_interval(&self) -> u64 {
        (self.dynamic_instrs / 128).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Technique;
    use mbfi_ir::{ModuleBuilder, Type};

    fn summing_module(n: i64, print: bool) -> Module {
        let mut mb = ModuleBuilder::new("sum");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, n, |f, i| {
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, i);
                f.store(Type::I64, next, acc);
            });
            if print {
                let total = f.load(Type::I64, acc);
                f.print_i64(total);
            }
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn captures_output_and_candidates() {
        let m = summing_module(50, true);
        let g = GoldenRun::capture(&m).unwrap();
        assert_eq!(g.output, b"1225\n");
        assert!(g.dynamic_instrs > 100);
        assert!(g.candidates(Technique::InjectOnRead) > g.candidates(Technique::InjectOnWrite));
        let limits = g.faulty_run_limits(100);
        assert!(limits.max_dynamic_instrs >= g.dynamic_instrs * 100);
    }

    #[test]
    fn workload_without_output_is_rejected() {
        let m = summing_module(5, false);
        assert_eq!(GoldenRun::capture(&m), Err(GoldenError::NoOutput));
    }

    #[test]
    fn crashing_workload_is_rejected() {
        let mut mb = ModuleBuilder::new("bad");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            f.unreachable();
        }
        mb.set_entry(main);
        let err = GoldenRun::capture(&mb.finish()).unwrap_err();
        assert!(matches!(err, GoldenError::DidNotComplete(_)));
        assert!(err.to_string().contains("did not complete"));
    }
}
