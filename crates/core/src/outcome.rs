//! Outcome classification of fault-injection experiments (§III-E).

use crate::report::json::Json;
use mbfi_vm::{RunOutcome, RunResult, Trap};
use std::fmt;
use std::ops::{Add, AddAssign};

/// The outcome categories of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// The program terminated normally and produced the golden output.
    Benign,
    /// A hardware exception (segfault, misaligned access, arithmetic error,
    /// abort) was raised.
    DetectedHwException,
    /// The program failed to terminate within the hang threshold.
    Hang,
    /// The program terminated without producing any output.
    NoOutput,
    /// The program terminated normally but its output differs bit-wise from
    /// the golden output — a silent data corruption.
    Sdc,
}

impl Outcome {
    /// All outcome categories in report order.
    pub const ALL: [Outcome; 5] = [
        Outcome::Benign,
        Outcome::DetectedHwException,
        Outcome::Hang,
        Outcome::NoOutput,
        Outcome::Sdc,
    ];

    /// Whether this outcome counts toward error resilience (everything except
    /// an SDC does: the error was masked or there is an indication of failure).
    pub fn is_resilient(self) -> bool {
        !matches!(self, Outcome::Sdc)
    }

    /// Whether this outcome counts as a *Detection* in the paper's figures
    /// (hardware exception, hang or missing output).
    pub fn is_detection(self) -> bool {
        matches!(
            self,
            Outcome::DetectedHwException | Outcome::Hang | Outcome::NoOutput
        )
    }

    /// Short name used in tables.
    pub fn short_name(self) -> &'static str {
        match self {
            Outcome::Benign => "benign",
            Outcome::DetectedHwException => "hw-exception",
            Outcome::Hang => "hang",
            Outcome::NoOutput => "no-output",
            Outcome::Sdc => "sdc",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Classify a faulty run against the golden output.
///
/// * traps → [`Outcome::DetectedHwException`]
/// * instruction-limit exceeded → [`Outcome::Hang`]
/// * normal termination with identical output → [`Outcome::Benign`]
/// * normal termination with empty output (golden non-empty) → [`Outcome::NoOutput`]
/// * normal termination with different output → [`Outcome::Sdc`]
pub fn classify(result: &RunResult, golden_output: &[u8]) -> Outcome {
    match &result.outcome {
        RunOutcome::Trapped(
            Trap::Segfault { .. }
            | Trap::Misaligned { .. }
            | Trap::DivideByZero
            | Trap::Abort
            | Trap::StackOverflow
            | Trap::OutOfMemory
            | Trap::InvalidCall { .. },
        ) => Outcome::DetectedHwException,
        RunOutcome::InstrLimitExceeded => Outcome::Hang,
        RunOutcome::Completed { .. } => {
            if result.output == golden_output {
                Outcome::Benign
            } else if result.output.is_empty() && !golden_output.is_empty() {
                Outcome::NoOutput
            } else {
                Outcome::Sdc
            }
        }
    }
}

/// Counts of experiments per outcome category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    /// Number of benign experiments.
    pub benign: u64,
    /// Number of experiments detected by a hardware exception.
    pub hw_exception: u64,
    /// Number of hangs.
    pub hang: u64,
    /// Number of runs with no output.
    pub no_output: u64,
    /// Number of silent data corruptions.
    pub sdc: u64,
}

impl OutcomeCounts {
    /// Record one outcome.
    pub fn record(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Benign => self.benign += 1,
            Outcome::DetectedHwException => self.hw_exception += 1,
            Outcome::Hang => self.hang += 1,
            Outcome::NoOutput => self.no_output += 1,
            Outcome::Sdc => self.sdc += 1,
        }
    }

    /// Count for one category.
    pub fn get(&self, outcome: Outcome) -> u64 {
        match outcome {
            Outcome::Benign => self.benign,
            Outcome::DetectedHwException => self.hw_exception,
            Outcome::Hang => self.hang,
            Outcome::NoOutput => self.no_output,
            Outcome::Sdc => self.sdc,
        }
    }

    /// Total number of experiments.
    pub fn total(&self) -> u64 {
        self.benign + self.hw_exception + self.hang + self.no_output + self.sdc
    }

    /// Total of the Detection category (hardware exception + hang + no output).
    pub fn detection(&self) -> u64 {
        self.hw_exception + self.hang + self.no_output
    }

    /// Fraction of experiments in one category (0 when empty).
    pub fn fraction(&self, outcome: Outcome) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(outcome) as f64 / total as f64
        }
    }

    /// Percentage of SDCs.
    pub fn sdc_pct(&self) -> f64 {
        self.fraction(Outcome::Sdc) * 100.0
    }

    /// Percentage of Detections.
    pub fn detection_pct(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.detection() as f64 / total as f64 * 100.0
        }
    }

    /// Error resilience: probability of *not* producing an SDC.
    pub fn resilience(&self) -> f64 {
        1.0 - self.fraction(Outcome::Sdc)
    }

    /// Write the five category counts as flat fields of `obj` — the
    /// telemetry-schema field names, shared with the serve wire protocol.
    pub fn write_json(&self, obj: &mut Json) {
        obj.set("benign", self.benign);
        obj.set("hw_exception", self.hw_exception);
        obj.set("hang", self.hang);
        obj.set("no_output", self.no_output);
        obj.set("sdc", self.sdc);
    }

    /// The counts as a standalone JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        self.write_json(&mut obj);
        obj
    }

    /// Read the five category fields back from an object carrying them
    /// (extra fields are ignored, so a whole telemetry event works too).
    pub fn from_json(v: &Json) -> Option<OutcomeCounts> {
        Some(OutcomeCounts {
            benign: v.get("benign")?.as_u64()?,
            hw_exception: v.get("hw_exception")?.as_u64()?,
            hang: v.get("hang")?.as_u64()?,
            no_output: v.get("no_output")?.as_u64()?,
            sdc: v.get("sdc")?.as_u64()?,
        })
    }
}

impl Add for OutcomeCounts {
    type Output = OutcomeCounts;
    fn add(self, rhs: OutcomeCounts) -> OutcomeCounts {
        OutcomeCounts {
            benign: self.benign + rhs.benign,
            hw_exception: self.hw_exception + rhs.hw_exception,
            hang: self.hang + rhs.hang,
            no_output: self.no_output + rhs.no_output,
            sdc: self.sdc + rhs.sdc,
        }
    }
}

impl AddAssign for OutcomeCounts {
    fn add_assign(&mut self, rhs: OutcomeCounts) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbfi_vm::Value;

    fn completed(output: &[u8]) -> RunResult {
        RunResult {
            outcome: RunOutcome::Completed {
                ret: Some(Value::i32(0)),
            },
            dynamic_instrs: 10,
            output: output.to_vec(),
        }
    }

    #[test]
    fn classification_covers_all_categories() {
        let golden = b"42\n".to_vec();
        assert_eq!(classify(&completed(b"42\n"), &golden), Outcome::Benign);
        assert_eq!(classify(&completed(b"43\n"), &golden), Outcome::Sdc);
        assert_eq!(classify(&completed(b""), &golden), Outcome::NoOutput);

        let trapped = RunResult {
            outcome: RunOutcome::Trapped(Trap::Segfault { addr: 1 }),
            dynamic_instrs: 5,
            output: vec![],
        };
        assert_eq!(classify(&trapped, &golden), Outcome::DetectedHwException);

        let hang = RunResult {
            outcome: RunOutcome::InstrLimitExceeded,
            dynamic_instrs: 1000,
            output: vec![],
        };
        assert_eq!(classify(&hang, &golden), Outcome::Hang);
    }

    #[test]
    fn empty_output_program_with_empty_golden_is_benign() {
        assert_eq!(classify(&completed(b""), b""), Outcome::Benign);
    }

    #[test]
    fn resilience_and_detection_flags() {
        assert!(Outcome::Benign.is_resilient());
        assert!(Outcome::Hang.is_resilient());
        assert!(!Outcome::Sdc.is_resilient());
        assert!(Outcome::Hang.is_detection());
        assert!(Outcome::NoOutput.is_detection());
        assert!(!Outcome::Benign.is_detection());
        assert!(!Outcome::Sdc.is_detection());
    }

    #[test]
    fn counts_accumulate_and_percentages_add_up() {
        let mut c = OutcomeCounts::default();
        for _ in 0..50 {
            c.record(Outcome::Benign);
        }
        for _ in 0..30 {
            c.record(Outcome::DetectedHwException);
        }
        for _ in 0..20 {
            c.record(Outcome::Sdc);
        }
        assert_eq!(c.total(), 100);
        assert_eq!(c.detection(), 30);
        assert!((c.sdc_pct() - 20.0).abs() < 1e-9);
        assert!((c.detection_pct() - 30.0).abs() < 1e-9);
        assert!((c.resilience() - 0.8).abs() < 1e-9);
        let sum: f64 = Outcome::ALL.iter().map(|o| c.fraction(*o)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn counts_add() {
        let mut a = OutcomeCounts::default();
        a.record(Outcome::Sdc);
        let mut b = OutcomeCounts::default();
        b.record(Outcome::Benign);
        b.record(Outcome::Hang);
        let c = a + b;
        assert_eq!(c.total(), 3);
        let mut d = OutcomeCounts::default();
        d += c;
        assert_eq!(d.sdc, 1);
        assert_eq!(d.hang, 1);
    }

    #[test]
    fn empty_counts_have_zero_percentages() {
        let c = OutcomeCounts::default();
        assert_eq!(c.sdc_pct(), 0.0);
        assert_eq!(c.detection_pct(), 0.0);
        assert_eq!(c.fraction(Outcome::Benign), 0.0);
    }
}
