//! The campaign telemetry plane: a structured event bus, a metrics registry,
//! timing histograms and the state model behind the live sweep monitor.
//!
//! A campaign-scale study runs millions of experiments across a grid of sweep
//! cells, yet historically the only window into a running sweep was its final
//! [`crate::SweepReport`].  This module makes a sweep *observable* while it
//! runs, without ever being allowed to change its results:
//!
//! * [`TelemetrySink`] — the publishing trait the sweep executor, campaigns,
//!   replay, and pruning code write into.  It is **zero-cost when disabled**:
//!   the executor is generic over `S: TelemetrySink`, every call site is
//!   guarded by `if S::ENABLED { .. }` on the associated `const`, and the
//!   default [`NoopSink`] sets `ENABLED = false` — so the disabled
//!   instrumentation monomorphizes away exactly like `NoopHook` does in the
//!   compiled VM.
//! * [`TelemetryHub`] — the live implementation: a lock-free registry of
//!   atomic [`Metric`] counters, per-cell/per-worker atomic cells, an
//!   HDR-style power-of-two [`LogHistogram`] of experiment latency, and an
//!   `mpsc`-backed channel of structured [`TelemetryEvent`]s.
//! * JSON-lines event stream — every event renders to one line of JSON
//!   (monotonic sequence, elapsed nanos, kind, cell id, payload) through the
//!   hand-rolled [`crate::report::json`] writer, and parses back through
//!   [`TelemetryEvent::parse_line`].  This stream is the wire format the
//!   future `mbfi-serve` daemon and sharded sweeps will speak.
//! * [`MonitorState`] — a deterministic accumulator that replays an event
//!   stream into per-cell progress (used by the `mbfi-monitor` bin, whose
//!   `--headless` mode cross-checks stream-accumulated totals against the
//!   final per-cell counts and fails CI on any mismatch).
//!
//! ## The observation-only contract
//!
//! Telemetry must be *byte-invariant*: with any [`TelemetryLevel`], every
//! `CampaignResult`/`SweepReport` is byte-identical to a telemetry-off run at
//! every thread count.  Nothing here feeds back into scheduling, sampling or
//! classification — the hub only ever aggregates what already happened
//! (`tests/telemetry_equivalence.rs` pins this).

use crate::adaptive::Precision;
use crate::outcome::{Outcome, OutcomeCounts};
use crate::report::json::Json;
use mbfi_vm::ExecutionProfile;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex, RwLock};
use std::time::Instant;

/// How much the telemetry plane records.
///
/// Parsed from the `MBFI_TELEMETRY` knob by the bench harness:
/// `off` (default) compiles/branches away, `counters` keeps only the atomic
/// metric and per-cell tallies, `full` additionally times every experiment
/// and records the structured event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TelemetryLevel {
    /// Record nothing.
    #[default]
    Off,
    /// Atomic counters, per-cell tallies and per-worker stats only.
    Counters,
    /// Counters plus per-experiment latency histogram and the event stream.
    Full,
}

impl TelemetryLevel {
    /// Parse the `MBFI_TELEMETRY` knob grammar.
    pub fn parse(s: &str) -> Option<TelemetryLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" | "" => Some(TelemetryLevel::Off),
            "counters" | "1" => Some(TelemetryLevel::Counters),
            "full" | "2" => Some(TelemetryLevel::Full),
            _ => None,
        }
    }

    /// The knob spelling of this level.
    pub fn label(self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Counters => "counters",
            TelemetryLevel::Full => "full",
        }
    }
}

/// Every counter in the metrics registry.
///
/// Counters are monotonic `u64` sums, cheap enough to bump from the hot path
/// (one relaxed `fetch_add`).  The variants cover the whole stack: executor
/// health (batches, steals, parking), replay savings, artifact-cache and
/// pruning effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Experiments executed (all cells).
    ExperimentsRun = 0,
    /// Batches executed by the sweep executor.
    BatchesRun = 1,
    /// Batches a worker claimed from another worker's home campaign.
    BatchesStolen = 2,
    /// Adaptive rounds evaluated (stop-rule decisions made).
    RoundsCompleted = 3,
    /// Sweep cells finalized.
    CellsFinished = 4,
    /// Times an idle worker parked on the executor condvar.
    WorkerParks = 5,
    /// Times a parked worker was woken by a release/finish notification.
    WorkerUnparks = 6,
    /// Nanoseconds workers spent parked (condvar wait time).
    IdleNanos = 7,
    /// Nanoseconds workers spent executing batches.
    BusyNanos = 8,
    /// Artifact-cache hits (a requested cell's artefacts already existed).
    CacheHits = 9,
    /// Artifact-cache misses (artefacts built fresh).
    CacheMisses = 10,
    /// Bytes held by checkpoint stores registered with the sweep.
    CheckpointStoreBytes = 11,
    /// Checkpoints held by checkpoint stores registered with the sweep.
    CheckpointStoreCheckpoints = 12,
    /// Experiments that fast-forwarded from a checkpoint instead of
    /// re-executing the fault-free prefix.  Per-experiment, so sweeps
    /// populate it at [`TelemetryLevel::Full`] only (the Counters-level hot
    /// loop deliberately carries no per-experiment instrumentation).
    CheckpointRestores = 13,
    /// Dynamic instructions skipped by checkpoint fast-forwarding.
    ReplayInstrsSkipped = 14,
    /// Experiments skipped by bit-level static pruning (known-benign sites).
    PruneSkippedExperiments = 15,
    /// Experiments actually executed by a pruned campaign.
    PruneExecutedExperiments = 16,
    /// 4 KiB chunks cloned because an experiment wrote to a chunk shared
    /// with a snapshot (the dirty-page cost of copy-on-write forking).
    /// Per-experiment, populated at [`TelemetryLevel::Full`] only.
    CowChunksCopied = 17,
    /// Bytes a deep-copy restore would have moved that copy-on-write
    /// restores did not (zero when `MBFI_COW=off`).
    CowRestoreBytesSaved = 18,
}

impl Metric {
    /// All metrics, in registry order (`m as usize` indexes this array).
    pub const ALL: [Metric; 19] = [
        Metric::ExperimentsRun,
        Metric::BatchesRun,
        Metric::BatchesStolen,
        Metric::RoundsCompleted,
        Metric::CellsFinished,
        Metric::WorkerParks,
        Metric::WorkerUnparks,
        Metric::IdleNanos,
        Metric::BusyNanos,
        Metric::CacheHits,
        Metric::CacheMisses,
        Metric::CheckpointStoreBytes,
        Metric::CheckpointStoreCheckpoints,
        Metric::CheckpointRestores,
        Metric::ReplayInstrsSkipped,
        Metric::PruneSkippedExperiments,
        Metric::PruneExecutedExperiments,
        Metric::CowChunksCopied,
        Metric::CowRestoreBytesSaved,
    ];

    /// Snake-case registry name (stable; used in snapshots and bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            Metric::ExperimentsRun => "experiments_run",
            Metric::BatchesRun => "batches_run",
            Metric::BatchesStolen => "batches_stolen",
            Metric::RoundsCompleted => "rounds_completed",
            Metric::CellsFinished => "cells_finished",
            Metric::WorkerParks => "worker_parks",
            Metric::WorkerUnparks => "worker_unparks",
            Metric::IdleNanos => "idle_ns",
            Metric::BusyNanos => "busy_ns",
            Metric::CacheHits => "cache_hits",
            Metric::CacheMisses => "cache_misses",
            Metric::CheckpointStoreBytes => "checkpoint_store_bytes",
            Metric::CheckpointStoreCheckpoints => "checkpoint_store_checkpoints",
            Metric::CheckpointRestores => "checkpoint_restores",
            Metric::ReplayInstrsSkipped => "replay_instrs_skipped",
            Metric::PruneSkippedExperiments => "prune_skipped_experiments",
            Metric::PruneExecutedExperiments => "prune_executed_experiments",
            Metric::CowChunksCopied => "cow_chunks_copied",
            Metric::CowRestoreBytesSaved => "cow_restore_bytes_saved",
        }
    }
}

/// Static description of one sweep cell, published when a sweep starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellInfo {
    /// Index into the sweep's unit (workload) slice.
    pub unit: usize,
    /// Human-readable cell label (workload, technique, fault model).
    pub label: String,
    /// Experiment budget (fixed n, or the adaptive `max_experiments` cap).
    pub planned: u64,
}

/// One structured telemetry event: a monotonic sequence number, nanoseconds
/// since the hub was created, and the kind-specific payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    /// Monotonic sequence number (unique per hub; events on the JSONL stream
    /// may appear slightly out of order across workers, but the set of
    /// sequence numbers is always gap-free).
    pub seq: u64,
    /// Nanoseconds since the hub's creation.
    pub t_ns: u64,
    /// Payload.
    pub kind: EventKind,
}

/// The payload of a [`TelemetryEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A sweep began: cell count, worker threads, total planned experiments.
    SweepStarted {
        /// Number of cells in the sweep.
        cells: usize,
        /// Worker threads.
        threads: usize,
        /// Sum of per-cell budgets.
        planned: u64,
    },
    /// Static description of one cell (emitted once per cell at sweep start).
    CellPlanned {
        /// Cell index.
        cell: usize,
        /// Cell metadata.
        info: CellInfo,
    },
    /// A batch of experiments finished.
    BatchDone {
        /// Cell index.
        cell: usize,
        /// Batch index within the cell.
        batch: usize,
        /// Experiments in the batch.
        experiments: u64,
        /// Outcome tallies of the batch.
        counts: OutcomeCounts,
        /// Wall-clock nanoseconds the batch took.
        wall_ns: u64,
        /// Worker that executed the batch.
        worker: usize,
        /// Whether the batch was stolen from another worker's home campaign.
        stolen: bool,
    },
    /// An adaptive round completed and the stop rule was evaluated.
    RoundDone {
        /// Cell index.
        cell: usize,
        /// Round number (1-based).
        round: u32,
        /// Merged experiments after this round.
        experiments: u64,
        /// Realized SDC interval half-width, percentage points.
        sdc_half_width_pct: f64,
        /// Realized Detection interval half-width, percentage points.
        detection_half_width_pct: f64,
        /// Whether the stop rule fired at this round.
        stopped: bool,
    },
    /// A cell finalized; `counts` are its authoritative final tallies.
    CellFinished {
        /// Cell index.
        cell: usize,
        /// Realized experiments.
        experiments: u64,
        /// Final outcome tallies.
        counts: OutcomeCounts,
        /// Completed rounds (0 for fixed-n cells).
        rounds: u32,
    },
    /// The whole sweep finished.
    SweepFinished {
        /// Number of cells.
        cells: usize,
        /// Total experiments across all cells.
        experiments: u64,
        /// Sweep wall clock, nanoseconds.
        wall_ns: u64,
        /// Total [`Metric::CowChunksCopied`] at sweep end (0 when the level
        /// never recorded per-experiment costs).
        cow_chunks_copied: u64,
        /// Total [`Metric::CowRestoreBytesSaved`] at sweep end.
        cow_restore_bytes_saved: u64,
    },
}

fn counts_into(obj: &mut Json, c: &OutcomeCounts) {
    c.write_json(obj);
}

fn counts_from(v: &Json) -> Option<OutcomeCounts> {
    OutcomeCounts::from_json(v)
}

impl TelemetryEvent {
    /// Render as one JSON object (one line of the JSONL stream).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("seq", self.seq);
        obj.set("t_ns", self.t_ns);
        match &self.kind {
            EventKind::SweepStarted {
                cells,
                threads,
                planned,
            } => {
                obj.set("kind", "sweep_started");
                obj.set("cells", *cells);
                obj.set("threads", *threads);
                obj.set("planned", *planned);
            }
            EventKind::CellPlanned { cell, info } => {
                obj.set("kind", "cell_planned");
                obj.set("cell", *cell);
                obj.set("unit", info.unit);
                obj.set("label", info.label.clone());
                obj.set("planned", info.planned);
            }
            EventKind::BatchDone {
                cell,
                batch,
                experiments,
                counts,
                wall_ns,
                worker,
                stolen,
            } => {
                obj.set("kind", "batch_done");
                obj.set("cell", *cell);
                obj.set("batch", *batch);
                obj.set("experiments", *experiments);
                counts_into(&mut obj, counts);
                obj.set("wall_ns", *wall_ns);
                obj.set("worker", *worker);
                obj.set("stolen", *stolen);
            }
            EventKind::RoundDone {
                cell,
                round,
                experiments,
                sdc_half_width_pct,
                detection_half_width_pct,
                stopped,
            } => {
                obj.set("kind", "round_done");
                obj.set("cell", *cell);
                obj.set("round", *round);
                obj.set("experiments", *experiments);
                obj.set("sdc_hw_pct", *sdc_half_width_pct);
                obj.set("det_hw_pct", *detection_half_width_pct);
                obj.set("stopped", *stopped);
            }
            EventKind::CellFinished {
                cell,
                experiments,
                counts,
                rounds,
            } => {
                obj.set("kind", "cell_finished");
                obj.set("cell", *cell);
                obj.set("experiments", *experiments);
                counts_into(&mut obj, counts);
                obj.set("rounds", *rounds);
            }
            EventKind::SweepFinished {
                cells,
                experiments,
                wall_ns,
                cow_chunks_copied,
                cow_restore_bytes_saved,
            } => {
                obj.set("kind", "sweep_finished");
                obj.set("cells", *cells);
                obj.set("experiments", *experiments);
                obj.set("wall_ns", *wall_ns);
                obj.set("cow_chunks", *cow_chunks_copied);
                obj.set("cow_saved", *cow_restore_bytes_saved);
            }
        }
        obj
    }

    /// Render as one JSONL line (no trailing newline).
    pub fn render_line(&self) -> String {
        self.to_json().render()
    }

    /// Parse one JSONL line back into an event (the monitor's input path).
    pub fn parse_line(line: &str) -> Result<TelemetryEvent, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        TelemetryEvent::from_json(&v).ok_or_else(|| format!("malformed telemetry event: {line}"))
    }

    /// Decode from a parsed JSON object.
    pub fn from_json(v: &Json) -> Option<TelemetryEvent> {
        let seq = v.get("seq")?.as_u64()?;
        let t_ns = v.get("t_ns")?.as_u64()?;
        let cell = |v: &Json| v.get("cell").and_then(Json::as_u64).map(|c| c as usize);
        let kind = match v.get("kind")?.as_str()? {
            "sweep_started" => EventKind::SweepStarted {
                cells: v.get("cells")?.as_u64()? as usize,
                threads: v.get("threads")?.as_u64()? as usize,
                planned: v.get("planned")?.as_u64()?,
            },
            "cell_planned" => EventKind::CellPlanned {
                cell: cell(v)?,
                info: CellInfo {
                    unit: v.get("unit")?.as_u64()? as usize,
                    label: v.get("label")?.as_str()?.to_string(),
                    planned: v.get("planned")?.as_u64()?,
                },
            },
            "batch_done" => EventKind::BatchDone {
                cell: cell(v)?,
                batch: v.get("batch")?.as_u64()? as usize,
                experiments: v.get("experiments")?.as_u64()?,
                counts: counts_from(v)?,
                wall_ns: v.get("wall_ns")?.as_u64()?,
                worker: v.get("worker")?.as_u64()? as usize,
                stolen: v.get("stolen")?.as_bool()?,
            },
            "round_done" => EventKind::RoundDone {
                cell: cell(v)?,
                round: v.get("round")?.as_u64()? as u32,
                experiments: v.get("experiments")?.as_u64()?,
                sdc_half_width_pct: v.get("sdc_hw_pct")?.as_f64()?,
                detection_half_width_pct: v.get("det_hw_pct")?.as_f64()?,
                stopped: v.get("stopped")?.as_bool()?,
            },
            "cell_finished" => EventKind::CellFinished {
                cell: cell(v)?,
                experiments: v.get("experiments")?.as_u64()?,
                counts: counts_from(v)?,
                rounds: v.get("rounds")?.as_u64()? as u32,
            },
            "sweep_finished" => EventKind::SweepFinished {
                cells: v.get("cells")?.as_u64()? as usize,
                experiments: v.get("experiments")?.as_u64()?,
                wall_ns: v.get("wall_ns")?.as_u64()?,
                // Absent in streams recorded before the CoW metrics existed.
                cow_chunks_copied: v.get("cow_chunks").and_then(Json::as_u64).unwrap_or(0),
                cow_restore_bytes_saved: v.get("cow_saved").and_then(Json::as_u64).unwrap_or(0),
            },
            _ => return None,
        };
        Some(TelemetryEvent { seq, t_ns, kind })
    }
}

/// The publishing side of the telemetry plane.
///
/// The sweep executor and everything below it are generic over this trait.
/// Call sites that build payloads guard with `if S::ENABLED { .. }` so the
/// whole block constant-folds away for [`NoopSink`]; implementations
/// additionally gate on their runtime [`TelemetryLevel`], so a hub at
/// `Counters` ignores event emission.
///
/// All methods default to no-ops: a sink implements only what it records.
pub trait TelemetrySink: Sync {
    /// `false` makes every guarded call site compile away (the `NoopHook`
    /// idiom of the compiled VM, applied to instrumentation).
    const ENABLED: bool;

    /// The runtime recording level.
    fn level(&self) -> TelemetryLevel {
        TelemetryLevel::Off
    }

    /// Register the cells and worker count of a starting sweep, replacing any
    /// previous registration.
    fn begin_sweep(&self, _cells: &[CellInfo], _threads: usize) {}

    /// Bump a registry counter.
    fn add(&self, _metric: Metric, _delta: u64) {}

    /// Record one finished experiment (outcome tally + latency; pass
    /// `latency_ns = 0` when the experiment was not individually timed).
    fn experiment(&self, _cell: usize, _outcome: Outcome, _latency_ns: u64) {}

    /// Record a whole executed batch of experiments against a cell in one
    /// call — the Counters-level bulk form of [`TelemetrySink::experiment`],
    /// so the per-experiment hot loop carries no instrumentation at all.
    fn experiment_batch(&self, _cell: usize, _counts: &OutcomeCounts) {}

    /// Record a finished batch against its executing worker.
    fn worker_batch(&self, _worker: usize, _experiments: u64, _busy_ns: u64, _stolen: bool) {}

    /// Record a worker's park episode (idle time and whether a notification
    /// woke it, as opposed to a timeout).
    fn worker_idle(&self, _worker: usize, _idle_ns: u64, _woken: bool) {}

    /// Update a cell's adaptive gauges (round count, realized half-widths)
    /// and/or mark it finished.
    fn cell_status(
        &self,
        _cell: usize,
        _rounds: u32,
        _sdc_half_width_pct: f64,
        _detection_half_width_pct: f64,
        _finished: bool,
    ) {
    }

    /// Emit a structured event onto the stream (Full level only).
    fn emit(&self, _kind: EventKind) {}

    /// Read back a registry counter's current value, for sinks that keep one
    /// (the hub).  Event payloads that summarize counters at a boundary
    /// (e.g. the CoW totals on [`EventKind::SweepFinished`]) are built from
    /// this; sinks without a registry report zero.
    fn counter_value(&self, _metric: Metric) -> u64 {
        0
    }

    /// Merge a fault-free execution profile (per-opcode dynamic-instruction
    /// histogram) into the sweep-wide profile.
    fn profile(&self, _profile: &ExecutionProfile) {}
}

/// The always-disabled sink: every guarded call site monomorphizes away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    const ENABLED: bool = false;
}

/// An HDR-style latency histogram: 65 power-of-two buckets (bucket `i > 0`
/// holds values with bit length `i`, bucket 0 holds zero), each an atomic
/// counter, so recording is one relaxed `fetch_add` and the histogram is
/// shared freely across workers.  Quantiles are resolved to the geometric
/// middle of their bucket (±50 % — exactly what p50/p90/p99 of microsecond
/// experiment latencies need, at 520 bytes per histogram).
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
}

const HIST_BUCKETS: usize = 65;

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Representative value of a bucket (its geometric middle).
    fn bucket_value(bucket: usize) -> u64 {
        match bucket {
            0 => 0,
            1 => 1,
            b => {
                let lo = 1u64 << (b - 1);
                lo + lo / 2
            }
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The value at quantile `q` in `[0, 1]` (bucket-resolution; 0 if empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the requested quantile, 1-based, clamped into [1, total].
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i);
            }
        }
        Self::bucket_value(HIST_BUCKETS - 1)
    }

    /// Snapshot with the standard percentiles.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.count(),
            p50_ns: self.quantile(0.50),
            p90_ns: self.quantile(0.90),
            p99_ns: self.quantile(0.99),
            max_ns: self.quantile(1.0),
        }
    }
}

/// Point-in-time percentiles of the experiment latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Median latency (bucket resolution), nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Largest observed bucket, nanoseconds.
    pub max_ns: u64,
}

fn outcome_index(outcome: Outcome) -> usize {
    match outcome {
        Outcome::Benign => 0,
        Outcome::DetectedHwException => 1,
        Outcome::Hang => 2,
        Outcome::NoOutput => 3,
        Outcome::Sdc => 4,
    }
}

#[derive(Debug)]
struct CellStats {
    info: CellInfo,
    done: AtomicU64,
    outcomes: [AtomicU64; 5],
    rounds: AtomicU64,
    // f64::to_bits of the latest realized half-widths; u64::MAX = unset.
    sdc_hw_bits: AtomicU64,
    det_hw_bits: AtomicU64,
    finished: AtomicU64,
}

impl CellStats {
    fn new(info: CellInfo) -> CellStats {
        CellStats {
            info,
            done: AtomicU64::new(0),
            outcomes: Default::default(),
            rounds: AtomicU64::new(0),
            sdc_hw_bits: AtomicU64::new(u64::MAX),
            det_hw_bits: AtomicU64::new(u64::MAX),
            finished: AtomicU64::new(0),
        }
    }
}

#[derive(Debug, Default)]
struct WorkerStats {
    experiments: AtomicU64,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
    steals: AtomicU64,
}

#[derive(Debug, Default)]
struct SweepState {
    cells: Vec<CellStats>,
    workers: Vec<WorkerStats>,
    threads: usize,
}

/// The live telemetry aggregation point.
///
/// One hub observes one sweep at a time ([`TelemetrySink::begin_sweep`]
/// replaces the per-cell registration); registry counters, the latency
/// histogram and the event stream accumulate across the hub's lifetime.
#[derive(Debug)]
pub struct TelemetryHub {
    level: TelemetryLevel,
    start: Instant,
    seq: AtomicU64,
    counters: Vec<AtomicU64>,
    latency: LogHistogram,
    state: RwLock<SweepState>,
    profile: Mutex<ExecutionProfile>,
    events_tx: mpsc::Sender<TelemetryEvent>,
    events_rx: Mutex<mpsc::Receiver<TelemetryEvent>>,
}

impl TelemetryHub {
    /// A hub recording at the given level.
    pub fn new(level: TelemetryLevel) -> TelemetryHub {
        let (events_tx, events_rx) = mpsc::channel();
        TelemetryHub {
            level,
            start: Instant::now(),
            seq: AtomicU64::new(0),
            counters: (0..Metric::ALL.len()).map(|_| AtomicU64::new(0)).collect(),
            latency: LogHistogram::new(),
            state: RwLock::new(SweepState::default()),
            profile: Mutex::new(ExecutionProfile::default()),
            events_tx,
            events_rx: Mutex::new(events_rx),
        }
    }

    /// Current value of one registry counter.
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters[metric as usize].load(Ordering::Relaxed)
    }

    /// Drain all events queued so far (Full level; empty otherwise).
    pub fn drain_events(&self) -> Vec<TelemetryEvent> {
        self.events_rx.lock().unwrap().try_iter().collect()
    }

    /// Drain all queued events as JSONL (one event per line).
    pub fn drain_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.drain_events() {
            out.push_str(&event.render_line());
            out.push('\n');
        }
        out
    }

    /// A consistent-enough point-in-time view of everything the hub holds.
    /// (Counters are read individually with relaxed ordering; totals may be
    /// mid-update while a sweep runs, and are exact once it returned.)
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let state = self.state.read().unwrap();
        let hw = |bits: u64| (bits != u64::MAX).then(|| f64::from_bits(bits));
        TelemetrySnapshot {
            level: self.level,
            elapsed_ns: self.start.elapsed().as_nanos() as u64,
            counters: Metric::ALL.iter().map(|&m| (m, self.counter(m))).collect(),
            cells: state
                .cells
                .iter()
                .map(|c| {
                    let o: Vec<u64> = c
                        .outcomes
                        .iter()
                        .map(|a| a.load(Ordering::Relaxed))
                        .collect();
                    CellSnapshot {
                        info: c.info.clone(),
                        done: c.done.load(Ordering::Relaxed),
                        counts: OutcomeCounts {
                            benign: o[0],
                            hw_exception: o[1],
                            hang: o[2],
                            no_output: o[3],
                            sdc: o[4],
                        },
                        rounds: c.rounds.load(Ordering::Relaxed) as u32,
                        sdc_half_width_pct: hw(c.sdc_hw_bits.load(Ordering::Relaxed)),
                        detection_half_width_pct: hw(c.det_hw_bits.load(Ordering::Relaxed)),
                        finished: c.finished.load(Ordering::Relaxed) != 0,
                    }
                })
                .collect(),
            workers: state
                .workers
                .iter()
                .map(|w| WorkerSnapshot {
                    experiments: w.experiments.load(Ordering::Relaxed),
                    busy_ns: w.busy_ns.load(Ordering::Relaxed),
                    idle_ns: w.idle_ns.load(Ordering::Relaxed),
                    parks: w.parks.load(Ordering::Relaxed),
                    unparks: w.unparks.load(Ordering::Relaxed),
                    steals: w.steals.load(Ordering::Relaxed),
                })
                .collect(),
            threads: state.threads,
            latency: self.latency.snapshot(),
            profile: self.profile.lock().unwrap().clone(),
        }
    }
}

impl TelemetrySink for TelemetryHub {
    const ENABLED: bool = true;

    fn level(&self) -> TelemetryLevel {
        self.level
    }

    fn begin_sweep(&self, cells: &[CellInfo], threads: usize) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        let mut state = self.state.write().unwrap();
        *state = SweepState {
            cells: cells.iter().cloned().map(CellStats::new).collect(),
            workers: (0..threads).map(|_| WorkerStats::default()).collect(),
            threads,
        };
    }

    fn add(&self, metric: Metric, delta: u64) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        self.counters[metric as usize].fetch_add(delta, Ordering::Relaxed);
    }

    fn counter_value(&self, metric: Metric) -> u64 {
        self.counter(metric)
    }

    fn experiment(&self, cell: usize, outcome: Outcome, latency_ns: u64) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        self.counters[Metric::ExperimentsRun as usize].fetch_add(1, Ordering::Relaxed);
        let state = self.state.read().unwrap();
        if let Some(c) = state.cells.get(cell) {
            c.done.fetch_add(1, Ordering::Relaxed);
            c.outcomes[outcome_index(outcome)].fetch_add(1, Ordering::Relaxed);
        }
        if latency_ns > 0 {
            self.latency.observe(latency_ns);
        }
    }

    fn experiment_batch(&self, cell: usize, counts: &OutcomeCounts) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        self.counters[Metric::ExperimentsRun as usize].fetch_add(counts.total(), Ordering::Relaxed);
        let state = self.state.read().unwrap();
        if let Some(c) = state.cells.get(cell) {
            c.done.fetch_add(counts.total(), Ordering::Relaxed);
            for outcome in Outcome::ALL {
                let n = counts.get(outcome);
                if n > 0 {
                    c.outcomes[outcome_index(outcome)].fetch_add(n, Ordering::Relaxed);
                }
            }
        }
    }

    fn worker_batch(&self, worker: usize, experiments: u64, busy_ns: u64, stolen: bool) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        self.counters[Metric::BatchesRun as usize].fetch_add(1, Ordering::Relaxed);
        self.counters[Metric::BusyNanos as usize].fetch_add(busy_ns, Ordering::Relaxed);
        if stolen {
            self.counters[Metric::BatchesStolen as usize].fetch_add(1, Ordering::Relaxed);
        }
        let state = self.state.read().unwrap();
        if let Some(w) = state.workers.get(worker) {
            w.experiments.fetch_add(experiments, Ordering::Relaxed);
            w.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
            if stolen {
                w.steals.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn worker_idle(&self, worker: usize, idle_ns: u64, woken: bool) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        self.counters[Metric::WorkerParks as usize].fetch_add(1, Ordering::Relaxed);
        self.counters[Metric::IdleNanos as usize].fetch_add(idle_ns, Ordering::Relaxed);
        if woken {
            self.counters[Metric::WorkerUnparks as usize].fetch_add(1, Ordering::Relaxed);
        }
        let state = self.state.read().unwrap();
        if let Some(w) = state.workers.get(worker) {
            w.parks.fetch_add(1, Ordering::Relaxed);
            w.idle_ns.fetch_add(idle_ns, Ordering::Relaxed);
            if woken {
                w.unparks.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn cell_status(
        &self,
        cell: usize,
        rounds: u32,
        sdc_half_width_pct: f64,
        detection_half_width_pct: f64,
        finished: bool,
    ) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        let state = self.state.read().unwrap();
        if let Some(c) = state.cells.get(cell) {
            c.rounds.store(rounds as u64, Ordering::Relaxed);
            if sdc_half_width_pct.is_finite() {
                c.sdc_hw_bits
                    .store(sdc_half_width_pct.to_bits(), Ordering::Relaxed);
                c.det_hw_bits
                    .store(detection_half_width_pct.to_bits(), Ordering::Relaxed);
            }
            if finished {
                c.finished.store(1, Ordering::Relaxed);
            }
        }
    }

    fn emit(&self, kind: EventKind) {
        if self.level < TelemetryLevel::Full {
            return;
        }
        let event = TelemetryEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            t_ns: self.start.elapsed().as_nanos() as u64,
            kind,
        };
        // The receiver lives inside the hub, so the channel cannot be closed.
        let _ = self.events_tx.send(event);
    }

    fn profile(&self, profile: &ExecutionProfile) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        *self.profile.lock().unwrap() += profile;
    }
}

/// Per-cell slice of a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellSnapshot {
    /// Static cell description.
    pub info: CellInfo,
    /// Experiments recorded so far.
    pub done: u64,
    /// Outcome tallies so far.
    pub counts: OutcomeCounts,
    /// Completed adaptive rounds (0 for fixed-n cells).
    pub rounds: u32,
    /// Latest realized SDC half-width, if a round has reported one.
    pub sdc_half_width_pct: Option<f64>,
    /// Latest realized Detection half-width, if a round has reported one.
    pub detection_half_width_pct: Option<f64>,
    /// Whether the cell has finalized.
    pub finished: bool,
}

/// Per-worker slice of a [`TelemetrySnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerSnapshot {
    /// Experiments this worker executed.
    pub experiments: u64,
    /// Nanoseconds spent executing batches.
    pub busy_ns: u64,
    /// Nanoseconds spent parked.
    pub idle_ns: u64,
    /// Park episodes.
    pub parks: u64,
    /// Parks ended by a notification (rest timed out).
    pub unparks: u64,
    /// Batches stolen from other workers' home campaigns.
    pub steals: u64,
}

/// Point-in-time view of a [`TelemetryHub`].
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Recording level of the hub.
    pub level: TelemetryLevel,
    /// Nanoseconds since the hub was created.
    pub elapsed_ns: u64,
    /// All registry counters, in [`Metric::ALL`] order.
    pub counters: Vec<(Metric, u64)>,
    /// Per-cell progress.
    pub cells: Vec<CellSnapshot>,
    /// Per-worker execution stats.
    pub workers: Vec<WorkerSnapshot>,
    /// Worker threads of the registered sweep.
    pub threads: usize,
    /// Experiment latency percentiles (Full level only; empty otherwise).
    pub latency: LatencySnapshot,
    /// Merged fault-free per-opcode execution profile.
    pub profile: ExecutionProfile,
}

impl TelemetrySnapshot {
    /// Value of one registry counter.
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters
            .iter()
            .find(|(m, _)| *m == metric)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Overall experiments/second since the hub was created.
    pub fn exps_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.counter(Metric::ExperimentsRun) as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// Render as a JSON object (the shape `telemetry_bench` embeds).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("level", self.level.label());
        obj.set("elapsed_ns", self.elapsed_ns);
        let mut counters = Json::object();
        for (m, v) in &self.counters {
            counters.set(m.name(), *v);
        }
        obj.set("counters", counters);
        let mut cells = Json::Arr(Vec::new());
        if let Json::Arr(items) = &mut cells {
            for c in &self.cells {
                let mut cell = Json::object();
                cell.set("unit", c.info.unit);
                cell.set("label", c.info.label.clone());
                cell.set("planned", c.info.planned);
                cell.set("done", c.done);
                counts_into(&mut cell, &c.counts);
                cell.set("rounds", c.rounds);
                match c.sdc_half_width_pct {
                    Some(hw) => cell.set("sdc_hw_pct", hw),
                    None => cell.set("sdc_hw_pct", Json::Null),
                };
                match c.detection_half_width_pct {
                    Some(hw) => cell.set("det_hw_pct", hw),
                    None => cell.set("det_hw_pct", Json::Null),
                };
                cell.set("finished", c.finished);
                items.push(cell);
            }
        }
        obj.set("cells", cells);
        let mut workers = Json::Arr(Vec::new());
        if let Json::Arr(items) = &mut workers {
            for w in &self.workers {
                let mut worker = Json::object();
                worker.set("experiments", w.experiments);
                worker.set("busy_ns", w.busy_ns);
                worker.set("idle_ns", w.idle_ns);
                worker.set("parks", w.parks);
                worker.set("unparks", w.unparks);
                worker.set("steals", w.steals);
                items.push(worker);
            }
        }
        obj.set("workers", workers);
        let mut latency = Json::object();
        latency.set("count", self.latency.count);
        latency.set("p50_ns", self.latency.p50_ns);
        latency.set("p90_ns", self.latency.p90_ns);
        latency.set("p99_ns", self.latency.p99_ns);
        latency.set("max_ns", self.latency.max_ns);
        obj.set("latency", latency);
        let mut opcodes = Json::object();
        for (opcode, stats) in &self.profile.per_opcode {
            let mut s = Json::object();
            s.set("count", stats.count);
            s.set("read_candidates", stats.read_candidates);
            s.set("write_candidates", stats.write_candidates);
            opcodes.set(opcode.clone(), s);
        }
        obj.set("per_opcode", opcodes);
        obj
    }
}

/// Helper for adaptive round reporting: the realized half-widths a
/// [`EventKind::RoundDone`] event carries, from the merged counts.
pub fn round_half_widths(precision: &Precision, counts: &OutcomeCounts) -> (f64, f64) {
    precision.half_widths(counts)
}

/// Accumulated view of a telemetry event stream — the state model behind
/// `mbfi-monitor`.  Events may arrive slightly out of sequence across
/// workers; the accumulator is order-insensitive (all updates are sums or
/// idempotent stores) and tracks the sequence-number set so a gap or
/// duplicate is still detectable.
#[derive(Debug, Clone, Default)]
pub struct MonitorState {
    /// Worker threads announced by `SweepStarted`.
    pub threads: usize,
    /// Per-cell accumulated progress.
    pub cells: Vec<MonitorCell>,
    /// Latest event timestamp seen, nanoseconds.
    pub elapsed_ns: u64,
    /// Whether `SweepFinished` has been seen.
    pub finished: bool,
    /// Total experiments reported by `SweepFinished`.
    pub reported_total: Option<u64>,
    /// Sweep wall clock reported by `SweepFinished`, nanoseconds.
    pub reported_wall_ns: Option<u64>,
    /// Copy-on-write chunks cloned, from `SweepFinished`.
    pub cow_chunks_copied: u64,
    /// Restore bytes saved by copy-on-write forking, from `SweepFinished`.
    pub cow_restore_bytes_saved: u64,
    /// Events applied.
    pub events: u64,
    /// Malformed lines / decode failures encountered.
    pub errors: Vec<String>,
    /// Events whose sequence number did not arrive strictly increasing.
    /// Expected to be 0 on a single TCP stream; a non-zero count is
    /// reported but is not by itself a verification failure (the
    /// accumulator is order-insensitive, and multi-worker emission may
    /// legitimately interleave).
    pub out_of_order: u64,
    seq_count: u64,
    seq_min: u64,
    seq_max: u64,
    seq_sum: u128,
    last_seq: Option<u64>,
}

/// Per-cell accumulated state of a [`MonitorState`].
#[derive(Debug, Clone, Default)]
pub struct MonitorCell {
    /// Unit (workload) index, from `CellPlanned`.
    pub unit: usize,
    /// Cell label, from `CellPlanned`.
    pub label: String,
    /// Planned experiment budget, from `CellPlanned`.
    pub planned: u64,
    /// Experiments accumulated from `BatchDone` events.
    pub done: u64,
    /// Outcome tallies accumulated from `BatchDone` events.
    pub counts: OutcomeCounts,
    /// Latest adaptive round seen.
    pub rounds: u32,
    /// Latest realized SDC half-width from `RoundDone`.
    pub sdc_half_width_pct: Option<f64>,
    /// Latest realized Detection half-width from `RoundDone`.
    pub detection_half_width_pct: Option<f64>,
    /// Whether `CellFinished` has been seen.
    pub finished: bool,
    /// Authoritative `(experiments, counts)` from `CellFinished`.
    pub reported: Option<(u64, OutcomeCounts)>,
}

impl MonitorState {
    /// An empty accumulator.
    pub fn new() -> MonitorState {
        MonitorState::default()
    }

    /// Hard cap on the cell indices the monitor will materialise.  Untrusted
    /// TCP streams choose the index; without a cap a single hostile
    /// `{"cell": 10000000000000}` would make the accumulator allocate (and
    /// abort) instead of reporting an error.
    pub const MAX_CELLS: usize = 1 << 16;

    fn cell_mut(&mut self, cell: usize) -> Option<&mut MonitorCell> {
        if cell >= MonitorState::MAX_CELLS {
            self.errors.push(format!(
                "cell index {cell} exceeds the monitor limit of {}",
                MonitorState::MAX_CELLS
            ));
            return None;
        }
        if cell >= self.cells.len() {
            self.cells.resize_with(cell + 1, MonitorCell::default);
        }
        Some(&mut self.cells[cell])
    }

    /// Apply one event.
    pub fn apply(&mut self, event: &TelemetryEvent) {
        self.events += 1;
        self.elapsed_ns = self.elapsed_ns.max(event.t_ns);
        if self.seq_count == 0 {
            self.seq_min = event.seq;
            self.seq_max = event.seq;
        } else {
            self.seq_min = self.seq_min.min(event.seq);
            self.seq_max = self.seq_max.max(event.seq);
        }
        if let Some(last) = self.last_seq {
            if event.seq <= last {
                self.out_of_order += 1;
            }
        }
        self.last_seq = Some(self.last_seq.unwrap_or(0).max(event.seq));
        self.seq_count += 1;
        self.seq_sum += event.seq as u128;
        match &event.kind {
            EventKind::SweepStarted { cells, threads, .. } => {
                self.threads = *threads;
                let cells = (*cells).min(MonitorState::MAX_CELLS);
                if self.cells.len() < cells {
                    self.cells.resize_with(cells, MonitorCell::default);
                }
            }
            EventKind::CellPlanned { cell, info } => {
                if let Some(c) = self.cell_mut(*cell) {
                    c.unit = info.unit;
                    c.label = info.label.clone();
                    c.planned = info.planned;
                }
            }
            EventKind::BatchDone {
                cell,
                experiments,
                counts,
                ..
            } => {
                if let Some(c) = self.cell_mut(*cell) {
                    c.done += experiments;
                    c.counts += *counts;
                }
            }
            EventKind::RoundDone {
                cell,
                round,
                sdc_half_width_pct,
                detection_half_width_pct,
                ..
            } => {
                if let Some(c) = self.cell_mut(*cell) {
                    c.rounds = c.rounds.max(*round);
                    c.sdc_half_width_pct = Some(*sdc_half_width_pct);
                    c.detection_half_width_pct = Some(*detection_half_width_pct);
                }
            }
            EventKind::CellFinished {
                cell,
                experiments,
                counts,
                rounds,
            } => {
                if let Some(c) = self.cell_mut(*cell) {
                    c.finished = true;
                    c.rounds = c.rounds.max(*rounds);
                    c.reported = Some((*experiments, *counts));
                }
            }
            EventKind::SweepFinished {
                experiments,
                wall_ns,
                cow_chunks_copied,
                cow_restore_bytes_saved,
                ..
            } => {
                self.finished = true;
                self.reported_total = Some(*experiments);
                self.reported_wall_ns = Some(*wall_ns);
                self.cow_chunks_copied = *cow_chunks_copied;
                self.cow_restore_bytes_saved = *cow_restore_bytes_saved;
            }
        }
    }

    /// Parse and apply one JSONL line; malformed lines are recorded in
    /// [`MonitorState::errors`] and also returned.
    pub fn apply_line(&mut self, line: &str) -> Result<(), String> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(());
        }
        match TelemetryEvent::parse_line(line) {
            Ok(event) => {
                self.apply(&event);
                Ok(())
            }
            Err(e) => {
                self.errors.push(e.clone());
                Err(e)
            }
        }
    }

    /// Total experiments and outcome tallies accumulated from batch events.
    pub fn totals(&self) -> (u64, OutcomeCounts) {
        let mut total = 0;
        let mut counts = OutcomeCounts::default();
        for c in &self.cells {
            total += c.done;
            counts += c.counts;
        }
        (total, counts)
    }

    /// Overall experiments/second implied by the stream.
    pub fn exps_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.totals().0 as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// The headless cross-check: stream-accumulated per-cell totals must
    /// exactly equal the authoritative `CellFinished`/`SweepFinished` counts,
    /// the sequence-number set must be gap-free, and no line may have failed
    /// to decode.  Returns all violations (empty = consistent).
    pub fn verify(&self) -> Vec<String> {
        let mut problems: Vec<String> = self.errors.clone();
        for (i, c) in self.cells.iter().enumerate() {
            if let Some((reported_n, reported_counts)) = &c.reported {
                if c.done != *reported_n {
                    problems.push(format!(
                        "cell {i} ({}): accumulated {} experiments but CellFinished reports {}",
                        c.label, c.done, reported_n
                    ));
                }
                if c.counts != *reported_counts {
                    problems.push(format!(
                        "cell {i} ({}): accumulated counts {:?} != reported {:?}",
                        c.label, c.counts, reported_counts
                    ));
                }
            } else if self.finished {
                problems.push(format!(
                    "cell {i} ({}): sweep finished without a CellFinished event",
                    c.label
                ));
            }
        }
        if let Some(total) = self.reported_total {
            let (accumulated, _) = self.totals();
            if accumulated != total {
                problems.push(format!(
                    "accumulated total {accumulated} != SweepFinished total {total}"
                ));
            }
        }
        if self.seq_count > 0 {
            let span = self.seq_max - self.seq_min + 1;
            let expected_sum = (self.seq_min as u128 + self.seq_max as u128) * span as u128 / 2;
            if self.seq_count != span || self.seq_sum != expected_sum {
                let detail = if self.seq_count < span {
                    format!("{} missing", span - self.seq_count)
                } else if self.seq_count > span {
                    format!("{} duplicated", self.seq_count - span)
                } else {
                    "duplicates masking gaps".to_string()
                };
                problems.push(format!(
                    "sequence numbers not gap-free: {} events over span {}..={} ({detail})",
                    self.seq_count, self.seq_min, self.seq_max
                ));
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_knob_grammar() {
        assert_eq!(TelemetryLevel::parse("off"), Some(TelemetryLevel::Off));
        assert_eq!(TelemetryLevel::parse(""), Some(TelemetryLevel::Off));
        assert_eq!(
            TelemetryLevel::parse(" Counters "),
            Some(TelemetryLevel::Counters)
        );
        assert_eq!(TelemetryLevel::parse("FULL"), Some(TelemetryLevel::Full));
        assert_eq!(TelemetryLevel::parse("2"), Some(TelemetryLevel::Full));
        assert_eq!(TelemetryLevel::parse("loud"), None);
        assert!(TelemetryLevel::Off < TelemetryLevel::Counters);
        assert!(TelemetryLevel::Counters < TelemetryLevel::Full);
        for level in [
            TelemetryLevel::Off,
            TelemetryLevel::Counters,
            TelemetryLevel::Full,
        ] {
            assert_eq!(TelemetryLevel::parse(level.label()), Some(level));
        }
    }

    #[test]
    fn metric_registry_is_consistent() {
        for (i, &m) in Metric::ALL.iter().enumerate() {
            assert_eq!(m as usize, i, "{m:?} discriminant mismatch");
        }
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::ALL.len(), "duplicate metric names");
    }

    #[test]
    fn log_histogram_buckets_and_quantiles() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        // 90 fast observations around 1µs, 10 slow around 1ms.
        for _ in 0..90 {
            h.observe(1_000);
        }
        for _ in 0..10 {
            h.observe(1_000_000);
        }
        assert_eq!(h.count(), 100);
        let snap = h.snapshot();
        // 1_000 has bit length 10 → bucket 10 → value 512 + 256 = 768.
        assert_eq!(snap.p50_ns, 768);
        assert_eq!(snap.p90_ns, 768);
        // 1_000_000 has bit length 20 → bucket 20 → 524288 + 262144.
        assert_eq!(snap.p99_ns, 786_432);
        assert_eq!(snap.max_ns, 786_432);
        // Every bucketed value stays within a factor of two of the original
        // (the representative is the geometric middle of its bucket).
        for v in [1u64, 2, 3, 1_000, 1_000_000, u64::MAX] {
            let h = LogHistogram::new();
            h.observe(v);
            let q = h.quantile(0.5);
            assert!(
                q <= v.saturating_mul(2),
                "representative {q} above twice observed {v}"
            );
            assert!(q >= v / 2, "representative {q} below half of {v}");
        }
        // Zero gets its own bucket.
        let h = LogHistogram::new();
        h.observe(0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn hub_counts_and_snapshots() {
        let hub = TelemetryHub::new(TelemetryLevel::Counters);
        hub.begin_sweep(
            &[
                CellInfo {
                    unit: 0,
                    label: "u0 read 1-bit".into(),
                    planned: 10,
                },
                CellInfo {
                    unit: 1,
                    label: "u1 write m=3,w=100".into(),
                    planned: 20,
                },
            ],
            4,
        );
        hub.experiment(0, Outcome::Benign, 0);
        hub.experiment(0, Outcome::Sdc, 0);
        hub.experiment(1, Outcome::Hang, 0);
        hub.experiment(99, Outcome::Benign, 0); // out of range: counted globally only
        hub.add(Metric::CheckpointRestores, 3);
        hub.worker_batch(2, 3, 1_000, true);
        hub.worker_idle(1, 500, true);
        hub.cell_status(0, 2, 1.5, 2.5, true);
        let snap = hub.snapshot();
        assert_eq!(snap.counter(Metric::ExperimentsRun), 4);
        assert_eq!(snap.counter(Metric::CheckpointRestores), 3);
        assert_eq!(snap.counter(Metric::BatchesRun), 1);
        assert_eq!(snap.counter(Metric::BatchesStolen), 1);
        assert_eq!(snap.counter(Metric::WorkerParks), 1);
        assert_eq!(snap.counter(Metric::WorkerUnparks), 1);
        assert_eq!(snap.counter(Metric::IdleNanos), 500);
        assert_eq!(snap.threads, 4);
        assert_eq!(snap.cells.len(), 2);
        assert_eq!(snap.cells[0].done, 2);
        assert_eq!(snap.cells[0].counts.sdc, 1);
        assert_eq!(snap.cells[0].rounds, 2);
        assert_eq!(snap.cells[0].sdc_half_width_pct, Some(1.5));
        assert!(snap.cells[0].finished);
        assert_eq!(snap.cells[1].counts.hang, 1);
        assert!(!snap.cells[1].finished);
        assert_eq!(snap.cells[1].sdc_half_width_pct, None);
        assert_eq!(snap.workers[2].experiments, 3);
        assert_eq!(snap.workers[2].steals, 1);
        assert_eq!(snap.workers[1].idle_ns, 500);
        // Counters mode records no events.
        hub.emit(EventKind::SweepFinished {
            cells: 2,
            experiments: 4,
            wall_ns: 1,
            cow_chunks_copied: 0,
            cow_restore_bytes_saved: 0,
        });
        assert!(hub.drain_events().is_empty());
        // Snapshot renders to JSON without panicking and carries the label.
        let json = snap.to_json().render();
        assert!(json.contains("u1 write m=3,w=100"));
        assert!(json.contains("\"experiments_run\":4"));
    }

    #[test]
    fn off_hub_records_nothing() {
        let hub = TelemetryHub::new(TelemetryLevel::Off);
        hub.begin_sweep(
            &[CellInfo {
                unit: 0,
                label: "x".into(),
                planned: 1,
            }],
            2,
        );
        hub.experiment(0, Outcome::Benign, 7);
        hub.add(Metric::CacheHits, 1);
        hub.emit(EventKind::SweepFinished {
            cells: 1,
            experiments: 1,
            wall_ns: 1,
            cow_chunks_copied: 0,
            cow_restore_bytes_saved: 0,
        });
        let snap = hub.snapshot();
        assert_eq!(snap.counter(Metric::ExperimentsRun), 0);
        assert_eq!(snap.counter(Metric::CacheHits), 0);
        assert!(snap.cells.is_empty());
        assert_eq!(snap.latency.count, 0);
        assert!(hub.drain_events().is_empty());
    }

    fn sample_events() -> Vec<TelemetryEvent> {
        let hub = TelemetryHub::new(TelemetryLevel::Full);
        hub.emit(EventKind::SweepStarted {
            cells: 2,
            threads: 3,
            planned: 30,
        });
        hub.emit(EventKind::CellPlanned {
            cell: 0,
            info: CellInfo {
                unit: 0,
                label: "qsort read 1-bit".into(),
                planned: 10,
            },
        });
        hub.emit(EventKind::CellPlanned {
            cell: 1,
            info: CellInfo {
                unit: 1,
                label: "histo write m=3,w=100".into(),
                planned: 20,
            },
        });
        hub.emit(EventKind::BatchDone {
            cell: 0,
            batch: 0,
            experiments: 10,
            counts: OutcomeCounts {
                benign: 6,
                hw_exception: 2,
                hang: 0,
                no_output: 1,
                sdc: 1,
            },
            wall_ns: 12_345,
            worker: 2,
            stolen: true,
        });
        hub.emit(EventKind::RoundDone {
            cell: 1,
            round: 1,
            experiments: 20,
            sdc_half_width_pct: 4.25,
            detection_half_width_pct: 6.5,
            stopped: false,
        });
        hub.emit(EventKind::BatchDone {
            cell: 1,
            batch: 0,
            experiments: 20,
            counts: OutcomeCounts {
                benign: 15,
                hw_exception: 3,
                hang: 1,
                no_output: 0,
                sdc: 1,
            },
            wall_ns: 9_999,
            worker: 0,
            stolen: false,
        });
        hub.emit(EventKind::CellFinished {
            cell: 0,
            experiments: 10,
            counts: OutcomeCounts {
                benign: 6,
                hw_exception: 2,
                hang: 0,
                no_output: 1,
                sdc: 1,
            },
            rounds: 0,
        });
        hub.emit(EventKind::CellFinished {
            cell: 1,
            experiments: 20,
            counts: OutcomeCounts {
                benign: 15,
                hw_exception: 3,
                hang: 1,
                no_output: 0,
                sdc: 1,
            },
            rounds: 1,
        });
        hub.emit(EventKind::SweepFinished {
            cells: 2,
            experiments: 30,
            wall_ns: 22_344,
            cow_chunks_copied: 7,
            cow_restore_bytes_saved: 28_672,
        });
        hub.drain_events()
    }

    /// Every event kind round-trips through the JSONL writer and the
    /// in-repo parser byte-identically.
    #[test]
    fn events_round_trip_through_jsonl() {
        let events = sample_events();
        assert_eq!(events.len(), 9);
        for (i, event) in events.iter().enumerate() {
            assert_eq!(event.seq, i as u64, "hub assigns monotonic sequence");
            let line = event.render_line();
            assert!(!line.contains('\n'));
            let back = TelemetryEvent::parse_line(&line).expect("line must parse");
            assert_eq!(&back, event, "round trip of {line}");
            assert_eq!(back.render_line(), line, "re-render is byte-identical");
        }
        // Unknown kinds and junk are decode errors, not panics.
        assert!(TelemetryEvent::parse_line("{\"seq\":0,\"t_ns\":0,\"kind\":\"nope\"}").is_err());
        assert!(TelemetryEvent::parse_line("not json").is_err());
    }

    #[test]
    fn monitor_state_accumulates_and_verifies() {
        let events = sample_events();
        let mut state = MonitorState::new();
        // Apply via the JSONL path to exercise the parser too.
        for event in &events {
            state.apply_line(&event.render_line()).unwrap();
        }
        assert_eq!(state.threads, 3);
        assert!(state.finished);
        assert_eq!(state.reported_total, Some(30));
        assert_eq!(state.cells.len(), 2);
        assert_eq!(state.cells[0].label, "qsort read 1-bit");
        assert_eq!(state.cells[0].done, 10);
        assert_eq!(state.cells[1].done, 20);
        assert_eq!(state.cells[1].rounds, 1);
        assert_eq!(state.cells[1].sdc_half_width_pct, Some(4.25));
        let (total, counts) = state.totals();
        assert_eq!(total, 30);
        assert_eq!(counts.sdc, 2);
        assert_eq!(state.verify(), Vec::<String>::new(), "consistent stream");

        // Order-insensitive: a shuffled stream verifies identically.
        let mut shuffled = MonitorState::new();
        for event in events.iter().rev() {
            shuffled.apply(event);
        }
        assert_eq!(shuffled.verify(), Vec::<String>::new());
        assert_eq!(shuffled.totals(), state.totals());

        // A dropped batch event is caught by the per-cell cross-check AND
        // the sequence-gap check.
        let mut broken = MonitorState::new();
        for event in &events {
            if !matches!(event.kind, EventKind::BatchDone { cell: 1, .. }) {
                broken.apply(event);
            }
        }
        let problems = broken.verify();
        assert!(
            problems.iter().any(|p| p.contains("cell 1")),
            "missing batch must break the totals: {problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("gap-free")),
            "missing seq must be detected: {problems:?}"
        );

        // A malformed line is recorded and fails verification.
        let mut bad = MonitorState::new();
        assert!(bad.apply_line("{broken").is_err());
        assert!(!bad.verify().is_empty());
        // Blank lines are ignored.
        let mut blank = MonitorState::new();
        blank.apply_line("   ").unwrap();
        assert_eq!(blank.events, 0);
    }

    /// TCP-stream hardening: out-of-order arrival is counted (not a
    /// failure), gaps are reported with how many events are missing,
    /// duplicates are distinguished from gaps, and hostile cell indices are
    /// rejected instead of allocating.
    #[test]
    fn monitor_state_survives_untrusted_streams() {
        let events = sample_events();
        // In-order stream: zero out-of-order arrivals.
        let mut ordered = MonitorState::new();
        for event in &events {
            ordered.apply(event);
        }
        assert_eq!(ordered.out_of_order, 0);
        // Reversed stream: every arrival after the first is out of order,
        // but the accumulator still verifies clean (no gaps, same sums).
        let mut reversed = MonitorState::new();
        for event in events.iter().rev() {
            reversed.apply(event);
        }
        assert_eq!(reversed.out_of_order, events.len() as u64 - 1);
        assert_eq!(reversed.verify(), Vec::<String>::new());

        // A gap reports how many events are missing.
        let mut gapped = MonitorState::new();
        for event in &events {
            if event.seq != 3 && event.seq != 4 {
                gapped.apply(event);
            }
        }
        let problems = gapped.verify();
        assert!(
            problems.iter().any(|p| p.contains("2 missing")),
            "gap size must be reported: {problems:?}"
        );

        // A duplicated event is reported as a duplicate, not a gap.
        let mut duped = MonitorState::new();
        for event in &events {
            duped.apply(event);
        }
        duped.apply(&events[2]);
        assert_eq!(duped.out_of_order, 1);
        let problems = duped.verify();
        assert!(
            problems.iter().any(|p| p.contains("1 duplicated")),
            "duplicate must be reported: {problems:?}"
        );

        // A hostile cell index is an error, not a giant allocation.
        let mut hostile = MonitorState::new();
        let line = format!(
            "{{\"seq\":0,\"t_ns\":1,\"kind\":\"batch_done\",\"cell\":{},\
             \"batch\":0,\"experiments\":5,\"benign\":5,\"hw_exception\":0,\
             \"hang\":0,\"no_output\":0,\"sdc\":0,\"wall_ns\":10,\
             \"worker\":0,\"stolen\":false}}",
            u64::MAX / 2
        );
        hostile.apply_line(&line).unwrap();
        assert!(hostile.cells.is_empty(), "must not allocate hostile cells");
        assert!(
            hostile.verify().iter().any(|p| p.contains("monitor limit")),
            "hostile index must be reported"
        );
        // An oversized SweepStarted announcement is clamped the same way.
        let started = format!(
            "{{\"seq\":1,\"t_ns\":1,\"kind\":\"sweep_started\",\
             \"cells\":{},\"threads\":1,\"planned\":1}}",
            u64::MAX / 2
        );
        hostile.apply_line(&started).unwrap();
        assert!(hostile.cells.len() <= MonitorState::MAX_CELLS);
    }

    // The whole point of NoopSink: its const gate is false, so every
    // `if S::ENABLED { .. }` instrumentation block is dead code.
    const _: () = assert!(!NoopSink::ENABLED);
    const _: () = assert!(TelemetryHub::ENABLED);

    #[test]
    fn noop_sink_is_disabled_at_compile_time() {
        assert_eq!(NoopSink.level(), TelemetryLevel::Off);
        // And its methods are callable no-ops.
        NoopSink.add(Metric::ExperimentsRun, 1);
        NoopSink.experiment(0, Outcome::Sdc, 1);
        NoopSink.emit(EventKind::SweepFinished {
            cells: 0,
            experiments: 0,
            wall_ns: 0,
            cow_chunks_copied: 0,
            cow_restore_bytes_saved: 0,
        });
    }
}
