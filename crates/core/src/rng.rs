//! Deterministic, dependency-free pseudo-random number generation.
//!
//! The paper's methodology rests on *reproducible seeded sampling* of the
//! error space: a campaign is defined by its seed, and the same seed must
//! select the same time–location pairs, bit positions and window sizes on
//! every machine, forever.  This module pins that contract with two small,
//! well-known generators implemented from their reference descriptions:
//!
//! * [`SplitMix64`] — the seeding generator (Steele, Lea & Flood, OOPSLA'14).
//!   Used to expand a 64-bit seed into the 256-bit xoshiro state; it is also
//!   a perfectly fine generator for input-data shuffling in tests.
//! * [`Xoshiro256StarStar`] — Blackman & Vigna's xoshiro256\*\* 1.0, the
//!   workhorse generator behind every sampling decision in `mbfi-core`
//!   (aliased as [`SmallRng`] for continuity with the previous `rand`-based
//!   implementation).
//!
//! Both are pinned by known-answer tests against the published reference
//! vectors, so a behavioural regression in sampling is a test failure, not a
//! silent change of every downstream figure.

use std::ops::{Range, RangeInclusive};

/// The random-number interface used throughout `mbfi-core`.
///
/// Only [`Rng::next_u64`] is required; everything else is derived and kept
/// intentionally small — uniform integers in a range and raw 64-bit words
/// are the only randomness the fault-injection engine consumes.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed integer in `range` (which must be non-empty).
    ///
    /// Accepts both half-open (`lo..hi`) and inclusive (`lo..=hi`) ranges
    /// over `u32`, `u64` and `usize`.  Sampling is unbiased: the classic
    /// threshold-rejection scheme is used instead of a bare modulo.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        let (lo, hi) = range.inclusive_bounds();
        R::from_u64(lo.wrapping_add(uniform_span(self, hi - lo)))
    }

    /// A uniformly distributed `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 random bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Uniform value in `0..=span` (inclusive), unbiased.
fn uniform_span<G: Rng + ?Sized>(rng: &mut G, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let bound = span + 1; // number of admissible values, >= 1
    if bound.is_power_of_two() {
        return rng.next_u64() & span;
    }
    // Reject the low-end excess so that `% bound` is exactly uniform.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        if v >= threshold {
            return v % bound;
        }
    }
}

/// Integer ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The integer type produced.
    type Output;

    /// The range as inclusive `(lo, hi)` bounds in the `u64` domain.
    ///
    /// Panics if the range is empty.
    fn inclusive_bounds(&self) -> (u64, u64);

    /// Narrow a sampled `u64` back to the output type.
    fn from_u64(v: u64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn inclusive_bounds(&self) -> (u64, u64) {
                assert!(self.start < self.end, "gen_range called with an empty range");
                (self.start as u64, self.end as u64 - 1)
            }

            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn inclusive_bounds(&self) -> (u64, u64) {
                assert!(
                    self.start() <= self.end(),
                    "gen_range called with an empty range"
                );
                (*self.start() as u64, *self.end() as u64)
            }

            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// SplitMix64: the seeding generator.
///
/// One multiply-free state increment (the golden-gamma Weyl sequence) plus a
/// 3-stage finaliser; passes BigCrush and is the standard way to derive
/// larger generator states from a 64-bit seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Golden-ratio increment of the Weyl sequence.
    pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* 1.0 (Blackman & Vigna, 2018): the default generator.
///
/// 256 bits of state, period 2²⁵⁶ − 1, excellent statistical quality and a
/// handful of shifts/rotates per output — a drop-in replacement for the
/// `rand::rngs::SmallRng` the seed code used (which, on 64-bit platforms,
/// was itself xoshiro256++-family).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 as recommended by the xoshiro authors; the state
    /// cannot become all-zero this way.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256StarStar {
        let mut sm = SplitMix64::seed_from_u64(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Construct directly from a 256-bit state (must not be all zero).
    pub fn from_state(s: [u64; 4]) -> Xoshiro256StarStar {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Xoshiro256StarStar { s }
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The generator used by the injection engine (replaces `rand::SmallRng`).
pub type SmallRng = Xoshiro256StarStar;

#[cfg(test)]
mod tests {
    use super::*;

    /// Published SplitMix64 reference vector for seed 0 (Vigna's
    /// `splitmix64.c` driven with an all-zero initial state; the same values
    /// appear in the test suites of several independent implementations).
    #[test]
    fn splitmix64_known_answer_seed_zero() {
        let mut rng = SplitMix64::seed_from_u64(0);
        let expected = [
            0xE220_A839_7B1D_CDAF_u64,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "splitmix64 output {i}");
        }
    }

    /// Published SplitMix64 reference vector for seed 1234567.
    #[test]
    fn splitmix64_known_answer_seed_1234567() {
        let mut rng = SplitMix64::seed_from_u64(1234567);
        let expected = [
            6_457_827_717_110_365_317_u64,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "splitmix64 output {i}");
        }
    }

    /// xoshiro256** reference vector for the state [1, 2, 3, 4], computed
    /// from an independent transliteration of Vigna's reference C code (the
    /// first three outputs also verified by hand: 11520, 0, 1509978240).
    #[test]
    fn xoshiro256starstar_known_answer_state_1234() {
        let mut rng = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        let expected = [
            11520_u64,
            0,
            1_509_978_240,
            1_215_971_899_390_074_240,
            1_216_172_134_540_287_360,
            607_988_272_756_665_600,
            16_172_922_978_634_559_625,
            8_476_171_486_693_032_832,
            10_595_114_339_597_558_777,
            2_904_607_092_377_533_576,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "xoshiro256** output {i}");
        }
    }

    /// seed_from_u64 must route through SplitMix64: the state after seeding
    /// with 0 is exactly the first four SplitMix64(0) outputs.
    #[test]
    fn seeding_uses_splitmix64_expansion() {
        let rng = Xoshiro256StarStar::seed_from_u64(0);
        let reference = Xoshiro256StarStar::from_state([
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
        ]);
        assert_eq!(rng, reference);
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn gen_range_respects_bounds_for_all_supported_types() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            let a: u32 = rng.gen_range(0..64u32);
            assert!(a < 64);
            let b: u64 = rng.gen_range(5..=10u64);
            assert!((5..=10).contains(&b));
            let c: usize = rng.gen_range(0..3usize);
            assert!(c < 3);
            let d: u64 = rng.gen_range(17..18u64);
            assert_eq!(d, 17, "single-value range is deterministic");
        }
    }

    #[test]
    fn gen_range_covers_the_full_range() {
        // A 64-bit full-width inclusive range must not panic or truncate.
        let mut rng = SmallRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(0..=u64::MAX);

        // Every value of a small range appears (uniformity smoke test).
        let mut seen = [0u32; 6];
        for _ in 0..6000 {
            let v: usize = rng.gen_range(0..6usize);
            seen[v] += 1;
        }
        for (v, &n) in seen.iter().enumerate() {
            // Expected 1000 each; allow generous slack for a smoke test.
            assert!(
                (700..=1300).contains(&n),
                "value {v} drawn {n} times out of 6000"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _: u32 = rng.gen_range(5..5u32);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 hit {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn all_zero_xoshiro_state_is_rejected() {
        let r = std::panic::catch_unwind(|| Xoshiro256StarStar::from_state([0; 4]));
        assert!(r.is_err());
    }
}
