//! Binomial proportion statistics with 95 % confidence intervals.
//!
//! The paper reports every outcome percentage with an error bar at the 95 %
//! confidence level (§III-E).  This module provides both the normal
//! approximation (what the paper's error bars use) and the Wilson score
//! interval, which behaves better for proportions near 0 or 1 and for the
//! smaller sample sizes this reproduction uses by default.

/// z value for a two-sided 95 % confidence level.
pub const Z_95: f64 = 1.959_963_984_540_054;

/// A proportion estimate with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proportion {
    /// Number of successes.
    pub successes: u64,
    /// Number of trials.
    pub trials: u64,
    /// Point estimate `successes / trials` (0 for zero trials).
    pub estimate: f64,
    /// Lower bound of the 95 % confidence interval.
    pub lower: f64,
    /// Upper bound of the 95 % confidence interval.
    pub upper: f64,
}

impl Proportion {
    /// Half-width of the interval (the "error bar").
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// The estimate as a percentage.
    pub fn percentage(&self) -> f64 {
        self.estimate * 100.0
    }

    /// Half-width as percentage points.
    pub fn half_width_pct(&self) -> f64 {
        self.half_width() * 100.0
    }

    /// Whether two proportions' confidence intervals overlap.
    pub fn overlaps(&self, other: &Proportion) -> bool {
        self.lower <= other.upper && other.lower <= self.upper
    }

    /// Wire encoding (the floats round-trip exactly — the JSON writer emits
    /// shortest-round-trip f64).
    pub fn to_json(&self) -> crate::report::json::Json {
        let mut obj = crate::report::json::Json::object();
        obj.set("successes", self.successes);
        obj.set("trials", self.trials);
        obj.set("estimate", self.estimate);
        obj.set("lower", self.lower);
        obj.set("upper", self.upper);
        obj
    }

    /// Parse the wire encoding back.
    pub fn from_json(v: &crate::report::json::Json) -> Option<Proportion> {
        Some(Proportion {
            successes: v.get("successes")?.as_u64()?,
            trials: v.get("trials")?.as_u64()?,
            estimate: v.get("estimate")?.as_f64()?,
            lower: v.get("lower")?.as_f64()?,
            upper: v.get("upper")?.as_f64()?,
        })
    }
}

/// Which binomial confidence interval to compute.
///
/// The Wald interval is what the paper's error bars use, but it is
/// *degenerate* at the extremes: at `successes ∈ {0, trials}` its half-width
/// is exactly 0 for any sample size, so it must never be used as a stopping
/// rule (see [`crate::adaptive`]).  The Wilson score interval stays
/// informative at the extremes and is the default for adaptive stopping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IntervalMethod {
    /// Normal approximation, [`wald_interval`].
    Wald,
    /// Wilson score interval, [`wilson_interval`] (the default).
    #[default]
    Wilson,
}

impl IntervalMethod {
    /// Compute the interval of this method.
    pub fn interval(self, successes: u64, trials: u64) -> Proportion {
        match self {
            IntervalMethod::Wald => wald_interval(successes, trials),
            IntervalMethod::Wilson => wilson_interval(successes, trials),
        }
    }

    /// Lower-case name used in knobs and reports.
    pub fn label(self) -> &'static str {
        match self {
            IntervalMethod::Wald => "wald",
            IntervalMethod::Wilson => "wilson",
        }
    }

    /// Parse a [`IntervalMethod::label`] back (the serve wire encoding).
    pub fn from_label(label: &str) -> Option<IntervalMethod> {
        match label {
            "wald" => Some(IntervalMethod::Wald),
            "wilson" => Some(IntervalMethod::Wilson),
            _ => None,
        }
    }
}

impl std::fmt::Display for IntervalMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Normal-approximation ("Wald") interval: `p ± z * sqrt(p (1-p) / n)`,
/// clamped to `[0, 1]`.
pub fn wald_interval(successes: u64, trials: u64) -> Proportion {
    if trials == 0 {
        return Proportion {
            successes,
            trials,
            estimate: 0.0,
            lower: 0.0,
            upper: 0.0,
        };
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let half = Z_95 * (p * (1.0 - p) / n).sqrt();
    Proportion {
        successes,
        trials,
        estimate: p,
        lower: (p - half).max(0.0),
        upper: (p + half).min(1.0),
    }
}

/// Wilson score interval at 95 % confidence.
pub fn wilson_interval(successes: u64, trials: u64) -> Proportion {
    if trials == 0 {
        return Proportion {
            successes,
            trials,
            estimate: 0.0,
            lower: 0.0,
            upper: 0.0,
        };
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = Z_95;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    Proportion {
        successes,
        trials,
        estimate: p,
        lower: (centre - half).max(0.0),
        upper: (centre + half).min(1.0),
    }
}

/// Mean of a slice (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two values).
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SmallRng};

    #[test]
    fn wald_matches_textbook_example() {
        // 300 successes out of 1000: p = 0.3, half-width ~= 0.0284.
        let p = wald_interval(300, 1000);
        assert!((p.estimate - 0.3).abs() < 1e-12);
        assert!((p.half_width() - 0.0284).abs() < 5e-4);
        assert!((p.percentage() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn zero_trials_are_safe() {
        for f in [wald_interval, wilson_interval] {
            let p = f(0, 0);
            assert_eq!(p.estimate, 0.0);
            assert_eq!(p.lower, 0.0);
            assert_eq!(p.upper, 0.0);
        }
    }

    #[test]
    fn extreme_proportions_stay_in_bounds() {
        let p = wald_interval(0, 50);
        assert_eq!(p.lower, 0.0);
        let p = wald_interval(50, 50);
        assert_eq!(p.upper, 1.0);
        let w = wilson_interval(0, 50);
        assert!(w.upper > 0.0, "Wilson upper bound is informative at p = 0");
        let w = wilson_interval(50, 50);
        assert!(w.lower < 1.0, "Wilson lower bound is informative at p = 1");
    }

    #[test]
    fn overlap_detection() {
        let a = wald_interval(50, 100);
        let b = wald_interval(55, 100);
        let c = wald_interval(90, 100);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138).abs() < 1e-3);
    }

    /// Intervals always contain the point estimate and stay within [0, 1] —
    /// boundary cases plus a deterministic random sample of (successes,
    /// trials) pairs.
    #[test]
    fn intervals_contain_estimate() {
        let mut cases: Vec<(u64, u64)> = vec![
            (0, 1),
            (1, 1),
            (0, 1000),
            (1000, 1000),
            (1, 2),
            (500, 1000),
            (999, 1000),
        ];
        let mut rng = SmallRng::seed_from_u64(0x57A7);
        for _ in 0..256 {
            let successes = rng.gen_range(0..=1000u64);
            let extra = rng.gen_range(0..=1000u64);
            if successes + extra > 0 {
                cases.push((successes, successes + extra));
            }
        }
        for (successes, trials) in cases {
            for f in [wald_interval, wilson_interval] {
                let p = f(successes, trials);
                assert!(p.lower <= p.estimate + 1e-12, "({successes}, {trials})");
                assert!(p.upper >= p.estimate - 1e-12, "({successes}, {trials})");
                assert!(
                    p.lower >= 0.0 && p.upper <= 1.0,
                    "({successes}, {trials}): [{}, {}]",
                    p.lower,
                    p.upper
                );
            }
        }
    }

    /// The Wald interval is degenerate at the extremes — half-width exactly 0
    /// at `successes ∈ {0, trials}` for ANY sample size — while Wilson stays
    /// informative.  This asymmetry is why adaptive stopping defaults to
    /// Wilson (a zero-width "interval" would satisfy any precision target).
    #[test]
    fn wald_is_degenerate_at_extremes_wilson_is_not() {
        for trials in [1u64, 10, 100, 10_000] {
            for successes in [0, trials] {
                assert_eq!(
                    IntervalMethod::Wald
                        .interval(successes, trials)
                        .half_width(),
                    0.0,
                    "Wald at ({successes}, {trials})"
                );
                assert!(
                    IntervalMethod::Wilson
                        .interval(successes, trials)
                        .half_width()
                        > 0.0,
                    "Wilson at ({successes}, {trials})"
                );
            }
        }
        assert_eq!(IntervalMethod::default(), IntervalMethod::Wilson);
        assert_eq!(IntervalMethod::Wald.to_string(), "wald");
        assert_eq!(
            IntervalMethod::Wilson.interval(3, 10),
            wilson_interval(3, 10)
        );
    }

    /// More trials at the same proportion never widen the Wald interval —
    /// exhaustive over the whole proptest domain.
    #[test]
    fn more_data_tightens_interval() {
        for successes in 1u64..=100 {
            let small = wald_interval(successes, 200);
            let large = wald_interval(successes * 10, 2000);
            assert!(
                large.half_width() <= small.half_width() + 1e-12,
                "successes = {successes}"
            );
        }
    }
}
