//! The persistent, multi-tenant sweep engine.
//!
//! [`Sweep::run`](super::Sweep::run) is run-to-completion: it spawns a scoped
//! worker pool, drains one grid, and joins.  A [`SweepEngine`] instead owns
//! its worker pool for the **process lifetime** and accepts jobs at runtime —
//! the serving architecture behind the `mbfi-serve` daemon:
//!
//! * **Multi-tenant scheduling** — every job belongs to a registered
//!   [`ClientId`] with a priority; workers claim batches from the
//!   highest-priority client first, round-robin between equal-priority
//!   clients (a rotor rotates the scan start per claim), and a per-client
//!   **fairness quota** bounds how many batches one client may have in
//!   flight, so a large job cannot starve a small one.
//! * **Bounded admission** — at most [`EngineConfig::max_pending`] jobs are
//!   active at once; [`SweepEngine::submit`] blocks until a slot frees
//!   (backpressure) while [`SweepEngine::try_submit`] fails fast with
//!   [`SubmitError::Full`].
//! * **Streaming** — each job gets a private event channel
//!   ([`JobHandle::events`]): `BatchDone` / `RoundDone` progress,
//!   `CellFinished` with the cell's full result as soon as its last batch
//!   lands, and a final `Finished`.  [`JobHandle::wait`] folds the stream
//!   into a [`SweepReport`].
//! * **Graceful shutdown** — [`SweepEngine::shutdown`] (also run on `Drop`)
//!   stops admission, drains every in-flight job to completion, and joins
//!   the workers.
//!
//! The engine shares the scheduling core (`sweep::plan`) with the scoped
//! driver, so an engine job's results are **byte-identical** to
//! [`Sweep::run`] on the same units/campaigns/config: plans are built with
//! the same auto-batch formula (from the *job's* requested
//! [`SweepConfig::threads`], not the pool size), batches claim in index
//! order, rounds gate identically, and the final fold is the same
//! index-order merge.  The pool size, quotas, priorities and the admission
//! bound only move work between threads and moments — never what a cell
//! computes.  Enforced by the unit tests below, `tests/serve_equivalence.rs`
//! and `serve_bench --check`.
//!
//! Units are **owned** (`Arc`) rather than borrowed: a persistent pool
//! cannot hold references into a submitter's stack frame, so jobs carry
//! [`EngineUnit`]s and workers build the borrowed [`SweepUnit`] view on the
//! fly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::campaign::CampaignWarning;
use crate::golden::GoldenRun;
use crate::outcome::OutcomeCounts;
use crate::replay::CheckpointStore;
use mbfi_ir::CompiledModule;

use super::plan::{run_span, Plan};
use super::{SweepCampaign, SweepCampaignResult, SweepConfig, SweepReport, SweepUnit};

/// Owned per-workload artifacts for engine jobs: the [`SweepUnit`] fields
/// behind `Arc`s, shareable across jobs, clients and the cross-request cell
/// cache of `mbfi-serve`.
#[derive(Debug, Clone)]
pub struct EngineUnit {
    /// The flat bytecode every experiment executes.
    pub code: Arc<CompiledModule>,
    /// The fault-free profiling run experiments are classified against.
    pub golden: Arc<GoldenRun>,
    /// Optional golden-run checkpoints (byte-transparent, see
    /// [`crate::replay`]).
    pub store: Option<Arc<CheckpointStore>>,
}

impl EngineUnit {
    /// Wrap freshly built artifacts (no checkpoint store).
    pub fn new(code: CompiledModule, golden: GoldenRun) -> EngineUnit {
        EngineUnit {
            code: Arc::new(code),
            golden: Arc::new(golden),
            store: None,
        }
    }

    /// The borrowed view the shared scheduling core works on.
    pub fn view(&self) -> SweepUnit<'_> {
        SweepUnit {
            code: &self.code,
            golden: &self.golden,
            store: self.store.as_deref(),
        }
    }
}

/// A registered tenant of the engine (see
/// [`SweepEngine::register_client`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(u64);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// An accepted job, unique per engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl JobId {
    /// The raw id (e.g. for wire protocols).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// Knobs of the persistent engine.  Like [`SweepConfig`], none of them
/// affect results — only scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineConfig {
    /// Worker threads owned by the engine (0 = all available parallelism).
    pub threads: usize,
    /// Admission bound: at most this many jobs active at once
    /// (0 = default 64).  `submit` blocks while full; `try_submit` errors.
    pub max_pending: usize,
    /// Fairness quota: at most this many batches in flight per client
    /// (0 = the pool size, i.e. a lone client may saturate the pool).
    pub quota: usize,
}

/// Default admission bound when [`EngineConfig::max_pending`] is 0.
const DEFAULT_MAX_PENDING: usize = 64;

/// One job: the grid to run, who submitted it, and how.
///
/// `config.threads` does **not** size any pool here — the engine's own pool
/// runs the job — but it still seeds the fixed-n auto-batch formula exactly
/// as it does for [`Sweep::run`](super::Sweep::run), so plans (and therefore
/// results) are identical to an in-process sweep with the same config.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The submitting tenant (must be registered).
    pub client: ClientId,
    /// Per-workload artifacts, referenced by [`SweepCampaign::unit`].
    pub units: Vec<EngineUnit>,
    /// The grid, in submission order.
    pub campaigns: Vec<SweepCampaign>,
    /// Sweep knobs (`threads` feeds the auto-batch formula only).
    pub config: SweepConfig,
}

/// Progress of one job, streamed over [`JobHandle::events`] in the order
/// things happen.  Cell indices are submission indices into
/// [`JobSpec::campaigns`].
#[derive(Debug)]
pub enum JobEvent {
    /// A batch of `cell` completed (mirrors the telemetry `batch_done`
    /// schema; engine batches are always wall-clock timed).
    BatchDone {
        /// Submission index of the campaign.
        cell: usize,
        /// Batch index within the cell.
        batch: usize,
        /// Experiments in the batch.
        experiments: u64,
        /// The batch's own outcome tally.
        counts: OutcomeCounts,
        /// Wall-clock time of the batch.
        wall_ns: u64,
        /// Engine worker that ran it.
        worker: usize,
    },
    /// An adaptive round boundary was evaluated for `cell`.
    RoundDone {
        /// Submission index of the campaign.
        cell: usize,
        /// 1-based completed round count.
        round: u32,
        /// Merged experiments so far.
        experiments: u64,
        /// SDC half-width after this round (percentage points).
        sdc_half_width_pct: f64,
        /// Detection half-width after this round (percentage points).
        detection_half_width_pct: f64,
        /// Whether the stop rule fired.
        stopped: bool,
    },
    /// `cell`'s last batch landed; `result` is final and byte-identical to
    /// the scoped driver's result for the same cell.
    CellFinished {
        /// Submission index of the campaign.
        cell: usize,
        /// The folded result.
        result: Box<SweepCampaignResult>,
    },
    /// Every cell of the job finished; no further events follow.
    Finished,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission bound is reached (only from
    /// [`SweepEngine::try_submit`]; [`SweepEngine::submit`] blocks instead).
    Full,
    /// The engine is draining; no new jobs are accepted.
    ShuttingDown,
    /// The [`JobSpec::client`] is not registered (or already unregistered).
    UnknownClient,
    /// A campaign references a unit index beyond [`JobSpec::units`].
    BadUnit {
        /// Submission index of the offending campaign.
        campaign: usize,
        /// The out-of-range unit index it referenced.
        unit: usize,
        /// How many units the job actually supplied.
        units: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => f.write_str("engine admission queue is full"),
            SubmitError::ShuttingDown => f.write_str("engine is shutting down"),
            SubmitError::UnknownClient => f.write_str("client is not registered"),
            SubmitError::BadUnit {
                campaign,
                unit,
                units,
            } => write!(
                f,
                "campaign {campaign} references unit {unit} but only {units} units were supplied"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Your end of an accepted job: identity, the deduplicated warnings (known
/// at submit time) and the live event stream.
#[derive(Debug)]
pub struct JobHandle {
    id: JobId,
    cells: usize,
    warnings: Vec<CampaignWarning>,
    events: mpsc::Receiver<JobEvent>,
}

impl JobHandle {
    /// The engine-unique job id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Number of cells (campaigns) in the job.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Distinct warnings across the job's campaigns, in submission order
    /// (identical to [`SweepReport::warnings`] for the same grid).
    pub fn warnings(&self) -> &[CampaignWarning] {
        &self.warnings
    }

    /// Blocking: the next event, or `None` after `Finished` (or if the
    /// engine died).
    pub fn next_event(&self) -> Option<JobEvent> {
        self.events.recv().ok()
    }

    /// Drain the stream into a [`SweepReport`], byte-identical to
    /// [`Sweep::run`](super::Sweep::run) on the same grid.
    pub fn wait(self) -> SweepReport {
        let mut slots: Vec<Option<SweepCampaignResult>> = (0..self.cells).map(|_| None).collect();
        for event in self.events.iter() {
            match event {
                JobEvent::CellFinished { cell, result } => slots[cell] = Some(*result),
                JobEvent::Finished => break,
                _ => {}
            }
        }
        SweepReport {
            results: slots
                .into_iter()
                .map(|r| r.expect("engine job finished without producing every result"))
                .collect(),
            warnings: self.warnings,
        }
    }
}

/// One admitted job as the scheduler sees it.
struct Job {
    id: u64,
    client: u64,
    keep_records: bool,
    plans: Vec<Plan>,
    units: Vec<EngineUnit>,
    /// Cells not yet finished; the job leaves the schedule at 0.
    live: AtomicUsize,
    events: mpsc::Sender<JobEvent>,
}

struct ClientState {
    priority: u8,
    /// Batches of this client currently being executed by workers.
    inflight: usize,
    /// Unregistered while still owning work; reaped when it drains.
    closed: bool,
}

/// Everything behind the scheduler mutex.
struct Sched {
    /// Active jobs in admission order.
    jobs: Vec<Arc<Job>>,
    clients: HashMap<u64, ClientState>,
    /// Advances once per successful claim; rotates the scan start between
    /// equal-priority clients so claims round-robin.
    rotor: usize,
    shutdown: bool,
    next_client: u64,
    next_job: u64,
}

struct Shared {
    sched: Mutex<Sched>,
    /// Workers park here; notified on submit, batch completion and shutdown.
    work: Condvar,
    /// Blocked submitters park here; notified when a job leaves the
    /// schedule and on shutdown.
    capacity: Condvar,
    /// Resolved per-client in-flight quota (≥ 1).
    quota: usize,
    /// Resolved admission bound (≥ 1).
    max_pending: usize,
}

const LOCK_POISONED: &str = "engine scheduler lock poisoned";

/// The persistent campaign engine; see the module docs.
pub struct SweepEngine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

impl SweepEngine {
    /// Spawn the worker pool; it runs until [`SweepEngine::shutdown`] (or
    /// `Drop`).
    pub fn new(config: EngineConfig) -> SweepEngine {
        let threads = if config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.threads
        }
        .max(1);
        let quota = if config.quota == 0 {
            threads
        } else {
            config.quota
        };
        let max_pending = if config.max_pending == 0 {
            DEFAULT_MAX_PENDING
        } else {
            config.max_pending
        };
        let shared = Arc::new(Shared {
            sched: Mutex::new(Sched {
                jobs: Vec::new(),
                clients: HashMap::new(),
                rotor: 0,
                shutdown: false,
                next_client: 0,
                next_job: 0,
            }),
            work: Condvar::new(),
            capacity: Condvar::new(),
            quota,
            max_pending,
        });
        let workers = (0..threads)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, t))
            })
            .collect();
        SweepEngine {
            shared,
            workers: Mutex::new(workers),
            threads,
        }
    }

    /// Size of the engine's worker pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Register a tenant.  Higher `priority` wins every claim over lower;
    /// equal priorities round-robin.
    pub fn register_client(&self, priority: u8) -> ClientId {
        let mut sched = self.shared.sched.lock().expect(LOCK_POISONED);
        let id = sched.next_client;
        sched.next_client += 1;
        sched.clients.insert(
            id,
            ClientState {
                priority,
                inflight: 0,
                closed: false,
            },
        );
        ClientId(id)
    }

    /// Unregister a tenant.  Jobs it still owns drain normally; the client
    /// record is reaped once its last batch lands.
    pub fn unregister_client(&self, client: ClientId) {
        let mut sched = self.shared.sched.lock().expect(LOCK_POISONED);
        if let Some(state) = sched.clients.get_mut(&client.0) {
            state.closed = true;
        }
        reap_client(&mut sched, client.0);
    }

    /// Submit a job, blocking while the engine is at its admission bound.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.submit_inner(spec, true)
    }

    /// [`SweepEngine::submit`] without the blocking: fails fast with
    /// [`SubmitError::Full`] at the admission bound.
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.submit_inner(spec, false)
    }

    fn submit_inner(&self, spec: JobSpec, block: bool) -> Result<JobHandle, SubmitError> {
        for (i, c) in spec.campaigns.iter().enumerate() {
            if c.unit >= spec.units.len() {
                return Err(SubmitError::BadUnit {
                    campaign: i,
                    unit: c.unit,
                    units: spec.units.len(),
                });
            }
        }
        // Plans are built exactly as `Sweep::run_streamed_with` builds them —
        // same auto-batch formula from the job's own `config.threads` — so
        // engine results are byte-identical to the scoped driver's.  Built
        // outside the scheduler lock: depth-sorting a stored unit samples
        // the whole campaign.
        let threads = if spec.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            spec.config.threads
        };
        let total_experiments: usize = spec.campaigns.iter().map(|c| c.spec.experiments).sum();
        let auto_batch = total_experiments.div_ceil(threads.max(1) * 8).clamp(1, 64);
        let plans: Vec<Plan> = spec
            .campaigns
            .iter()
            .map(|c| {
                Plan::new(
                    c,
                    &spec.units[c.unit].view(),
                    spec.config.batch_size,
                    auto_batch,
                    spec.config.precision,
                )
            })
            .collect();
        // Deduplicated in submission order, like `SweepReport::warnings`.
        // The engine does not print them — they are data for the caller.
        let mut warnings: Vec<CampaignWarning> = Vec::new();
        for plan in &plans {
            for w in &plan.warnings {
                if !warnings.contains(w) {
                    warnings.push(*w);
                }
            }
        }

        let (tx, rx) = mpsc::channel::<JobEvent>();
        let cells = plans.len();
        // Cells without a single batch (0 experiments) cannot be finalized
        // by a worker; emit their empty results up front, mirroring the
        // scoped driver.
        let mut live = 0usize;
        for (index, plan) in plans.iter().enumerate() {
            if plan.batches() == 0 {
                let _ = tx.send(JobEvent::CellFinished {
                    cell: index,
                    result: Box::new(plan.empty_result()),
                });
            } else {
                live += 1;
            }
        }

        let mut sched = self.shared.sched.lock().expect(LOCK_POISONED);
        loop {
            if sched.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            match sched.clients.get(&spec.client.0) {
                Some(state) if !state.closed => {}
                _ => return Err(SubmitError::UnknownClient),
            }
            if sched.jobs.len() < self.shared.max_pending {
                break;
            }
            if !block {
                return Err(SubmitError::Full);
            }
            sched = self.shared.capacity.wait(sched).expect(LOCK_POISONED);
        }
        let id = sched.next_job;
        sched.next_job += 1;
        if live == 0 {
            let _ = tx.send(JobEvent::Finished);
        } else {
            sched.jobs.push(Arc::new(Job {
                id,
                client: spec.client.0,
                keep_records: spec.config.keep_records,
                plans,
                units: spec.units,
                live: AtomicUsize::new(live),
                events: tx,
            }));
            drop(sched);
            self.shared.work.notify_all();
        }
        Ok(JobHandle {
            id: JobId(id),
            cells,
            warnings,
            events: rx,
        })
    }

    /// Stop admission, drain every in-flight job to completion, and join
    /// the workers.  Idempotent; also run by `Drop`.
    pub fn shutdown(&self) {
        {
            let mut sched = self.shared.sched.lock().expect(LOCK_POISONED);
            sched.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.capacity.notify_all();
        let handles: Vec<JoinHandle<()>> = {
            let mut workers = self.workers.lock().expect(LOCK_POISONED);
            workers.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for SweepEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// An engine worker: claim a batch under the scheduler policy, run it
/// outside the lock, repeat; park on the `work` condvar when nothing is
/// claimable; exit once shut down **and** drained.
fn worker_loop(shared: &Shared, worker: usize) {
    loop {
        let claimed = {
            let mut sched = shared.sched.lock().expect(LOCK_POISONED);
            loop {
                if let Some(claim) = claim_batch(&mut sched, shared.quota) {
                    break Some(claim);
                }
                if sched.shutdown && sched.jobs.is_empty() {
                    break None;
                }
                sched = shared.work.wait(sched).expect(LOCK_POISONED);
            }
        };
        let Some((job, cell, batch)) = claimed else {
            return;
        };
        run_engine_batch(worker, &job, cell, batch);
        finish_batch(shared, &job);
    }
}

/// The scheduling policy, applied under the lock: highest client priority
/// first, rotor round-robin between equal priorities, skip clients at their
/// in-flight quota, then first job / first cell / front-of-deque within the
/// chosen client.  None of it affects results — only which worker runs
/// which batch when.
fn claim_batch(sched: &mut Sched, quota: usize) -> Option<(Arc<Job>, usize, usize)> {
    // Distinct clients owning active jobs, in admission order, with their
    // priorities.
    let mut clients: Vec<(u64, u8)> = Vec::new();
    for job in &sched.jobs {
        if !clients.iter().any(|&(c, _)| c == job.client) {
            let priority = sched.clients.get(&job.client).map_or(0, |s| s.priority);
            clients.push((job.client, priority));
        }
    }
    if clients.is_empty() {
        return None;
    }
    // Stable sort keeps admission order within a priority; then rotate each
    // equal-priority run by the rotor so consecutive claims start at
    // different clients.
    clients.sort_by_key(|&(_, priority)| std::cmp::Reverse(priority));
    let mut order: Vec<u64> = Vec::with_capacity(clients.len());
    let mut i = 0;
    while i < clients.len() {
        let mut j = i;
        while j < clients.len() && clients[j].1 == clients[i].1 {
            j += 1;
        }
        let group = &clients[i..j];
        let r = sched.rotor % group.len();
        order.extend(group[r..].iter().chain(&group[..r]).map(|&(c, _)| c));
        i = j;
    }
    for client in order {
        let at_quota = sched
            .clients
            .get(&client)
            .is_some_and(|s| s.inflight >= quota);
        if at_quota {
            continue;
        }
        for job in &sched.jobs {
            if job.client != client {
                continue;
            }
            for (cell, plan) in job.plans.iter().enumerate() {
                if let Some(batch) = plan.take_batch() {
                    let job = Arc::clone(job);
                    if let Some(state) = sched.clients.get_mut(&client) {
                        state.inflight += 1;
                    }
                    sched.rotor = sched.rotor.wrapping_add(1);
                    return Some((job, cell, batch));
                }
            }
        }
    }
    None
}

/// Post-batch bookkeeping: release the quota slot, retire the job once its
/// last cell finished (emitting `Finished` exactly once and freeing an
/// admission slot), reap closed clients, and wake the pool — the batch may
/// have released an adaptive round.
fn finish_batch(shared: &Shared, job: &Arc<Job>) {
    let mut sched = shared.sched.lock().expect(LOCK_POISONED);
    if let Some(state) = sched.clients.get_mut(&job.client) {
        state.inflight -= 1;
    }
    if job.live.load(Ordering::Acquire) == 0 {
        if let Some(pos) = sched.jobs.iter().position(|j| j.id == job.id) {
            sched.jobs.remove(pos);
            let _ = job.events.send(JobEvent::Finished);
            shared.capacity.notify_all();
        }
    }
    reap_client(&mut sched, job.client);
    drop(sched);
    shared.work.notify_all();
}

/// Drop a closed client's record once nothing of it remains in the engine.
fn reap_client(sched: &mut Sched, client: u64) {
    let drained = !sched.jobs.iter().any(|j| j.client == client);
    let reapable = sched
        .clients
        .get(&client)
        .is_some_and(|s| s.closed && s.inflight == 0 && drained);
    if reapable {
        sched.clients.remove(&client);
    }
}

/// Run one batch and apply the round/finish protocol — the engine's mirror
/// of the scoped driver's `run_batch`, with job events in place of
/// telemetry.  The protocol (completion counting, round-boundary
/// evaluation, release, finalize) must match `run_batch` exactly; the
/// byte-identity tests below and `tests/serve_equivalence.rs` pin it.
fn run_engine_batch(worker: usize, job: &Job, cell: usize, b: usize) {
    let plan = &job.plans[cell];
    let unit = job.units[plan.unit].view();
    let (start, end) = plan.spans[b];
    let batch_start = Instant::now();
    let out = run_span(plan, b, &unit, job.keep_records);
    let wall_ns = batch_start.elapsed().as_nanos() as u64;
    let batch_counts = out.counts;
    *plan.slots[b].lock().expect("sweep batch slot poisoned") = Some(out);
    let _ = job.events.send(JobEvent::BatchDone {
        cell,
        batch: b,
        experiments: u64::from(end - start),
        counts: batch_counts,
        wall_ns,
        worker,
    });
    // Exactly one worker observes each round boundary: `fetch_add` hands out
    // unique completion counts, and `released` only moves when the boundary
    // worker advances it below.
    let done = plan.completed.fetch_add(1, Ordering::AcqRel) + 1;
    if done != plan.released.load(Ordering::Acquire) {
        return;
    }
    let round = plan
        .round_batch_ends
        .iter()
        .position(|&e| e == done)
        .expect("released always equals a round boundary");
    let last_round = round + 1 == plan.round_batch_ends.len();
    let merged = (!last_round || plan.precision.is_some()).then(|| plan.merged_counts(done));
    let finished = last_round
        || plan
            .precision
            .as_ref()
            .expect("fixed-n campaigns have exactly one round")
            .satisfied(
                merged
                    .as_ref()
                    .expect("merged counts computed for gated rounds"),
            );
    if let (Some(merged), Some(precision)) = (merged.as_ref(), plan.precision.as_ref()) {
        let (sdc_hw, det_hw) = precision.half_widths(merged);
        let _ = job.events.send(JobEvent::RoundDone {
            cell,
            round: round as u32 + 1,
            experiments: merged.total(),
            sdc_half_width_pct: sdc_hw,
            detection_half_width_pct: det_hw,
            stopped: finished,
        });
    }
    if finished {
        let result = plan.finalize(job.keep_records, done, round as u32 + 1);
        let _ = job.events.send(JobEvent::CellFinished {
            cell,
            result: Box::new(result),
        });
        job.live.fetch_sub(1, Ordering::AcqRel);
    } else {
        plan.released
            .store(plan.round_batch_ends[round + 1], Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::Precision;
    use crate::campaign::CampaignSpec;
    use crate::fault_model::{FaultModel, WinSize};
    use crate::golden::GoldenRun;
    use crate::replay::{CheckpointConfig, CheckpointStore};
    use crate::sweep::Sweep;
    use crate::technique::Technique;
    use mbfi_ir::{Module, ModuleBuilder, Type};

    fn workload(n: i64) -> Module {
        let mut mb = ModuleBuilder::new("w");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let data = f.alloca(Type::I64, 16i64);
            f.counted_loop(Type::I64, 0i64, n, |f, i| {
                let slot = f.urem(Type::I64, i, 16i64);
                let v = f.mul(Type::I64, i, 5i64);
                f.store_elem(Type::I64, data, slot, v);
            });
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 16i64, |f, i| {
                let v = f.load_elem(Type::I64, data, i);
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, v);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    fn unit(n: i64, with_store: bool) -> EngineUnit {
        let code = CompiledModule::lower(&workload(n));
        let golden = GoldenRun::capture_compiled(&code).unwrap();
        let store = with_store.then(|| {
            Arc::new(
                CheckpointStore::capture_compiled(
                    &code,
                    &golden,
                    CheckpointConfig::with_interval(25),
                )
                .unwrap(),
            )
        });
        EngineUnit {
            code: Arc::new(code),
            golden: Arc::new(golden),
            store,
        }
    }

    fn grid(experiments: usize) -> Vec<SweepCampaign> {
        let mut out = Vec::new();
        for technique in Technique::ALL {
            for model in [
                FaultModel::single_bit(),
                FaultModel::multi_bit(3, WinSize::Fixed(0)),
                FaultModel::multi_bit(4, WinSize::Random { lo: 1, hi: 12 }),
            ] {
                out.push(SweepCampaign {
                    unit: 0,
                    spec: CampaignSpec {
                        technique,
                        model,
                        experiments,
                        seed: 0x5EE9,
                        hang_factor: 8,
                        threads: 1,
                    },
                });
            }
        }
        out
    }

    /// An engine job's report is byte-identical to `Sweep::run` on the same
    /// grid — fixed-n and adaptive, with and without a store, at several
    /// pool sizes and job thread hints.
    #[test]
    fn engine_report_matches_scoped_sweep() {
        let units = vec![unit(48, false), unit(96, true)];
        let mut campaigns = grid(40);
        campaigns.extend(grid(25).into_iter().map(|mut c| {
            c.unit = 1;
            c
        }));
        for precision in [
            None,
            Some(Precision {
                target_half_width_pct: 12.0,
                min_experiments: 10,
                max_experiments: 60,
                ..Precision::default()
            }),
        ] {
            for job_threads in [1usize, 4] {
                let config = SweepConfig {
                    threads: job_threads,
                    keep_records: true,
                    precision,
                    ..SweepConfig::default()
                };
                let views: Vec<SweepUnit<'_>> = units.iter().map(EngineUnit::view).collect();
                let expected = Sweep::run(&views, &campaigns, &config);
                for pool in [1usize, 4] {
                    let engine = SweepEngine::new(EngineConfig {
                        threads: pool,
                        ..EngineConfig::default()
                    });
                    let client = engine.register_client(0);
                    let handle = engine
                        .submit(JobSpec {
                            client,
                            units: units.clone(),
                            campaigns: campaigns.clone(),
                            config,
                        })
                        .unwrap();
                    let report = handle.wait();
                    assert_eq!(
                        report,
                        expected,
                        "engine diverged from scoped sweep (pool={pool}, \
                         job_threads={job_threads}, adaptive={})",
                        precision.is_some()
                    );
                }
            }
        }
    }

    /// Concurrent jobs from two clients both match the scoped driver, and
    /// the event stream carries per-cell progress.
    #[test]
    fn concurrent_clients_stream_identical_results() {
        let units = vec![unit(48, false)];
        let campaigns = grid(30);
        let config = SweepConfig {
            threads: 2,
            ..SweepConfig::default()
        };
        let views: Vec<SweepUnit<'_>> = units.iter().map(EngineUnit::view).collect();
        let expected = Sweep::run(&views, &campaigns, &config);
        let engine = SweepEngine::new(EngineConfig {
            threads: 4,
            quota: 2,
            ..EngineConfig::default()
        });
        let low = engine.register_client(0);
        let high = engine.register_client(5);
        let handles: Vec<JobHandle> = [low, high]
            .iter()
            .map(|&client| {
                engine
                    .submit(JobSpec {
                        client,
                        units: units.clone(),
                        campaigns: campaigns.clone(),
                        config,
                    })
                    .unwrap()
            })
            .collect();
        for handle in handles {
            let mut batch_experiments = 0u64;
            let mut finished_cells = 0usize;
            let mut slots: Vec<Option<SweepCampaignResult>> =
                (0..handle.cells()).map(|_| None).collect();
            while let Some(event) = handle.next_event() {
                match event {
                    JobEvent::BatchDone { experiments, .. } => batch_experiments += experiments,
                    JobEvent::CellFinished { cell, result } => {
                        finished_cells += 1;
                        slots[cell] = Some(*result);
                    }
                    JobEvent::Finished => break,
                    JobEvent::RoundDone { .. } => {}
                }
            }
            assert_eq!(finished_cells, campaigns.len());
            let results: Vec<SweepCampaignResult> = slots.into_iter().map(Option::unwrap).collect();
            assert_eq!(results, expected.results);
            let total: u64 = results.iter().map(|r| r.result.total()).sum();
            assert_eq!(
                batch_experiments, total,
                "batch events must cover every cell"
            );
        }
        engine.unregister_client(low);
        engine.unregister_client(high);
    }

    /// `try_submit` fails fast at the admission bound; blocking `submit`
    /// would wait.  Shutdown then drains the in-flight job completely.
    #[test]
    fn admission_bound_and_graceful_drain() {
        let units = vec![unit(48, false)];
        let engine = SweepEngine::new(EngineConfig {
            threads: 1,
            max_pending: 1,
            ..EngineConfig::default()
        });
        let client = engine.register_client(0);
        let big = JobSpec {
            client,
            units: units.clone(),
            campaigns: vec![SweepCampaign {
                unit: 0,
                spec: CampaignSpec {
                    experiments: 20_000,
                    threads: 1,
                    hang_factor: 8,
                    ..CampaignSpec::default()
                },
            }],
            config: SweepConfig::default(),
        };
        let handle = engine.submit(big.clone()).unwrap();
        // The 20k-experiment job is still active (one worker, ~ms per
        // hundred experiments), so the second submission must bounce.
        let err = engine.try_submit(big).unwrap_err();
        assert_eq!(err, SubmitError::Full);
        engine.shutdown();
        let report = handle.wait();
        assert_eq!(report.results[0].result.total(), 20_000);
        let after = engine.try_submit(JobSpec {
            client,
            units,
            campaigns: vec![],
            config: SweepConfig::default(),
        });
        assert_eq!(after.unwrap_err(), SubmitError::ShuttingDown);
    }

    #[test]
    fn submit_validation_errors() {
        let engine = SweepEngine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let units = vec![unit(48, false)];
        let unknown = engine.try_submit(JobSpec {
            client: ClientId(999),
            units: units.clone(),
            campaigns: vec![],
            config: SweepConfig::default(),
        });
        assert_eq!(unknown.unwrap_err(), SubmitError::UnknownClient);
        let client = engine.register_client(0);
        let bad = engine.try_submit(JobSpec {
            client,
            units,
            campaigns: vec![SweepCampaign {
                unit: 3,
                spec: CampaignSpec::default(),
            }],
            config: SweepConfig::default(),
        });
        assert_eq!(
            bad.unwrap_err(),
            SubmitError::BadUnit {
                campaign: 0,
                unit: 3,
                units: 1
            }
        );
    }

    /// Zero-experiment cells finish up front; a job of only such cells
    /// completes without touching a worker, and `Drop` never hangs.
    #[test]
    fn empty_jobs_and_drop_shutdown() {
        let units = vec![unit(32, false)];
        let engine = SweepEngine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let client = engine.register_client(1);
        let handle = engine
            .submit(JobSpec {
                client,
                units,
                campaigns: vec![SweepCampaign {
                    unit: 0,
                    spec: CampaignSpec {
                        experiments: 0,
                        threads: 1,
                        ..CampaignSpec::default()
                    },
                }],
                config: SweepConfig::default(),
            })
            .unwrap();
        let report = handle.wait();
        assert_eq!(report.results[0].result.total(), 0);
        drop(engine);
    }
}
