//! Whole-grid campaign sweeps on one global, deterministic work-stealing
//! executor.
//!
//! The paper's results all come from *grids* of campaigns — every workload ×
//! technique × fault model — yet [`crate::Campaign`] alone only knows how to run one
//! campaign at a time, spawning (and joining) its own worker threads per
//! campaign.  A [`Sweep`] instead takes the whole grid at once: every
//! campaign's experiments are cut into fixed-size **batches**
//! and queued in a per-campaign deque; one pool of workers drains all queues
//! together, each worker preferring its "home" campaign and **stealing whole
//! batches** from the other campaigns once its home queue is empty.  The
//! pool is spawned once for the entire grid instead of once per campaign,
//! and a long-running campaign at the end of the grid is finished
//! cooperatively by every worker rather than by one campaign-private pool.
//!
//! ## Determinism contract
//!
//! Results are *byte-identical regardless of thread count and steal
//! schedule*, and equal to running each cell through
//! [`crate::Campaign::run_compiled`] serially:
//!
//! * every experiment's spec is a pure function of `(campaign seed,
//!   experiment index)` alone — workers re-sample it when they run the
//!   batch — so scheduling cannot influence what is injected;
//! * each batch produces an independent partial result, stored in a slot
//!   keyed by `(campaign, batch index)`;
//! * when a campaign's last batch completes, its partials are folded **in
//!   batch-index order** into the [`CampaignResult`] (outcome counts and
//!   histograms are order-independent sums; [`InjectionRecord`]s are keyed
//!   by experiment index), so Wald intervals and per-experiment records come
//!   out bit-for-bit the same on 1 thread or 64.
//!
//! The contract is enforced by `tests/sweep_equivalence.rs` (per-cell
//! byte-equality against the serial runner over the default grid on all 15
//! workloads, invariant across thread counts) and by `sweep_bench --check`.
//!
//! ## Adaptive precision-targeted sampling
//!
//! With [`SweepConfig::precision`] set, each campaign runs in deterministic
//! **rounds** instead of a fixed experiment count: round boundaries are fixed
//! experiment-index prefixes (see [`Precision::round_ends`]), batches never
//! straddle a round boundary, and when a round's last batch lands the worker
//! that completed it merges the counts of *all* completed batches (a pure
//! index-order fold) and evaluates the stopping rule
//! ([`Precision::satisfied`]).  Cells that meet the target release no further
//! batches — their worker capacity drains to unfinished campaigns through the
//! normal stealing scan — while unfinished cells release their next round.
//! Because the stop decision sees only merged whole-round state, the realized
//! experiment count (and therefore every count, histogram and record) is the
//! same for every thread count, batch size and steal schedule, and equals a
//! fixed-n campaign of exactly the realized length
//! (`tests/adaptive_equivalence.rs`).
//!
//! ## Shared artifacts
//!
//! A [`SweepUnit`] carries *borrowed* per-workload artifacts — the lowered
//! [`CompiledModule`], the [`GoldenRun`] and optionally a read-only
//! [`CheckpointStore`] — so one set of artifacts serves every campaign of
//! the grid (the `mbfi-bench` harness builds them once per `(workload,
//! input size)` key in its `SweepCache`).
//!
//! [`crate::Campaign::run_compiled_with_store`] is itself implemented as a
//! single-campaign sweep, so there is exactly one execution engine.
//!
//! ## Two drivers, one core
//!
//! The scheduling core — per-campaign plans, batch claiming, round gating
//! and the index-order result fold — lives in `sweep::plan` and is shared by
//! **two drivers**: the borrow-friendly scoped driver behind [`Sweep::run`]
//! (spawns a scoped pool per call), and the persistent multi-tenant
//! [`SweepEngine`] behind the `mbfi-serve` daemon (owns its worker pool for
//! the process lifetime, accepts jobs at runtime with per-client priorities,
//! fairness quotas and bounded admission, and streams results as they land).
//! Both produce byte-identical results for the same cells because everything
//! that determines what a cell computes is in the shared core; the drivers
//! only decide *when* and *by whom* each batch runs, which the determinism
//! contract makes irrelevant.

mod engine;
mod plan;

pub use engine::{
    ClientId, EngineConfig, EngineUnit, JobEvent, JobHandle, JobId, JobSpec, SubmitError,
    SweepEngine,
};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::adaptive::Precision;
use crate::campaign::{CampaignResult, CampaignSpec, CampaignWarning};
use crate::golden::GoldenRun;
use crate::injector::InjectionRecord;
use crate::outcome::OutcomeCounts;
use crate::replay::CheckpointStore;
use crate::telemetry::{CellInfo, EventKind, Metric, NoopSink, TelemetryLevel, TelemetrySink};
use mbfi_ir::CompiledModule;

use plan::{run_span, run_span_timed, Plan};

/// Per-workload artifacts shared by every campaign of a sweep: the module is
/// lowered once, the golden run captured once, and the checkpoint store (if
/// any) is read-only, so one unit can back any number of campaigns across
/// any number of worker threads.
#[derive(Debug, Clone, Copy)]
pub struct SweepUnit<'a> {
    /// The flat bytecode every experiment executes.
    pub code: &'a CompiledModule,
    /// The fault-free profiling run experiments are classified against.
    pub golden: &'a GoldenRun,
    /// Optional golden-run checkpoints; experiments restore the deepest
    /// checkpoint before their first injection instead of re-executing the
    /// fault-free prefix (byte-transparent, see [`crate::replay`]).
    pub store: Option<&'a CheckpointStore>,
}

/// One campaign of a sweep: a unit index plus the campaign's spec.
///
/// `spec.threads` is recorded in the result verbatim but does not influence
/// scheduling — the sweep's global worker pool (sized by
/// [`SweepConfig::threads`]) runs every campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCampaign {
    /// Index into the sweep's unit slice.
    pub unit: usize,
    /// The campaign to run.
    pub spec: CampaignSpec,
}

/// Knobs of the sweep executor.  `threads` and `batch_size` never affect
/// results — only how the work is spread over threads.  `precision` selects
/// a different (but still fully deterministic) sampling mode; see the module
/// docs.
///
/// The default (`threads: 0, batch_size: 0, keep_records: false,
/// precision: None`) means "all cores, auto-sized batches, aggregate results
/// only, fixed-n sampling".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SweepConfig {
    /// Worker threads (0 = all available parallelism).
    pub threads: usize,
    /// Experiments per stealable batch (0 = auto: total experiments spread
    /// over 8 batches per worker, clamped to `[1, 64]`; adaptive campaigns
    /// auto-size from the round step instead so the batch cut never depends
    /// on the thread count).
    pub batch_size: usize,
    /// Keep every experiment's [`InjectionRecord`]s in the result
    /// ([`SweepCampaignResult::records`]), indexed by experiment.  Off by
    /// default: a 10k-experiment grid would hold millions of records.
    pub keep_records: bool,
    /// Adaptive precision-targeted sampling: `Some` runs every campaign of
    /// the sweep in rounds until its SDC and Detection interval half-widths
    /// meet the target (each cell's budget is then
    /// [`Precision::max_experiments`]; `CampaignSpec::experiments` is
    /// ignored).  `None` (the default) keeps classic fixed-n sampling.
    pub precision: Option<Precision>,
}

/// Result of one campaign of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCampaignResult {
    /// The aggregated campaign result, byte-identical to
    /// [`crate::Campaign::run_compiled`] on the same cell.
    pub result: CampaignResult,
    /// With [`SweepConfig::keep_records`]: the applied flips of experiment
    /// `i` at index `i` (empty otherwise).
    pub records: Vec<Vec<InjectionRecord>>,
}

/// Everything a sweep produces.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One result per submitted campaign, in submission order.
    pub results: Vec<SweepCampaignResult>,
    /// Distinct warnings across all campaigns, in submission order (each
    /// campaign's own warnings are also carried in its
    /// [`CampaignResult::warnings`]).
    pub warnings: Vec<CampaignWarning>,
}

impl SweepCampaignResult {
    /// Wire encoding of one cell's result, exact enough that a result that
    /// crossed the serve wire compares byte-identical to the in-process one.
    pub fn to_json(&self) -> crate::report::json::Json {
        use crate::report::json::Json;
        let mut obj = Json::object();
        obj.set("result", self.result.to_json());
        obj.set(
            "records",
            Json::Arr(
                self.records
                    .iter()
                    .map(|exp| Json::Arr(exp.iter().map(|r| r.to_json()).collect()))
                    .collect(),
            ),
        );
        obj
    }

    /// Parse the wire encoding back.
    pub fn from_json(v: &crate::report::json::Json) -> Option<SweepCampaignResult> {
        Some(SweepCampaignResult {
            result: CampaignResult::from_json(v.get("result")?)?,
            records: v
                .get("records")?
                .as_array()?
                .iter()
                .map(|exp| {
                    exp.as_array()?
                        .iter()
                        .map(InjectionRecord::from_json)
                        .collect::<Option<Vec<_>>>()
                })
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

impl SweepReport {
    /// Wire encoding of a whole report (the final frame of a serve job).
    pub fn to_json(&self) -> crate::report::json::Json {
        use crate::report::json::Json;
        let mut obj = Json::object();
        obj.set(
            "results",
            Json::Arr(self.results.iter().map(|r| r.to_json()).collect()),
        );
        obj.set(
            "warnings",
            Json::Arr(self.warnings.iter().map(|w| w.to_json()).collect()),
        );
        obj
    }

    /// Parse the wire encoding back.
    pub fn from_json(v: &crate::report::json::Json) -> Option<SweepReport> {
        Some(SweepReport {
            results: v
                .get("results")?
                .as_array()?
                .iter()
                .map(SweepCampaignResult::from_json)
                .collect::<Option<Vec<_>>>()?,
            warnings: v
                .get("warnings")?
                .as_array()?
                .iter()
                .map(CampaignWarning::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// The campaign-matrix executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sweep;

impl Sweep {
    /// Run every campaign of the grid and collect the results in submission
    /// order.
    pub fn run(
        units: &[SweepUnit<'_>],
        campaigns: &[SweepCampaign],
        config: &SweepConfig,
    ) -> SweepReport {
        Self::run_with(units, campaigns, config, &NoopSink)
    }

    /// [`Sweep::run`] publishing live progress into a telemetry sink.
    ///
    /// Telemetry is strictly observational: the report is byte-identical to
    /// [`Sweep::run`] for any sink, level and thread count
    /// (`tests/telemetry_equivalence.rs`), and with [`NoopSink`] every
    /// instrumentation site monomorphizes away.
    pub fn run_with<S: TelemetrySink>(
        units: &[SweepUnit<'_>],
        campaigns: &[SweepCampaign],
        config: &SweepConfig,
        telemetry: &S,
    ) -> SweepReport {
        let mut slots: Vec<Option<SweepCampaignResult>> = vec![None; campaigns.len()];
        let warnings =
            Self::run_streamed_with(units, campaigns, config, telemetry, |index, result| {
                slots[index] = Some(result);
            });
        SweepReport {
            results: slots
                .into_iter()
                .map(|r| r.expect("sweep finished without producing every result"))
                .collect(),
            warnings,
        }
    }

    /// Run the grid, handing each campaign's result to `sink` as soon as its
    /// last batch completes (completion order; the `usize` is the campaign's
    /// submission index).  Returns the deduplicated warnings.
    ///
    /// Each distinct warning is also printed to stderr once per sweep.
    pub fn run_streamed(
        units: &[SweepUnit<'_>],
        campaigns: &[SweepCampaign],
        config: &SweepConfig,
        sink: impl FnMut(usize, SweepCampaignResult),
    ) -> Vec<CampaignWarning> {
        Self::run_streamed_with(units, campaigns, config, &NoopSink, sink)
    }

    /// [`Sweep::run_streamed`] publishing live progress into a telemetry
    /// sink (see [`Sweep::run_with`] for the observation-only contract).
    pub fn run_streamed_with<S: TelemetrySink>(
        units: &[SweepUnit<'_>],
        campaigns: &[SweepCampaign],
        config: &SweepConfig,
        telemetry: &S,
        mut sink: impl FnMut(usize, SweepCampaignResult),
    ) -> Vec<CampaignWarning> {
        for c in campaigns {
            assert!(
                c.unit < units.len(),
                "sweep campaign references unit {} but only {} units were supplied",
                c.unit,
                units.len()
            );
        }

        let threads = if config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.threads
        };
        // The fixed-n auto batch size spreads the whole grid over 8 batches
        // per worker.  It may depend on the thread count, which is safe for
        // fixed-n campaigns (the batch cut never changes results) but NOT for
        // adaptive ones (rounds are made of whole batches) — adaptive plans
        // auto-size from the round step instead, inside [`Plan::new`].
        let total_experiments: usize = campaigns.iter().map(|c| c.spec.experiments).sum();
        let auto_batch = total_experiments.div_ceil(threads.max(1) * 8).clamp(1, 64);

        let plans: Vec<Plan> = campaigns
            .iter()
            .map(|c| {
                Plan::new(
                    c,
                    &units[c.unit],
                    config.batch_size,
                    auto_batch,
                    config.precision,
                )
            })
            .collect();

        // Warnings are known before any experiment runs; print each distinct
        // one once (submission order) so a whole grid of equally-misconfigured
        // campaigns does not repeat itself hundreds of times on stderr.
        let mut warnings: Vec<CampaignWarning> = Vec::new();
        for plan in &plans {
            for w in &plan.warnings {
                if !warnings.contains(w) {
                    eprintln!("campaign warning: {w} ({w:?})");
                    warnings.push(*w);
                }
            }
        }

        let total_batches: usize = plans.iter().map(Plan::batches).sum();
        let threads = threads.clamp(1, total_batches.max(1));
        let sweep_start = Instant::now();

        // Register cells and announce the sweep before any experiment runs,
        // so a tailing monitor sees labels and budgets first.
        if S::ENABLED && telemetry.level() > TelemetryLevel::Off {
            let infos: Vec<CellInfo> = plans
                .iter()
                .map(|p| CellInfo {
                    unit: p.unit,
                    label: format!(
                        "u{} {} {}",
                        p.unit,
                        p.spec.technique.short_name(),
                        p.spec.model.label()
                    ),
                    planned: p.spec.experiments as u64,
                })
                .collect();
            telemetry.begin_sweep(&infos, threads);
            let planned: u64 = infos.iter().map(|c| c.planned).sum();
            telemetry.emit(EventKind::SweepStarted {
                cells: infos.len(),
                threads,
                planned,
            });
            for (cell, info) in infos.into_iter().enumerate() {
                telemetry.emit(EventKind::CellPlanned { cell, info });
            }
            // Per-unit shared artifacts: the fault-free per-opcode profile
            // and the checkpoint-store footprint.
            for unit in units {
                telemetry.profile(&unit.golden.profile);
                if let Some(store) = unit.store {
                    store.publish_telemetry(telemetry);
                }
            }
        }

        // Campaigns without a single batch (0 experiments) cannot be
        // finalized by a worker; emit their empty results up front.
        let mut live = 0usize;
        let mut total_done = 0u64;
        for (index, plan) in plans.iter().enumerate() {
            if plan.batches() == 0 {
                if S::ENABLED {
                    telemetry.add(Metric::CellsFinished, 1);
                    telemetry.cell_status(index, 0, f64::NAN, f64::NAN, true);
                    telemetry.emit(EventKind::CellFinished {
                        cell: index,
                        experiments: 0,
                        counts: OutcomeCounts::default(),
                        rounds: 0,
                    });
                }
                sink(index, plan.empty_result());
            } else {
                live += 1;
            }
        }
        if live > 0 {
            let keep_records = config.keep_records;
            // Campaigns still running.  Adaptive ("gated") workers park on
            // the sweep condvar rather than exit while this is non-zero,
            // because an adaptive campaign with every released batch claimed
            // may release more work when its round completes.  Fixed-n
            // sweeps release everything up front, so an idle worker exits
            // immediately as before.
            let live_plans = AtomicUsize::new(live);
            let gated = config.precision.is_some();
            let parking = Parking::new();
            let (tx, rx) = mpsc::channel::<(usize, SweepCampaignResult)>();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let tx = tx.clone();
                    let plans = &plans;
                    let live_plans = &live_plans;
                    let parking = &parking;
                    scope.spawn(move || {
                        worker(
                            t,
                            plans,
                            units,
                            keep_records,
                            gated,
                            live_plans,
                            parking,
                            telemetry,
                            &tx,
                        )
                    });
                }
                drop(tx);
                for _ in 0..live {
                    let (index, result) = rx
                        .recv()
                        .expect("sweep worker pool exited before every campaign finished");
                    if S::ENABLED {
                        total_done += result.result.total();
                    }
                    sink(index, result);
                }
            });
        }

        if S::ENABLED && telemetry.level() > TelemetryLevel::Off {
            telemetry.emit(EventKind::SweepFinished {
                cells: plans.len(),
                experiments: total_done,
                wall_ns: sweep_start.elapsed().as_nanos() as u64,
                cow_chunks_copied: telemetry.counter_value(Metric::CowChunksCopied),
                cow_restore_bytes_saved: telemetry.counter_value(Metric::CowRestoreBytesSaved),
            });
        }
        warnings
    }
}

/// The idle-worker rendezvous of a gated (adaptive) sweep: instead of
/// spin-yielding while a round is in flight, a worker that finds no released
/// batch **parks** on this condvar and is woken when any campaign releases a
/// round or finishes.  The epoch counter closes the classic lost-wakeup race:
/// a worker reads the epoch *before* its (empty) scan, so a release that
/// lands between the scan and the park bumps the epoch and the park returns
/// immediately.  A timeout backstops the protocol — a timed-out worker just
/// rescans.
struct Parking {
    epoch: Mutex<u64>,
    cond: Condvar,
}

/// Backstop for the (unexpected) case of a missed notification; also bounds
/// how long workers linger after the last campaign finishes.
const PARK_TIMEOUT: Duration = Duration::from_millis(50);

impl Parking {
    fn new() -> Parking {
        Parking {
            epoch: Mutex::new(0),
            cond: Condvar::new(),
        }
    }

    /// The current epoch; read it *before* scanning for work.
    fn epoch(&self) -> u64 {
        *self.epoch.lock().expect("sweep parking lock poisoned")
    }

    /// Wake every parked worker (work may have been released).
    fn bump(&self) {
        *self.epoch.lock().expect("sweep parking lock poisoned") += 1;
        self.cond.notify_all();
    }

    /// Sleep until the epoch moves past `seen` or the backstop timeout
    /// elapses.  Returns whether a bump woke us (false = timeout).
    fn park(&self, seen: u64) -> bool {
        let guard = self.epoch.lock().expect("sweep parking lock poisoned");
        if *guard != seen {
            return true;
        }
        let (guard, _) = self
            .cond
            .wait_timeout(guard, PARK_TIMEOUT)
            .expect("sweep parking lock poisoned");
        *guard != seen
    }
}

/// Worker `t`'s loop: drain the home campaign `t % n`, then steal whole
/// batches from the other campaigns (round-robin scan from home).  In a
/// gated (adaptive) sweep, a worker that finds nothing to do **parks** on
/// the sweep condvar while any campaign is still live — an adaptive campaign
/// whose released batches are all claimed will release its next round (or
/// finish) when the in-flight ones land, and the boundary worker wakes the
/// pool.  In a fixed-n sweep every batch is released up front, so an empty
/// scan means the worker is done.
#[allow(clippy::too_many_arguments)]
fn worker<S: TelemetrySink>(
    t: usize,
    plans: &[Plan],
    units: &[SweepUnit<'_>],
    keep_records: bool,
    gated: bool,
    live_plans: &AtomicUsize,
    parking: &Parking,
    telemetry: &S,
    tx: &mpsc::Sender<(usize, SweepCampaignResult)>,
) {
    let n = plans.len();
    if n == 0 {
        return;
    }
    let home = t % n;
    loop {
        // Read the epoch *before* scanning: a round released between an
        // empty scan and the park bumps it, so the park returns immediately.
        let epoch = parking.epoch();
        let mut progressed = false;
        for offset in 0..n {
            let index = (home + offset) % n;
            let plan = &plans[index];
            if let Some(b) = plan.take_batch() {
                run_batch(
                    t,
                    plan,
                    index,
                    index != home,
                    b,
                    &units[plan.unit],
                    keep_records,
                    live_plans,
                    parking,
                    telemetry,
                    tx,
                );
                progressed = true;
                break;
            }
        }
        if !progressed {
            if !gated || live_plans.load(Ordering::Acquire) == 0 {
                return;
            }
            if S::ENABLED {
                let idle_start = Instant::now();
                let woken = parking.park(epoch);
                telemetry.worker_idle(t, idle_start.elapsed().as_nanos() as u64, woken);
            } else {
                parking.park(epoch);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_batch<S: TelemetrySink>(
    t: usize,
    plan: &Plan,
    index: usize,
    stolen: bool,
    b: usize,
    unit: &SweepUnit<'_>,
    keep_records: bool,
    live_plans: &AtomicUsize,
    parking: &Parking,
    telemetry: &S,
    tx: &mpsc::Sender<(usize, SweepCampaignResult)>,
) {
    let (start, end) = plan.spans[b];
    let batch_start = S::ENABLED.then(Instant::now);
    // Per-experiment instrumentation (latency `Instant` pair, per-experiment
    // sink calls) only at the Full level.  Everything below Full runs the
    // shared non-generic hot loop and reports one bulk tally per batch: the
    // experiment loop inlines the VM, and duplicating it per sink
    // monomorphization measurably de-optimizes the telemetered copy.
    let out = if S::ENABLED && telemetry.level() == TelemetryLevel::Full {
        run_span_timed(plan, index, b, unit, keep_records, telemetry)
    } else {
        run_span(plan, b, unit, keep_records)
    };
    if S::ENABLED && telemetry.level() != TelemetryLevel::Full {
        telemetry.experiment_batch(index, &out.counts);
    }
    let batch_counts = out.counts;
    let batch_n = u64::from(end - start);
    *plan.slots[b].lock().expect("sweep batch slot poisoned") = Some(out);
    if S::ENABLED {
        let wall_ns = batch_start.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
        telemetry.worker_batch(t, batch_n, wall_ns, stolen);
        telemetry.emit(EventKind::BatchDone {
            cell: index,
            batch: b,
            experiments: batch_n,
            counts: batch_counts,
            wall_ns,
            worker: t,
            stolen,
        });
    }
    // Exactly one worker observes each round boundary: `fetch_add` hands out
    // unique completion counts, and `released` only moves when the boundary
    // worker advances it below.
    let done = plan.completed.fetch_add(1, Ordering::AcqRel) + 1;
    if done != plan.released.load(Ordering::Acquire) {
        return;
    }
    let round = plan
        .round_batch_ends
        .iter()
        .position(|&e| e == done)
        .expect("released always equals a round boundary");
    let last_round = round + 1 == plan.round_batch_ends.len();
    // The merged counts feed both the stop rule and the telemetry round
    // report; compute them once, and only when someone needs them.
    let merged =
        (!last_round || (S::ENABLED && plan.precision.is_some())).then(|| plan.merged_counts(done));
    let finished = last_round
        || plan
            .precision
            .as_ref()
            .expect("fixed-n campaigns have exactly one round")
            .satisfied(
                merged
                    .as_ref()
                    .expect("merged counts computed for gated rounds"),
            );
    if S::ENABLED && plan.precision.is_some() {
        if let (Some(merged), Some(precision)) = (merged.as_ref(), plan.precision.as_ref()) {
            let (sdc_hw, det_hw) = precision.half_widths(merged);
            telemetry.add(Metric::RoundsCompleted, 1);
            telemetry.cell_status(index, round as u32 + 1, sdc_hw, det_hw, false);
            telemetry.emit(EventKind::RoundDone {
                cell: index,
                round: round as u32 + 1,
                experiments: merged.total(),
                sdc_half_width_pct: sdc_hw,
                detection_half_width_pct: det_hw,
                stopped: finished,
            });
        }
    }
    if finished {
        let rounds = if plan.precision.is_some() {
            round as u32 + 1
        } else {
            0
        };
        let result = plan.finalize(keep_records, done, round as u32 + 1);
        if S::ENABLED {
            telemetry.add(Metric::CellsFinished, 1);
            telemetry.cell_status(index, rounds, f64::NAN, f64::NAN, true);
            telemetry.emit(EventKind::CellFinished {
                cell: index,
                experiments: result.result.total(),
                counts: result.result.counts,
                rounds,
            });
        }
        let _ = tx.send((index, result));
        live_plans.fetch_sub(1, Ordering::AcqRel);
    } else {
        plan.released
            .store(plan.round_batch_ends[round + 1], Ordering::Release);
    }
    // Wake parked workers: either new batches were released or this campaign
    // finished (and idle workers may now be able to exit).
    parking.bump();
}

/// Convenience used by [`Campaign`]: run one campaign as a single-cell sweep.
pub(crate) fn run_single(
    code: &CompiledModule,
    golden: &GoldenRun,
    spec: &CampaignSpec,
    store: Option<&CheckpointStore>,
    precision: Option<Precision>,
) -> CampaignResult {
    run_single_with(code, golden, spec, store, precision, &NoopSink)
}

/// [`run_single`] with a telemetry sink threaded through the executor.
pub(crate) fn run_single_with<S: TelemetrySink>(
    code: &CompiledModule,
    golden: &GoldenRun,
    spec: &CampaignSpec,
    store: Option<&CheckpointStore>,
    precision: Option<Precision>,
    telemetry: &S,
) -> CampaignResult {
    let units = [SweepUnit {
        code,
        golden,
        store,
    }];
    let campaigns = [SweepCampaign {
        unit: 0,
        spec: *spec,
    }];
    let config = SweepConfig {
        threads: spec.threads,
        precision,
        ..SweepConfig::default()
    };
    let mut out = None;
    Sweep::run_streamed_with(&units, &campaigns, &config, telemetry, |_, result| {
        out = Some(result.result);
    });
    out.expect("single-campaign sweep produced no result")
}

#[cfg(test)]
mod tests {
    use crate::campaign::Campaign;

    use super::*;
    use crate::experiment::{Experiment, ExperimentSpec};
    use crate::fault_model::{FaultModel, WinSize};
    use crate::replay::{CheckpointConfig, CheckpointStore};
    use crate::technique::Technique;
    use mbfi_ir::{Module, ModuleBuilder, Type};

    fn workload(n: i64) -> Module {
        let mut mb = ModuleBuilder::new("w");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let data = f.alloca(Type::I64, 16i64);
            f.counted_loop(Type::I64, 0i64, n, |f, i| {
                let slot = f.urem(Type::I64, i, 16i64);
                let v = f.mul(Type::I64, i, 5i64);
                f.store_elem(Type::I64, data, slot, v);
            });
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 16i64, |f, i| {
                let v = f.load_elem(Type::I64, data, i);
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, v);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    struct Fixture {
        code: CompiledModule,
        golden: GoldenRun,
        store: Option<CheckpointStore>,
    }

    fn fixture(n: i64, with_store: bool) -> Fixture {
        let module = workload(n);
        let code = CompiledModule::lower(&module);
        let golden = GoldenRun::capture_compiled(&code).unwrap();
        let store = with_store.then(|| {
            CheckpointStore::capture_compiled(&code, &golden, CheckpointConfig::with_interval(25))
                .unwrap()
        });
        Fixture {
            code,
            golden,
            store,
        }
    }

    fn grid_specs(experiments: usize) -> Vec<CampaignSpec> {
        let mut out = Vec::new();
        for technique in Technique::ALL {
            for model in [
                FaultModel::single_bit(),
                FaultModel::multi_bit(3, WinSize::Fixed(0)),
                FaultModel::multi_bit(4, WinSize::Random { lo: 1, hi: 12 }),
            ] {
                out.push(CampaignSpec {
                    technique,
                    model,
                    experiments,
                    seed: 0x5EE9,
                    hang_factor: 8,
                    threads: 1,
                });
            }
        }
        out
    }

    #[test]
    fn sweep_matches_serial_campaigns_per_cell() {
        let fixtures = [fixture(48, false), fixture(96, true)];
        let units: Vec<SweepUnit<'_>> = fixtures
            .iter()
            .map(|f| SweepUnit {
                code: &f.code,
                golden: &f.golden,
                store: f.store.as_ref(),
            })
            .collect();
        let campaigns: Vec<SweepCampaign> = (0..units.len())
            .flat_map(|unit| {
                grid_specs(40)
                    .into_iter()
                    .map(move |spec| SweepCampaign { unit, spec })
            })
            .collect();
        let report = Sweep::run(&units, &campaigns, &SweepConfig::default());
        assert_eq!(report.results.len(), campaigns.len());
        for (cell, got) in campaigns.iter().zip(&report.results) {
            let f = &fixtures[cell.unit];
            let serial = Campaign::run_compiled(&f.code, &f.golden, &cell.spec);
            assert_eq!(
                got.result, serial,
                "sweep cell diverged from the serial campaign runner"
            );
        }
    }

    #[test]
    fn sweep_is_invariant_across_threads_and_batch_sizes() {
        let f = fixture(64, true);
        let units = [SweepUnit {
            code: &f.code,
            golden: &f.golden,
            store: f.store.as_ref(),
        }];
        let campaigns: Vec<SweepCampaign> = grid_specs(30)
            .into_iter()
            .map(|spec| SweepCampaign { unit: 0, spec })
            .collect();
        let reference = Sweep::run(
            &units,
            &campaigns,
            &SweepConfig {
                threads: 1,
                batch_size: 1,
                keep_records: true,
                precision: None,
            },
        );
        for threads in [2, 4, 8] {
            for batch_size in [0, 3, 64] {
                let other = Sweep::run(
                    &units,
                    &campaigns,
                    &SweepConfig {
                        threads,
                        batch_size,
                        keep_records: true,
                        precision: None,
                    },
                );
                assert_eq!(
                    reference, other,
                    "sweep changed with threads={threads} batch={batch_size}"
                );
            }
        }
    }

    #[test]
    fn records_match_per_experiment_serial_execution() {
        let f = fixture(48, false);
        let units = [SweepUnit {
            code: &f.code,
            golden: &f.golden,
            store: None,
        }];
        let spec = CampaignSpec {
            technique: Technique::InjectOnWrite,
            model: FaultModel::multi_bit(3, WinSize::Fixed(2)),
            experiments: 25,
            seed: 0xACE,
            hang_factor: 8,
            threads: 1,
        };
        let report = Sweep::run(
            &units,
            &[SweepCampaign { unit: 0, spec }],
            &SweepConfig {
                threads: 4,
                batch_size: 4,
                keep_records: true,
                precision: None,
            },
        );
        let got = &report.results[0];
        assert_eq!(got.records.len(), spec.experiments);
        let (validated, _) = spec.validate();
        for (i, exp_spec) in ExperimentSpec::sample_campaign(&validated, &f.golden)
            .iter()
            .enumerate()
        {
            let serial = Experiment::run_compiled(&f.code, &f.golden, exp_spec, None);
            assert_eq!(
                got.records[i], serial.injections,
                "records of experiment {i} diverged"
            );
        }
    }

    #[test]
    fn warnings_are_carried_per_campaign_and_deduped_per_sweep() {
        let f = fixture(32, false);
        let units = [SweepUnit {
            code: &f.code,
            golden: &f.golden,
            store: None,
        }];
        let bad = CampaignSpec {
            experiments: 4,
            hang_factor: 0,
            threads: 1,
            ..CampaignSpec::default()
        };
        let ok = CampaignSpec {
            experiments: 4,
            hang_factor: 8,
            threads: 1,
            ..CampaignSpec::default()
        };
        let cells = [
            SweepCampaign { unit: 0, spec: bad },
            SweepCampaign { unit: 0, spec: ok },
            SweepCampaign { unit: 0, spec: bad },
        ];
        let report = Sweep::run(&units, &cells, &SweepConfig::default());
        let expected = CampaignWarning::HangFactorRaised {
            requested: 0,
            used: 2,
        };
        assert_eq!(report.warnings, vec![expected]);
        assert_eq!(report.results[0].result.warnings, vec![expected]);
        assert!(report.results[1].result.warnings.is_empty());
        assert_eq!(report.results[2].result.warnings, vec![expected]);
        assert_eq!(report.results[0].result.spec.hang_factor, 2);
    }

    /// A straight-line register-only workload: no loops (no hangs), no
    /// memory (no traps), and the only output is a printed *immediate* (not
    /// a register, so not an injection candidate).  Every candidate feeds a
    /// dead arithmetic chain, so every injection outcome is Benign — the
    /// extreme first round of the Wald-degeneracy regression below.
    fn all_benign_workload() -> Module {
        let mut mb = ModuleBuilder::new("benign");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let mut v = f.add(Type::I64, 1i64, 2i64);
            for k in 0..6i64 {
                v = f.mul(Type::I64, v, k + 3);
                v = f.add(Type::I64, v, k);
            }
            f.print_i64(7i64);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn adaptive_sweep_is_invariant_across_threads_and_batch_sizes() {
        use crate::adaptive::Precision;
        let f = fixture(64, true);
        let units = [SweepUnit {
            code: &f.code,
            golden: &f.golden,
            store: f.store.as_ref(),
        }];
        let campaigns: Vec<SweepCampaign> = grid_specs(0)
            .into_iter()
            .map(|spec| SweepCampaign { unit: 0, spec })
            .collect();
        let precision = Some(Precision {
            target_half_width_pct: 12.0,
            min_experiments: 10,
            max_experiments: 60,
            ..Precision::default()
        });
        let reference = Sweep::run(
            &units,
            &campaigns,
            &SweepConfig {
                threads: 1,
                batch_size: 1,
                keep_records: true,
                precision,
            },
        );
        for r in &reference.results {
            let status = r.result.adaptive.expect("adaptive sweeps report status");
            assert_eq!(status.experiments(), r.result.total());
            assert_eq!(r.result.spec.experiments as u64, r.result.total());
            assert!(r.result.total() >= 10 && r.result.total() <= 60);
            assert!(status.reached_target || r.result.total() == 60);
            assert_eq!(r.records.len(), r.result.total() as usize);
        }
        // Scheduling freedom — thread count, batch size, steal schedule —
        // must not move any stop decision.
        for threads in [2usize, 4, 8] {
            for batch_size in [0usize, 1, 3, 64] {
                let other = Sweep::run(
                    &units,
                    &campaigns,
                    &SweepConfig {
                        threads,
                        batch_size,
                        keep_records: true,
                        precision,
                    },
                );
                assert_eq!(
                    reference, other,
                    "adaptive sweep changed with threads={threads} batch={batch_size}"
                );
            }
        }
    }

    /// An adaptive cell's result equals a fixed-n campaign of exactly the
    /// realized length — the executed set is a pure experiment-index prefix,
    /// with or without a checkpoint store.
    #[test]
    fn adaptive_results_equal_fixed_n_of_realized_length() {
        use crate::adaptive::Precision;
        let f = fixture(96, true);
        let units = [SweepUnit {
            code: &f.code,
            golden: &f.golden,
            store: f.store.as_ref(),
        }];
        let spec = CampaignSpec {
            technique: Technique::InjectOnRead,
            model: FaultModel::multi_bit(3, WinSize::Fixed(2)),
            experiments: 0, // ignored in adaptive mode
            seed: 0xADA7,
            hang_factor: 8,
            threads: 1,
        };
        let report = Sweep::run(
            &units,
            &[SweepCampaign { unit: 0, spec }],
            &SweepConfig {
                threads: 4,
                precision: Some(Precision {
                    target_half_width_pct: 15.0,
                    min_experiments: 12,
                    max_experiments: 80,
                    ..Precision::default()
                }),
                ..SweepConfig::default()
            },
        );
        let adaptive = &report.results[0].result;
        let realized = adaptive.total() as usize;
        let fixed = Campaign::run_compiled(
            &f.code,
            &f.golden,
            &CampaignSpec {
                experiments: realized,
                ..spec
            },
        );
        assert_eq!(adaptive.counts, fixed.counts);
        assert_eq!(adaptive.activation_histogram, fixed.activation_histogram);
        assert_eq!(
            adaptive.crash_activation_histogram,
            fixed.crash_activation_histogram
        );
    }

    /// Regression for the Wald degeneracy: on an all-benign workload the
    /// first round has 0 SDC and 0 Detection successes, so the Wald
    /// half-widths are exactly 0 and stopping fires right at
    /// `min_experiments` for ANY target.  The Wilson default keeps sampling
    /// until n genuinely supports the target.
    #[test]
    fn extreme_first_round_does_not_stop_a_wilson_cell() {
        use crate::adaptive::Precision;
        use crate::stats::IntervalMethod;
        let module = all_benign_workload();
        let code = CompiledModule::lower(&module);
        let golden = GoldenRun::capture_compiled(&code).unwrap();
        let units = [SweepUnit {
            code: &code,
            golden: &golden,
            store: None,
        }];
        let spec = CampaignSpec {
            technique: Technique::InjectOnRead,
            model: FaultModel::single_bit(),
            experiments: 0,
            seed: 7,
            hang_factor: 8,
            threads: 1,
        };
        let run = |interval| {
            let report = Sweep::run(
                &units,
                &[SweepCampaign { unit: 0, spec }],
                &SweepConfig {
                    precision: Some(Precision {
                        target_half_width_pct: 1.0,
                        min_experiments: 20,
                        max_experiments: 400,
                        interval,
                    }),
                    ..SweepConfig::default()
                },
            );
            report.results[0].result.clone()
        };
        let wald = run(IntervalMethod::Wald);
        assert_eq!(wald.counts.benign, wald.counts.total());
        assert_eq!(
            wald.counts.total(),
            20,
            "degenerate Wald interval stops at the first possible point"
        );
        let wilson = run(IntervalMethod::Wilson);
        // Wilson at 0/n reaches a 1-point half-width around n ≈ 189 — far
        // past the lucky first round, and before the 400 budget.
        assert!(
            wilson.counts.total() > 100,
            "Wilson must not stop on the extreme first round (stopped at {})",
            wilson.counts.total()
        );
        assert!(wilson.counts.total() < 400);
        let status = wilson.adaptive.unwrap();
        assert!(status.reached_target);
        assert!(status.realized_half_width_pct() <= 1.0);
    }

    #[test]
    fn zero_experiment_campaigns_produce_empty_results() {
        let f = fixture(32, false);
        let units = [SweepUnit {
            code: &f.code,
            golden: &f.golden,
            store: None,
        }];
        let cells = [SweepCampaign {
            unit: 0,
            spec: CampaignSpec {
                experiments: 0,
                threads: 1,
                ..CampaignSpec::default()
            },
        }];
        let report = Sweep::run(&units, &cells, &SweepConfig::default());
        assert_eq!(report.results[0].result.total(), 0);
        assert_eq!(report.results[0].result.activation_histogram, vec![0, 0]);
    }

    #[test]
    fn streamed_results_arrive_once_per_campaign() {
        let f = fixture(48, false);
        let units = [SweepUnit {
            code: &f.code,
            golden: &f.golden,
            store: None,
        }];
        let cells: Vec<SweepCampaign> = grid_specs(12)
            .into_iter()
            .map(|spec| SweepCampaign { unit: 0, spec })
            .collect();
        let mut seen = vec![0u32; cells.len()];
        Sweep::run_streamed(&units, &cells, &SweepConfig::default(), |index, result| {
            seen[index] += 1;
            assert_eq!(result.result.total(), 12);
        });
        assert!(seen.iter().all(|&n| n == 1));
    }
}
