//! The shared scheduling core of both sweep drivers: per-campaign execution
//! plans, batch partial results and the (deliberately non-generic) hot
//! experiment loop.
//!
//! A [`Plan`] is driver-agnostic — the scoped driver
//! ([`Sweep::run_streamed_with`](super::Sweep::run_streamed_with)) and the
//! persistent [`SweepEngine`](super::SweepEngine) both claim batches through
//! [`Plan::take_batch`], execute them through [`run_span`] /
//! [`run_span_timed`], and fold the partials through [`Plan::finalize`].
//! Everything that makes results byte-identical across thread counts, batch
//! sizes and steal schedules lives here, so the two drivers cannot diverge on
//! what a cell computes — only on *when* and *by whom* each batch runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::adaptive::Precision;
use crate::campaign::{CampaignResult, CampaignSpec, CampaignWarning};
use crate::experiment::{Experiment, ExperimentResult, ExperimentSpec};
use crate::injector::InjectionRecord;
use crate::outcome::{Outcome, OutcomeCounts};
use crate::space::{ErrorSpace, REGISTER_BITS};
use crate::telemetry::TelemetrySink;

use super::{SweepCampaign, SweepCampaignResult, SweepUnit};

/// One campaign's execution plan: the validated spec, the experiment
/// execution order, the batch deque (an atomic cursor — batches are taken
/// from the front in index order; which *worker* takes each batch is the
/// only scheduling freedom, and results do not depend on it) and, for
/// adaptive campaigns, the round structure gating how many batches are
/// released.
///
/// Experiment specs are *not* retained: each is a pure function of
/// `(campaign seed, experiment index)` and is re-sampled (a few RNG draws)
/// by the worker that runs its batch, so a whole-grid sweep holds O(grid
/// cells), not O(grid experiments), between batches.
pub(crate) struct Plan {
    pub(crate) unit: usize,
    pub(crate) spec: CampaignSpec,
    pub(crate) warnings: Vec<CampaignWarning>,
    /// Execution order as original experiment indices, sorted by injection
    /// depth when the unit has a checkpoint store so the experiments of one
    /// batch restore neighbouring checkpoints; `None` = identity order.
    /// Adaptive campaigns sort within each round (never across a round
    /// boundary) so the executed *set* stays a pure index prefix.
    order: Option<Vec<u32>>,
    /// Per-batch experiment spans `[start, end)`; batches never straddle a
    /// round boundary.
    pub(crate) spans: Vec<(u32, u32)>,
    /// Cumulative batch count at each round boundary; fixed-n campaigns have
    /// exactly one "round" covering everything.
    pub(crate) round_batch_ends: Vec<usize>,
    /// The normalized precision spec; `None` = fixed-n.
    pub(crate) precision: Option<Precision>,
    pub(crate) max_hist: usize,
    cursor: AtomicUsize,
    /// Batches released so far; only ever advanced (to the next entry of
    /// `round_batch_ends`) by the unique worker that completes a round.
    pub(crate) released: AtomicUsize,
    pub(crate) completed: AtomicUsize,
    pub(crate) slots: Vec<Mutex<Option<BatchOut>>>,
}

/// The partial result of one batch.
pub(crate) struct BatchOut {
    pub(crate) counts: OutcomeCounts,
    activation: Vec<u64>,
    crash_activation: Vec<u64>,
    records: Vec<(u32, Vec<InjectionRecord>)>,
}

impl Plan {
    pub(crate) fn new(
        campaign: &SweepCampaign,
        unit: &SweepUnit<'_>,
        batch_size: usize,
        auto_batch: usize,
        precision: Option<Precision>,
    ) -> Plan {
        let (mut spec, mut warnings) = campaign.spec.validate();
        let precision = precision.map(|p| p.normalized());
        // Round boundaries in experiments.  Fixed-n: one round = the whole
        // budget.  Adaptive: the budget is `max_experiments` and the spec's
        // own experiment count is ignored.
        let round_ends: Vec<usize> = match &precision {
            Some(p) => p.round_ends(),
            None => vec![spec.experiments],
        };
        let budget = *round_ends.last().expect("round_ends is never empty");
        spec.experiments = budget;
        // A budget beyond the single bit-flip error space means sampling with
        // replacement cannot help further — possible for tiny inputs under an
        // adaptive `max_experiments`.  Surface it once per campaign.
        if spec.model.is_single() {
            let space = ErrorSpace::new(unit.golden.candidates(spec.technique), REGISTER_BITS)
                .single_bit_size();
            if space > 0 && budget as u128 > space {
                warnings.push(CampaignWarning::SamplingSaturated {
                    budget: budget as u64,
                    space: space.min(u128::from(u64::MAX)) as u64,
                });
            }
        }
        let batch = if batch_size != 0 {
            batch_size
        } else {
            match &precision {
                // Independent of the thread count by construction: the batch
                // cut decides round membership, so it must be a pure function
                // of the precision spec.
                Some(p) => p.round_step().div_ceil(4).clamp(1, 64),
                None => auto_batch,
            }
        };
        // With a store, order experiments by injection depth (the sampled
        // specs are transient here — only the ordering survives).  Adaptive
        // campaigns sort each round's index range separately so that the set
        // of executed experiments after r rounds is exactly `[0,
        // round_ends[r-1])` regardless of the store.
        let order = unit.store.is_some().then(|| {
            // `spec.experiments` already holds the full budget (set above).
            let keyed: Vec<u64> = ExperimentSpec::sample_campaign(&spec, unit.golden)
                .into_iter()
                .map(|s| s.first_target)
                .collect();
            let mut order: Vec<u32> = (0..budget as u32).collect();
            let mut start = 0usize;
            for &end in &round_ends {
                order[start..end].sort_by_key(|&i| keyed[i as usize]);
                start = end;
            }
            order
        });
        // Cut each round into batches; a batch never straddles a round
        // boundary, so the released prefix is always a whole number of
        // rounds' worth of experiments.
        let mut spans: Vec<(u32, u32)> = Vec::new();
        let mut round_batch_ends = Vec::with_capacity(round_ends.len());
        let mut start = 0usize;
        for &end in &round_ends {
            let mut s = start;
            while s < end {
                let e = (s + batch).min(end);
                spans.push((s as u32, e as u32));
                s = e;
            }
            round_batch_ends.push(spans.len());
            start = end;
        }
        let batches = spans.len();
        let mut slots = Vec::with_capacity(batches);
        slots.resize_with(batches, || Mutex::new(None));
        Plan {
            unit: campaign.unit,
            spec,
            warnings,
            order,
            spans,
            released: AtomicUsize::new(*round_batch_ends.first().unwrap_or(&0)),
            round_batch_ends,
            precision,
            max_hist: spec.model.max_mbf as usize + 1,
            cursor: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            slots,
        }
    }

    pub(crate) fn batches(&self) -> usize {
        self.slots.len()
    }

    /// Take the next *released* batch index off the front of this campaign's
    /// deque.  `None` can mean "finished" or "waiting for the current round
    /// to complete" — callers cannot tell and do not need to.
    pub(crate) fn take_batch(&self) -> Option<usize> {
        loop {
            let released = self.released.load(Ordering::Acquire);
            let cur = self.cursor.load(Ordering::Relaxed);
            if cur >= released {
                return None;
            }
            if self
                .cursor
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some(cur);
            }
        }
    }

    pub(crate) fn empty_result(&self) -> SweepCampaignResult {
        SweepCampaignResult {
            result: CampaignResult {
                spec: self.spec,
                counts: OutcomeCounts::default(),
                activation_histogram: vec![0; self.max_hist],
                crash_activation_histogram: vec![0; self.max_hist],
                warnings: self.warnings.clone(),
                adaptive: None,
            },
            records: Vec::new(),
        }
    }

    /// Merged outcome counts of the first `batches` batch slots, in index
    /// order (all of them are complete when this is called).
    pub(crate) fn merged_counts(&self, batches: usize) -> OutcomeCounts {
        let mut counts = OutcomeCounts::default();
        for slot in &self.slots[..batches] {
            let guard = slot.lock().expect("sweep batch slot poisoned");
            let out = guard
                .as_ref()
                .expect("sweep round evaluated with a missing batch");
            counts += out.counts;
        }
        counts
    }

    /// Fold the first `batches` completed batches, in batch-index order, into
    /// the final result.  Counts and histograms are commutative sums; records
    /// go back to their original experiment index.  `rounds` is the number of
    /// completed rounds (for the adaptive status).
    pub(crate) fn finalize(
        &self,
        keep_records: bool,
        batches: usize,
        rounds: u32,
    ) -> SweepCampaignResult {
        let realized = batches
            .checked_sub(1)
            .map(|last| self.spans[last].1 as usize)
            .unwrap_or(0);
        let mut counts = OutcomeCounts::default();
        let mut activation = vec![0u64; self.max_hist];
        let mut crash_activation = vec![0u64; self.max_hist];
        let mut records: Vec<Vec<InjectionRecord>> = if keep_records {
            vec![Vec::new(); realized]
        } else {
            Vec::new()
        };
        for slot in &self.slots[..batches] {
            let out = slot
                .lock()
                .expect("sweep batch slot poisoned")
                .take()
                .expect("sweep campaign finalized with a missing batch");
            counts += out.counts;
            for (i, v) in out.activation.iter().enumerate() {
                activation[i] += v;
            }
            for (i, v) in out.crash_activation.iter().enumerate() {
                crash_activation[i] += v;
            }
            for (orig, recs) in out.records {
                records[orig as usize] = recs;
            }
        }
        // The result's spec records what actually ran: for adaptive
        // campaigns, the realized experiment count.
        let spec = CampaignSpec {
            experiments: realized,
            ..self.spec
        };
        SweepCampaignResult {
            result: CampaignResult {
                spec,
                adaptive: self.precision.as_ref().map(|p| p.status(&counts, rounds)),
                counts,
                activation_histogram: activation,
                crash_activation_histogram: crash_activation,
                warnings: self.warnings.clone(),
            },
            records,
        }
    }
}

/// The hot experiment loop of one batch, deliberately **not** generic over
/// the telemetry sink: this function (and [`Experiment::run_compiled`]
/// under it) compiles exactly once, so a telemetered sweep at `Off` or
/// `Counters` executes the same machine code as an untelemetered one —
/// counters are tallied in bulk afterwards via
/// [`TelemetrySink::experiment_batch`].
pub(crate) fn run_span(
    plan: &Plan,
    b: usize,
    unit: &SweepUnit<'_>,
    keep_records: bool,
) -> BatchOut {
    let (start, end) = plan.spans[b];
    let mut out = BatchOut {
        counts: OutcomeCounts::default(),
        activation: vec![0; plan.max_hist],
        crash_activation: vec![0; plan.max_hist],
        records: Vec::new(),
    };
    for k in start..end {
        let orig = match &plan.order {
            Some(order) => order[k as usize],
            None => k,
        };
        let spec = ExperimentSpec::sample(
            plan.spec.technique,
            plan.spec.model,
            unit.golden,
            plan.spec.seed,
            orig as u64,
            plan.spec.hang_factor,
        );
        let result = Experiment::run_compiled(unit.code, unit.golden, &spec, unit.store);
        record_result(plan, &mut out, keep_records, orig, result);
    }
    out
}

/// The Full-level variant of [`run_span`]: each experiment is individually
/// timed into the latency histogram and reported through
/// [`TelemetrySink::experiment`], and checkpoint-restore savings are
/// published per experiment.  This per-experiment cost is exactly what the
/// Counters level avoids.
pub(crate) fn run_span_timed<S: TelemetrySink>(
    plan: &Plan,
    index: usize,
    b: usize,
    unit: &SweepUnit<'_>,
    keep_records: bool,
    telemetry: &S,
) -> BatchOut {
    let (start, end) = plan.spans[b];
    let mut out = BatchOut {
        counts: OutcomeCounts::default(),
        activation: vec![0; plan.max_hist],
        crash_activation: vec![0; plan.max_hist],
        records: Vec::new(),
    };
    for k in start..end {
        let orig = match &plan.order {
            Some(order) => order[k as usize],
            None => k,
        };
        let spec = ExperimentSpec::sample(
            plan.spec.technique,
            plan.spec.model,
            unit.golden,
            plan.spec.seed,
            orig as u64,
            plan.spec.hang_factor,
        );
        let t0 = Instant::now();
        let result =
            Experiment::run_compiled_with(unit.code, unit.golden, &spec, unit.store, telemetry);
        let latency_ns = t0.elapsed().as_nanos() as u64;
        telemetry.experiment(index, result.outcome, latency_ns.max(1));
        record_result(plan, &mut out, keep_records, orig, result);
    }
    out
}

/// Fold one experiment's result into a batch partial (shared tail of
/// [`run_span`] / [`run_span_timed`]).
fn record_result(
    plan: &Plan,
    out: &mut BatchOut,
    keep_records: bool,
    orig: u32,
    result: ExperimentResult,
) {
    out.counts.record(result.outcome);
    let slot = (result.activated as usize).min(plan.max_hist - 1);
    out.activation[slot] += 1;
    if result.outcome == Outcome::DetectedHwException {
        out.crash_activation[slot] += 1;
    }
    if keep_records {
        out.records.push((orig, result.injections));
    }
}
