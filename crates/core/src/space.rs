//! Error-space size computations (§II-D of the paper).
//!
//! For a workload with `d` candidate dynamic instructions and registers of
//! `b` bits, the single bit-flip error space has `d · b` elements.  Allowing
//! up to `m` flips per run blows the space up to `Σ_{k=2}^{m} (d·b)^k`
//! (the paper's formula), which is why clustering and pruning are needed.
//! Because these numbers overflow `u64` for realistic workloads, they are
//! reported in log10 form as well.

/// Register width (`b`) this reproduction's estimates use: every workload
/// register is an I64.
pub const REGISTER_BITS: u32 = 64;

/// Error-space sizes for one workload / technique.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSpace {
    /// Number of candidate dynamic instructions (`d`).
    pub candidates: u64,
    /// Register width used for the estimate (`b`).
    pub bits_per_register: u32,
}

impl ErrorSpace {
    /// Create an error-space descriptor.
    pub fn new(candidates: u64, bits_per_register: u32) -> ErrorSpace {
        ErrorSpace {
            candidates,
            bits_per_register,
        }
    }

    /// Size of the single bit-flip error space, `d · b`.
    pub fn single_bit_size(&self) -> u128 {
        self.candidates as u128 * self.bits_per_register as u128
    }

    /// `log10` of the single bit-flip space size.
    pub fn single_bit_log10(&self) -> f64 {
        (self.single_bit_size() as f64).log10()
    }

    /// `log10` of the multi bit-flip space size for up to `max_mbf` flips,
    /// `Σ_{k=2}^{m} (d·b)^k ≈ (d·b)^m` for any realistic `d·b`.
    pub fn multi_bit_log10(&self, max_mbf: u32) -> f64 {
        let base = self.single_bit_size() as f64;
        if base <= 1.0 || max_mbf < 2 {
            return 0.0;
        }
        // log10 of the closed-form geometric sum
        //   sum_{k=2}^{m} base^k = base^m * (1 - base^{-(m-1)}) / (1 - 1/base),
        // split so each factor stays in f64 range: the dominant term in log
        // space plus both correction factors.  The `(1 - base^{-(m-1)})`
        // numerator matters for tiny `d·b` (it cancels most of the
        // denominator's boost when the sum has few terms) and vanishes for
        // realistic spaces.
        let log_largest = (max_mbf as f64) * base.log10();
        let numerator = (1.0 - base.powi(-(max_mbf as i32 - 1))).log10();
        let denominator = (1.0 - 1.0 / base).log10();
        log_largest + numerator - denominator
    }

    /// How many orders of magnitude the multi-bit space is larger than the
    /// single-bit space.
    pub fn expansion_orders(&self, max_mbf: u32) -> f64 {
        (self.multi_bit_log10(max_mbf) - self.single_bit_log10()).max(0.0)
    }

    /// Fraction of the single-bit space covered by `experiments` samples,
    /// clamped to 1.0: sampling is with replacement, so more experiments
    /// than space elements (possible for tiny inputs under an adaptive
    /// `max_experiments`) cannot cover more than the whole space.  Campaigns
    /// in that regime carry a
    /// [`crate::CampaignWarning::SamplingSaturated`] warning.
    pub fn sampling_fraction(&self, experiments: u64) -> f64 {
        let size = self.single_bit_size();
        if size == 0 {
            0.0
        } else {
            (experiments as f64 / size as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bit_space_is_d_times_b() {
        let s = ErrorSpace::new(1_000_000, 32);
        assert_eq!(s.single_bit_size(), 32_000_000);
        assert!((s.single_bit_log10() - 7.505).abs() < 1e-3);
    }

    #[test]
    fn multi_bit_space_grows_by_orders_of_magnitude() {
        let s = ErrorSpace::new(10_000, 32);
        let single = s.single_bit_log10();
        let double = s.multi_bit_log10(2);
        let ten = s.multi_bit_log10(10);
        assert!(double > single * 1.9);
        assert!(ten > double);
        assert!(s.expansion_orders(10) > 40.0);
    }

    #[test]
    fn degenerate_spaces_are_safe() {
        let s = ErrorSpace::new(0, 32);
        assert_eq!(s.single_bit_size(), 0);
        assert_eq!(s.multi_bit_log10(5), 0.0);
        assert_eq!(s.sampling_fraction(100), 0.0);
        let s = ErrorSpace::new(100, 32);
        assert_eq!(s.multi_bit_log10(1), 0.0);
    }

    #[test]
    fn sampling_fraction_reflects_campaign_size() {
        let s = ErrorSpace::new(100_000, 64);
        let f = s.sampling_fraction(10_000);
        assert!((f - 10_000.0 / 6_400_000.0).abs() < 1e-12);
    }

    /// Regression: the fraction used to exceed 1.0 when the budget outgrew
    /// the space (`experiments > d·b`), which is possible for tiny inputs
    /// under an adaptive `max_experiments`.
    #[test]
    fn sampling_fraction_clamps_at_the_whole_space() {
        let s = ErrorSpace::new(10, 8); // d·b = 80
        assert_eq!(s.sampling_fraction(80), 1.0);
        assert_eq!(s.sampling_fraction(81), 1.0);
        assert_eq!(s.sampling_fraction(1_000_000), 1.0);
        assert!((s.sampling_fraction(40) - 0.5).abs() < 1e-12);
    }

    /// Regression for the dropped `(1 − base^{−(m−1)})` factor: pin the
    /// formula against the exact `Σ_{k=2}^{m} base^k`, computed in u128, for
    /// every small space `d·b ≤ 64` and every `m ≤ 8`.  The old code
    /// overstated tiny spaces — e.g. `base = 2, m = 2` gave
    /// `log10(4 · 2) = log10(8)` instead of `log10(4)`.
    #[test]
    fn multi_bit_log10_matches_exact_sum_for_small_spaces() {
        for candidates in 1u64..=16 {
            for bits in [1u32, 2, 4] {
                let s = ErrorSpace::new(candidates, bits);
                let base = s.single_bit_size();
                if base <= 1 || base > 64 {
                    continue;
                }
                for m in 2u32..=8 {
                    let exact: u128 = (2..=m).map(|k| base.pow(k)).sum();
                    let expected = (exact as f64).log10();
                    let got = s.multi_bit_log10(m);
                    assert!(
                        (got - expected).abs() < 1e-9,
                        "d·b = {base}, m = {m}: got {got}, exact {expected}"
                    );
                }
            }
        }
        // Spot-check the smallest interesting case end to end.
        let s = ErrorSpace::new(2, 1); // base = 2
        assert!((s.multi_bit_log10(2) - 4f64.log10()).abs() < 1e-12);
        assert!((s.multi_bit_log10(3) - 12f64.log10()).abs() < 1e-12);
    }

    /// For realistic spaces the dropped factor is negligible — the fixed
    /// formula still matches the old `(d·b)^m`-dominated estimate.
    #[test]
    fn multi_bit_log10_is_unchanged_for_realistic_spaces() {
        let s = ErrorSpace::new(1_000_000, 64);
        let m = 10;
        let base = s.single_bit_size() as f64;
        let old = (m as f64) * base.log10() + (1.0 / (1.0 - 1.0 / base)).log10();
        assert!((s.multi_bit_log10(m) - old).abs() < 1e-9);
    }
}
