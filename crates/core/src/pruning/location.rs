//! Pruning layer 3: location sensitivity to multiple bit-flip errors
//! (RQ5, §IV-C3, Fig. 6 and Table IV).
//!
//! For every sampled injection location, a *pair* of experiments is run: a
//! single bit-flip experiment, and a multi-bit experiment (using the
//! worst-case `(max-MBF, win-size)` configuration from Table III) whose
//! *first* flip reuses the same location.  Comparing the two outcomes yields
//! a transition matrix; the two transitions that matter are
//!
//! * **Transition I** (`t_{d→s}`): single-bit Detection, multi-bit SDC, and
//! * **Transition II** (`t_{b→s}`): single-bit Benign, multi-bit SDC,
//!
//! because only those add SDCs beyond the single-bit model.  The paper finds
//! Transition I to be rare, so locations whose single-bit outcome is a
//! Detection (or already an SDC) can be excluded from multi-bit campaigns.

use crate::experiment::{Experiment, ExperimentSpec};
use crate::fault_model::FaultModel;
use crate::golden::GoldenRun;
use crate::outcome::Outcome;
use crate::rng::{Rng, SmallRng};
use crate::technique::Technique;
use mbfi_ir::{CompiledModule, Module};
use std::collections::BTreeMap;

/// Counts of (single-bit outcome → multi-bit outcome) transitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransitionMatrix {
    counts: BTreeMap<(Outcome, Outcome), u64>,
}

impl TransitionMatrix {
    /// Record one paired observation.
    pub fn record(&mut self, single: Outcome, multi: Outcome) {
        *self.counts.entry((single, multi)).or_insert(0) += 1;
    }

    /// Count of a specific transition.
    pub fn count(&self, single: Outcome, multi: Outcome) -> u64 {
        self.counts.get(&(single, multi)).copied().unwrap_or(0)
    }

    /// Total observations whose single-bit outcome was `single`.
    pub fn total_from(&self, single: Outcome) -> u64 {
        self.counts
            .iter()
            .filter(|((s, _), _)| *s == single)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Total observations whose single-bit outcome was any Detection category.
    pub fn total_from_detection(&self) -> u64 {
        Outcome::ALL
            .iter()
            .filter(|o| o.is_detection())
            .map(|o| self.total_from(*o))
            .sum()
    }

    /// Total paired observations.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// `P(multi = to | single = from)`, 0 when no observations.
    pub fn probability(&self, from: Outcome, to: Outcome) -> f64 {
        let total = self.total_from(from);
        if total == 0 {
            0.0
        } else {
            self.count(from, to) as f64 / total as f64
        }
    }

    /// Transition I likelihood: single-bit Detection → multi-bit SDC.
    pub fn transition1(&self) -> f64 {
        let from: u64 = Outcome::ALL
            .iter()
            .filter(|o| o.is_detection())
            .map(|o| self.total_from(*o))
            .sum();
        if from == 0 {
            return 0.0;
        }
        let hits: u64 = Outcome::ALL
            .iter()
            .filter(|o| o.is_detection())
            .map(|o| self.count(*o, Outcome::Sdc))
            .sum();
        hits as f64 / from as f64
    }

    /// Transition II likelihood: single-bit Benign → multi-bit SDC.
    pub fn transition2(&self) -> f64 {
        self.probability(Outcome::Benign, Outcome::Sdc)
    }

    /// Fraction of locations whose single-bit outcome was an SDC or a
    /// Detection — the locations the paper proposes to exclude from
    /// multi-bit campaigns.
    pub fn prunable_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let prunable: u64 = Outcome::ALL
            .iter()
            .filter(|o| o.is_detection() || **o == Outcome::Sdc)
            .map(|o| self.total_from(*o))
            .sum();
        prunable as f64 / total as f64
    }
}

/// Result of a location-sensitivity analysis for one workload / technique.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationAnalysis {
    /// Technique used for both campaigns of every pair.
    pub technique: Technique,
    /// The worst-case multi-bit model used for the second experiment of each pair.
    pub worst_model: FaultModel,
    /// The transition matrix.
    pub matrix: TransitionMatrix,
}

impl LocationAnalysis {
    /// Run `pairs` paired experiments on a workload.
    ///
    /// Each pair shares a first-injection location drawn uniformly from the
    /// golden run's candidate set; the multi-bit experiment uses `worst_model`.
    pub fn run(
        module: &Module,
        golden: &GoldenRun,
        technique: Technique,
        worst_model: FaultModel,
        pairs: usize,
        seed: u64,
        hang_factor: u64,
    ) -> LocationAnalysis {
        // Same floor CampaignSpec::validate enforces for campaigns: below 2x
        // the golden length, slowed-down-but-correct runs read as hangs.
        let hang_factor = hang_factor.max(2);
        let code = CompiledModule::lower(module);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x10CA_7104);
        let candidates = golden.candidates(technique).max(1);
        let mut matrix = TransitionMatrix::default();

        for i in 0..pairs {
            let first_target = rng.gen_range(0..candidates);
            let bit_seed = rng.next_u64();
            let win_value = worst_model.win_size.sample(&mut rng);

            let single_spec = ExperimentSpec {
                technique,
                model: FaultModel::single_bit(),
                first_target,
                win_size_value: 0,
                seed: bit_seed,
                hang_factor,
            };
            let multi_spec = ExperimentSpec {
                technique,
                model: worst_model,
                first_target,
                win_size_value: win_value,
                seed: bit_seed.wrapping_add(i as u64),
                hang_factor,
            };
            let single = Experiment::run_compiled(&code, golden, &single_spec, None);
            let multi = Experiment::run_compiled(&code, golden, &multi_spec, None);
            matrix.record(single.outcome, multi.outcome);
        }

        LocationAnalysis {
            technique,
            worst_model,
            matrix,
        }
    }

    /// Transition I likelihood (Detection → SDC).
    pub fn transition1(&self) -> f64 {
        self.matrix.transition1()
    }

    /// Transition II likelihood (Benign → SDC).
    pub fn transition2(&self) -> f64 {
        self.matrix.transition2()
    }

    /// Fraction of single-bit locations that can be pruned from multi-bit
    /// campaigns (those whose single-bit outcome was SDC or Detection).
    pub fn prunable_fraction(&self) -> f64 {
        self.matrix.prunable_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_model::WinSize;
    use mbfi_ir::{ModuleBuilder, Type};

    #[test]
    fn matrix_counts_and_probabilities() {
        let mut m = TransitionMatrix::default();
        for _ in 0..8 {
            m.record(Outcome::Benign, Outcome::Benign);
        }
        for _ in 0..2 {
            m.record(Outcome::Benign, Outcome::Sdc);
        }
        for _ in 0..9 {
            m.record(Outcome::DetectedHwException, Outcome::DetectedHwException);
        }
        m.record(Outcome::DetectedHwException, Outcome::Sdc);
        for _ in 0..5 {
            m.record(Outcome::Sdc, Outcome::Sdc);
        }

        assert_eq!(m.total(), 25);
        assert_eq!(m.total_from(Outcome::Benign), 10);
        assert_eq!(m.total_from_detection(), 10);
        assert!((m.transition2() - 0.2).abs() < 1e-12);
        assert!((m.transition1() - 0.1).abs() < 1e-12);
        // Prunable: Detection (10) + single-bit SDC (5) out of 25.
        assert!((m.prunable_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(m.count(Outcome::Benign, Outcome::Hang), 0);
        assert_eq!(m.probability(Outcome::Hang, Outcome::Sdc), 0.0);
    }

    #[test]
    fn paired_analysis_runs_on_a_real_workload() {
        let mut mb = ModuleBuilder::new("w");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let data = f.alloca(Type::I64, 24i64);
            f.counted_loop(Type::I64, 0i64, 24i64, |f, i| {
                let v = f.xor(Type::I64, i, 0x2ai64);
                f.store_elem(Type::I64, data, i, v);
            });
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 24i64, |f, i| {
                let v = f.load_elem(Type::I64, data, i);
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, v);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        let module = mb.finish();
        let golden = GoldenRun::capture(&module).unwrap();

        let analysis = LocationAnalysis::run(
            &module,
            &golden,
            Technique::InjectOnWrite,
            FaultModel::multi_bit(3, WinSize::Fixed(1)),
            120,
            42,
            10,
        );
        assert_eq!(analysis.matrix.total(), 120);
        assert!(analysis.prunable_fraction() >= 0.0 && analysis.prunable_fraction() <= 1.0);
        assert!(analysis.transition1() >= 0.0 && analysis.transition1() <= 1.0);
        assert!(analysis.transition2() >= 0.0 && analysis.transition2() <= 1.0);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = TransitionMatrix::default();
        assert_eq!(m.transition1(), 0.0);
        assert_eq!(m.transition2(), 0.0);
        assert_eq!(m.prunable_fraction(), 0.0);
    }
}
