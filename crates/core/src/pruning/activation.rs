//! Pruning layer 1: bound `max-MBF` via the number of activated errors
//! (RQ1, §IV-C1, Fig. 3).
//!
//! When a campaign is configured with `max-MBF = 30`, most experiments crash
//! (or finish) long before 30 flips have been applied.  The distribution of
//! the number of *activated* errors therefore gives an empirical upper bound
//! for `max-MBF`: the paper finds that roughly 99 % of inject-on-read and
//! 92 % of inject-on-write experiments activate fewer than 10 errors.

use crate::campaign::CampaignResult;

/// Distribution of activated errors aggregated over campaigns.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationAnalysis {
    /// `histogram[k]` = number of experiments that activated exactly `k`
    /// errors (the last bucket also holds ≥ its index).
    pub histogram: Vec<u64>,
    /// Total number of experiments aggregated.
    pub total: u64,
}

impl ActivationAnalysis {
    /// Aggregate the activation histograms of several campaigns (typically
    /// all `max-MBF = 30` campaigns of one technique).
    pub fn from_campaigns<'a>(campaigns: impl IntoIterator<Item = &'a CampaignResult>) -> Self {
        let mut histogram: Vec<u64> = Vec::new();
        let mut total = 0u64;
        for c in campaigns {
            if c.activation_histogram.len() > histogram.len() {
                histogram.resize(c.activation_histogram.len(), 0);
            }
            for (k, n) in c.activation_histogram.iter().enumerate() {
                histogram[k] += n;
            }
            total += c.total();
        }
        ActivationAnalysis { histogram, total }
    }

    /// Aggregate only experiments that ended in a crash (hardware exception),
    /// matching Fig. 3's "activated errors before causing a program to crash".
    pub fn crashes_from_campaigns<'a>(
        campaigns: impl IntoIterator<Item = &'a CampaignResult>,
    ) -> Self {
        let mut histogram: Vec<u64> = Vec::new();
        let mut total = 0u64;
        for c in campaigns {
            if c.crash_activation_histogram.len() > histogram.len() {
                histogram.resize(c.crash_activation_histogram.len(), 0);
            }
            for (k, n) in c.crash_activation_histogram.iter().enumerate() {
                histogram[k] += n;
            }
            total += c.crash_activation_histogram.iter().sum::<u64>();
        }
        ActivationAnalysis { histogram, total }
    }

    /// Fraction of experiments that activated at most `k` errors.
    pub fn cumulative_fraction(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let upto: u64 = self.histogram.iter().take(k + 1).sum();
        upto as f64 / self.total as f64
    }

    /// Fraction of experiments that activated exactly `k` errors.
    pub fn fraction(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.histogram.get(k).copied().unwrap_or(0) as f64 / self.total as f64
    }

    /// The smallest bound `B` such that at least `coverage` (e.g. 0.95) of
    /// all experiments activated at most `B` errors.
    pub fn suggested_bound(&self, coverage: f64) -> usize {
        for k in 0..self.histogram.len() {
            if self.cumulative_fraction(k) >= coverage {
                return k;
            }
        }
        self.histogram.len().saturating_sub(1)
    }

    /// Fractions grouped the way Fig. 3 reports them:
    /// `(≤5, 6..=10, >10)` activated errors.
    pub fn fig3_buckets(&self) -> (f64, f64, f64) {
        let le5 = self.cumulative_fraction(5);
        let le10 = self.cumulative_fraction(10);
        (le5, le10 - le5, 1.0 - le10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignResult, CampaignSpec};
    use crate::fault_model::{FaultModel, WinSize};
    use crate::outcome::OutcomeCounts;

    fn fake_campaign(hist: Vec<u64>, crash_hist: Vec<u64>) -> CampaignResult {
        let total: u64 = hist.iter().sum();
        CampaignResult {
            spec: CampaignSpec {
                model: FaultModel::multi_bit(30, WinSize::Fixed(1)),
                experiments: total as usize,
                ..CampaignSpec::default()
            },
            counts: OutcomeCounts {
                benign: total,
                ..OutcomeCounts::default()
            },
            activation_histogram: hist,
            crash_activation_histogram: crash_hist,
            warnings: Vec::new(),
            adaptive: None,
        }
    }

    #[test]
    fn aggregation_merges_histograms_of_different_lengths() {
        let a = fake_campaign(vec![1, 2, 3], vec![0, 1, 1]);
        let b = fake_campaign(vec![4, 0, 0, 7], vec![2, 0, 0, 3]);
        let agg = ActivationAnalysis::from_campaigns([&a, &b]);
        assert_eq!(agg.histogram, vec![5, 2, 3, 7]);
        assert_eq!(agg.total, 17);
        let crash = ActivationAnalysis::crashes_from_campaigns([&a, &b]);
        assert_eq!(crash.histogram, vec![2, 1, 1, 3]);
        assert_eq!(crash.total, 7);
    }

    #[test]
    fn cumulative_fractions_and_bound() {
        let a = fake_campaign(vec![0, 50, 30, 15, 5], vec![]);
        let agg = ActivationAnalysis::from_campaigns([&a]);
        assert!((agg.fraction(1) - 0.5).abs() < 1e-12);
        assert!((agg.cumulative_fraction(2) - 0.8).abs() < 1e-12);
        assert_eq!(agg.suggested_bound(0.8), 2);
        assert_eq!(agg.suggested_bound(0.95), 3);
        assert_eq!(agg.suggested_bound(1.0), 4);
    }

    #[test]
    fn fig3_buckets_partition_unity() {
        let a = fake_campaign(vec![10, 20, 30, 5, 5, 5, 10, 5, 2, 2, 2, 4], vec![]);
        let agg = ActivationAnalysis::from_campaigns([&a]);
        let (le5, six_to_ten, gt10) = agg.fig3_buckets();
        assert!((le5 + six_to_ten + gt10 - 1.0).abs() < 1e-12);
        assert!(le5 > 0.7);
        assert!(gt10 > 0.0);
    }

    #[test]
    fn empty_analysis_is_safe() {
        let agg = ActivationAnalysis::from_campaigns(std::iter::empty());
        assert_eq!(agg.total, 0);
        assert_eq!(agg.cumulative_fraction(5), 0.0);
        assert_eq!(agg.fraction(2), 0.0);
    }
}
