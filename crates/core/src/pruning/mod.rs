//! The error-space pruning layers: the paper's three empirical layers
//! (§III-F, §IV) plus a static bit-level layer built on the IR dataflow.
//!
//! 1. [`activation`] — bound `max-MBF` by measuring how many errors are
//!    actually activated before the program crashes (RQ1, Fig. 3).
//! 2. [`pessimistic`] — find the `(max-MBF, win-size)` configuration with the
//!    highest SDC percentage per program and technique, and compare it to the
//!    single bit-flip model (RQ2–RQ4, Fig. 2/4/5, Table III).
//! 3. [`location`] — use single bit-flip outcomes to pick the locations worth
//!    targeting with multi-bit injections (RQ5, Fig. 6, Table IV).
//! 4. [`bitlevel`] — skip experiments whose (instruction, register, bit)
//!    fault site is *provably* outcome-preserving under the
//!    [`mbfi_ir::BitFlow`] liveness/mask analysis (dead ⇒ byte-identical
//!    outcome to golden), before any experiment runs.

pub mod activation;
pub mod bitlevel;
pub mod location;
pub mod pessimistic;

pub use activation::ActivationAnalysis;
pub use bitlevel::{BitLevelPruner, DeadSite, PrunedCampaign, SkippedResult};
pub use location::{LocationAnalysis, TransitionMatrix};
pub use pessimistic::{ModelComparison, PessimisticAnalysis, PessimisticConfig};
