//! Pruning layer 2: find configurations that yield pessimistic (conservative)
//! SDC percentages (RQ2–RQ4, §IV-B and §IV-C2, Table III).
//!
//! Given the campaign results of a full parameter sweep for one workload and
//! technique, this module determines
//!
//! * whether the single bit-flip model already gives a pessimistic (i.e. at
//!   least as high) SDC percentage as every multi-bit configuration,
//! * which `(max-MBF, win-size)` pair yields the highest SDC percentage
//!   (the per-program rows of Table III), and
//! * the smallest `max-MBF` that reaches within `tolerance` percentage
//!   points of that maximum (the paper's "at most 3 errors are enough").

use crate::campaign::CampaignResult;
use crate::fault_model::{FaultModel, WinSize};

/// The multi-bit configuration with the highest SDC percentage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PessimisticConfig {
    /// The winning fault model.
    pub model: FaultModel,
    /// Its SDC percentage.
    pub sdc_pct: f64,
}

/// Comparison of the single-bit model against the multi-bit sweep for one
/// workload / technique.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelComparison {
    /// SDC percentage of the single bit-flip campaign.
    pub single_bit_sdc_pct: f64,
    /// The multi-bit configuration with the highest SDC percentage.
    pub worst_multi: PessimisticConfig,
    /// `worst_multi.sdc_pct - single_bit_sdc_pct` (positive when multi-bit
    /// finds more SDCs than single-bit).
    pub gap_pct_points: f64,
    /// Whether the single-bit model is pessimistic within `tolerance`
    /// percentage points (the paper treats differences below one point as
    /// "almost the same").
    pub single_bit_is_pessimistic: bool,
    /// Smallest `max-MBF` whose best win-size configuration reaches within
    /// `tolerance` points of the overall maximum SDC percentage.
    pub sufficient_max_mbf: u32,
}

/// Analyses a parameter sweep.
#[derive(Debug, Clone, Copy)]
pub struct PessimisticAnalysis {
    /// Differences below this many percentage points are treated as noise.
    pub tolerance_pct_points: f64,
}

impl Default for PessimisticAnalysis {
    fn default() -> Self {
        PessimisticAnalysis {
            tolerance_pct_points: 1.0,
        }
    }
}

impl PessimisticAnalysis {
    /// Compare the single-bit campaign against all multi-bit campaigns of one
    /// workload / technique.
    ///
    /// `single` must be a single bit-flip campaign; `multi` holds the
    /// multi-bit campaigns of the sweep (any subset of the grid).
    ///
    /// # Panics
    ///
    /// Panics if `single` is not a single-bit campaign or `multi` is empty.
    pub fn compare(&self, single: &CampaignResult, multi: &[CampaignResult]) -> ModelComparison {
        assert!(
            single.spec.model.is_single(),
            "`single` must use the single bit-flip model"
        );
        assert!(!multi.is_empty(), "no multi-bit campaigns supplied");

        let single_pct = single.sdc_pct();
        let worst = multi
            .iter()
            .max_by(|a, b| {
                a.sdc_pct()
                    .partial_cmp(&b.sdc_pct())
                    .expect("valid SDC pct")
            })
            .expect("non-empty multi set");
        let worst_cfg = PessimisticConfig {
            model: worst.spec.model,
            sdc_pct: worst.sdc_pct(),
        };
        let gap = worst_cfg.sdc_pct - single_pct;

        // Smallest max-MBF whose best configuration is within tolerance of the max.
        let mut sufficient = worst_cfg.model.max_mbf;
        let mut mbfs: Vec<u32> = multi.iter().map(|c| c.spec.model.max_mbf).collect();
        mbfs.sort_unstable();
        mbfs.dedup();
        for m in mbfs {
            let best_at_m = multi
                .iter()
                .filter(|c| c.spec.model.max_mbf == m)
                .map(|c| c.sdc_pct())
                .fold(f64::NEG_INFINITY, f64::max);
            if best_at_m + self.tolerance_pct_points >= worst_cfg.sdc_pct {
                sufficient = m;
                break;
            }
        }

        ModelComparison {
            single_bit_sdc_pct: single_pct,
            worst_multi: worst_cfg,
            gap_pct_points: gap,
            single_bit_is_pessimistic: gap <= self.tolerance_pct_points,
            sufficient_max_mbf: sufficient,
        }
    }

    /// The Table III row for one workload / technique: the `(max-MBF,
    /// win-size)` pair with the highest SDC percentage among multi-bit
    /// campaigns.
    pub fn table3_entry(&self, multi: &[CampaignResult]) -> PessimisticConfig {
        assert!(!multi.is_empty(), "no multi-bit campaigns supplied");
        let worst = multi
            .iter()
            .max_by(|a, b| {
                a.sdc_pct()
                    .partial_cmp(&b.sdc_pct())
                    .expect("valid SDC pct")
            })
            .expect("non-empty multi set");
        PessimisticConfig {
            model: worst.spec.model,
            sdc_pct: worst.sdc_pct(),
        }
    }
}

/// Convenience: is a window size "small" in the sense of the paper's
/// inject-on-write finding (< 5 dynamic instructions)?
pub fn is_small_window(win: WinSize) -> bool {
    win.upper_bound() < 5
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignSpec;
    use crate::outcome::OutcomeCounts;
    use crate::technique::Technique;

    fn campaign(model: FaultModel, sdc: u64, total: u64) -> CampaignResult {
        CampaignResult {
            spec: CampaignSpec {
                technique: Technique::InjectOnWrite,
                model,
                experiments: total as usize,
                ..CampaignSpec::default()
            },
            counts: OutcomeCounts {
                benign: total - sdc,
                sdc,
                ..OutcomeCounts::default()
            },
            activation_histogram: vec![0; model.max_mbf as usize + 1],
            crash_activation_histogram: vec![0; model.max_mbf as usize + 1],
            warnings: Vec::new(),
            adaptive: None,
        }
    }

    #[test]
    fn single_bit_pessimistic_when_it_dominates() {
        let single = campaign(FaultModel::single_bit(), 300, 1000);
        let multi = vec![
            campaign(FaultModel::multi_bit(2, WinSize::Fixed(1)), 250, 1000),
            campaign(FaultModel::multi_bit(3, WinSize::Fixed(1)), 200, 1000),
        ];
        let cmp = PessimisticAnalysis::default().compare(&single, &multi);
        assert!(cmp.single_bit_is_pessimistic);
        assert!(cmp.gap_pct_points < 0.0);
        assert_eq!(cmp.worst_multi.model.max_mbf, 2);
    }

    #[test]
    fn multi_bit_wins_when_it_finds_more_sdcs() {
        let single = campaign(FaultModel::single_bit(), 200, 1000);
        let multi = vec![
            campaign(FaultModel::multi_bit(2, WinSize::Fixed(1)), 230, 1000),
            campaign(FaultModel::multi_bit(3, WinSize::Fixed(1)), 380, 1000),
            campaign(FaultModel::multi_bit(4, WinSize::Fixed(1)), 370, 1000),
            campaign(FaultModel::multi_bit(10, WinSize::Fixed(1)), 300, 1000),
        ];
        let cmp = PessimisticAnalysis::default().compare(&single, &multi);
        assert!(!cmp.single_bit_is_pessimistic);
        assert!((cmp.gap_pct_points - 18.0).abs() < 1e-9);
        assert_eq!(cmp.worst_multi.model.max_mbf, 3);
        // max-MBF = 4 is within 1 point of the maximum, but 3 is the smallest
        // that reaches it.
        assert_eq!(cmp.sufficient_max_mbf, 3);
    }

    #[test]
    fn sufficient_mbf_accepts_within_tolerance() {
        let single = campaign(FaultModel::single_bit(), 100, 1000);
        let multi = vec![
            campaign(FaultModel::multi_bit(2, WinSize::Fixed(1)), 295, 1000),
            campaign(FaultModel::multi_bit(6, WinSize::Fixed(1)), 300, 1000),
        ];
        let cmp = PessimisticAnalysis::default().compare(&single, &multi);
        // 29.5% is within 1 point of 30%, so two errors are "sufficient".
        assert_eq!(cmp.sufficient_max_mbf, 2);
    }

    #[test]
    fn table3_entry_reports_the_worst_configuration() {
        let multi = vec![
            campaign(FaultModel::multi_bit(2, WinSize::Fixed(100)), 150, 1000),
            campaign(
                FaultModel::multi_bit(3, WinSize::Random { lo: 2, hi: 10 }),
                220,
                1000,
            ),
        ];
        let entry = PessimisticAnalysis::default().table3_entry(&multi);
        assert_eq!(entry.model.max_mbf, 3);
        assert!((entry.sdc_pct - 22.0).abs() < 1e-9);
    }

    #[test]
    fn small_window_predicate() {
        assert!(is_small_window(WinSize::Fixed(0)));
        assert!(is_small_window(WinSize::Fixed(4)));
        assert!(!is_small_window(WinSize::Fixed(10)));
        assert!(!is_small_window(WinSize::Random { lo: 2, hi: 10 }));
    }

    #[test]
    #[should_panic(expected = "single bit-flip")]
    fn compare_rejects_non_single_baseline() {
        let not_single = campaign(FaultModel::multi_bit(2, WinSize::Fixed(1)), 1, 10);
        let multi = vec![campaign(FaultModel::multi_bit(2, WinSize::Fixed(1)), 1, 10)];
        let _ = PessimisticAnalysis::default().compare(&not_single, &multi);
    }
}
