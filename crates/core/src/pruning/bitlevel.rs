//! Layer 4: bit-level static pruning of the fault space.
//!
//! [`mbfi_ir::BitFlow`] proves, per (instruction, register, bit) site, that
//! flipping the bit can never change the program's observable behaviour —
//! the *soundness contract* is **dead ⇒ byte-identical outcome to the golden
//! run**.  This module turns those static facts into campaign-level savings:
//! a [`BitLevelPruner`] resolves each sampled experiment's injection point
//! back to a static PC, and when *every* bit the injector could pick at that
//! point is provably dead, the experiment's result is synthesized instead of
//! executed.
//!
//! The synthesized result must be exactly what running the experiment would
//! have produced:
//!
//! * a single flip into a fully-dead site runs to completion with golden
//!   output — `(Benign, activated = 1)`;
//! * an armed flip that provably never applies (a phi operand index the
//!   interpreter never reads, or a first-target ordinal past the golden
//!   candidate count) completes fault-free — `(Benign, activated = 0)`.
//!
//! Anything not provable runs live, so [`BitLevelPruner::run_campaign_pruned`]
//! is byte-identical to [`crate::Campaign::run_compiled`] for every spec and
//! thread count while skipping the statically-dead share of the budget.  The
//! prune decision is a pure function of the compiled module and the sampled
//! specs — it never touches the experiment RNG stream, so seeded sampling
//! stays reproducible.  `prune_bench --check` and the
//! `bitflow_equivalence` suite validate the contract dynamically by
//! injecting claimed-dead sites anyway and asserting golden-identical bytes.

use std::collections::HashMap;

use crate::campaign::{CampaignResult, CampaignSpec, CampaignWarning};
use crate::experiment::{Experiment, ExperimentSpec};
use crate::golden::GoldenRun;
use crate::outcome::{classify, Outcome, OutcomeCounts};
use crate::rng::{Rng, SmallRng};
use crate::space::{ErrorSpace, REGISTER_BITS};
use crate::technique::Technique;
use crate::telemetry::{Metric, NoopSink, TelemetrySink};
use mbfi_ir::bitflow::{BitFlow, BitSpace};
use mbfi_ir::{CInstr, CompiledModule, Reg};
use mbfi_vm::{ExecHook, InstrContext, RunResult, Value, Vm};

/// A statically-resolved experiment result: what the run would produce,
/// without running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkippedResult {
    /// Outcome the experiment is proven to produce.
    pub outcome: Outcome,
    /// Number of flips the experiment is proven to activate.
    pub activated: u32,
}

/// One claimed-dead (instruction, register, bit) fault site plus a dynamic
/// occurrence to inject at — the unit of the `--check` validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadSite {
    /// Static PC of the instruction.
    pub pc: usize,
    /// Injection surface the site belongs to.
    pub technique: Technique,
    /// For inject-on-read, the register-operand index; 0 for writes.
    pub operand_index: usize,
    /// Bit position claimed dead (64-bit register model; bits at or above
    /// the value's width are no-op flips by construction).
    pub bit: u32,
    /// Which dynamic execution of this PC to corrupt (0-based).
    pub occurrence: u64,
}

/// Result of one pruned campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedCampaign {
    /// The aggregate result — byte-identical to
    /// [`crate::Campaign::run_compiled`] with the same spec.
    pub result: CampaignResult,
    /// Experiments statically resolved instead of executed.
    pub skipped: u64,
    /// Outcome counts of the skipped (synthesized) share.
    pub skipped_counts: OutcomeCounts,
    /// Outcome counts of the executed (live) share.
    pub executed_counts: OutcomeCounts,
}

impl PrunedCampaign {
    /// Experiments actually executed.
    pub fn executed(&self) -> u64 {
        self.result.counts.total() - self.skipped
    }

    /// Fraction of the budget that was statically resolved.
    pub fn skipped_fraction(&self) -> f64 {
        let total = self.result.counts.total();
        if total == 0 {
            return 0.0;
        }
        self.skipped as f64 / total as f64
    }
}

/// The bit-level pruner: a [`BitFlow`] analysis plus the static-site index
/// needed to map dynamic injection points back to PCs.
#[derive(Debug, Clone)]
pub struct BitLevelPruner {
    flow: BitFlow,
    /// `(func, block, instr)` provenance triple → PC, the inverse of
    /// `CompiledModule::meta` (triples are unique per lowering).
    pc_by_site: HashMap<(u32, u32, u32), usize>,
}

impl BitLevelPruner {
    /// Analyze a compiled module.  Pure: same module, same pruner.
    pub fn analyze(code: &CompiledModule) -> BitLevelPruner {
        let flow = BitFlow::analyze(code);
        let pc_by_site = code
            .meta
            .iter()
            .enumerate()
            .map(|(pc, m)| ((m.func, m.block, m.instr), pc))
            .collect();
        BitLevelPruner { flow, pc_by_site }
    }

    /// The underlying dataflow result.
    pub fn flow(&self) -> &BitFlow {
        &self.flow
    }

    /// Static bit-site space summary (how much of the module's
    /// [`CompiledModule::static_site_bits`] space is provably dead).
    pub fn space(&self) -> BitSpace {
        self.flow.space()
    }

    /// PC of a `(func, block, instr)` provenance triple.
    pub fn pc_of(&self, func: usize, block: usize, instr: usize) -> Option<usize> {
        self.pc_by_site
            .get(&(func as u32, block as u32, instr as u32))
            .copied()
    }

    /// Decide one experiment, given the PC its first-target ordinal resolves
    /// to (`None` = the ordinal is past the golden candidate count, so the
    /// injector never arms).  Returns `Some` when the result is provable.
    fn decide(
        &self,
        code: &CompiledModule,
        spec: &ExperimentSpec,
        pc: Option<usize>,
    ) -> Option<SkippedResult> {
        if !spec.model.is_single() {
            return None;
        }
        let benign = |activated: u32| {
            Some(SkippedResult {
                outcome: Outcome::Benign,
                activated,
            })
        };
        let Some(pc) = pc else {
            // The first target is never reached: the run is fault-free.
            return benign(0);
        };
        let fl = self.flow.flow(pc);
        match spec.technique {
            Technique::InjectOnWrite => {
                // Every bit the injector can flip in the written value is
                // dead, and the write provably happens (so exactly one flip
                // activates).  A `call` whose callee mixes void and valued
                // `ret`s may or may not fire the write — run those live.
                if fl.dest_width != 0 && fl.dest_fires && fl.dest_live == 0 {
                    benign(1)
                } else {
                    None
                }
            }
            Technique::InjectOnRead => {
                let reg_reads = code.meta[pc].reg_reads as usize;
                if reg_reads == 0 {
                    return None;
                }
                let k = spec.sampled_operand_index(reg_reads);
                if let CInstr::Phi { incoming, .. } = &code.instrs[pc] {
                    // The interpreter reads exactly one phi arm, always at
                    // operand index 0: an armed flip at k >= 1 never applies.
                    if k >= 1 {
                        return benign(0);
                    }
                    // At k == 0 the flip applies only when the selected arm
                    // is a register; provable only when every arm is.
                    let all_regs = incoming.iter().all(|(_, op)| op.is_reg());
                    if all_regs && fl.read_demand.first() == Some(&0) {
                        return benign(1);
                    }
                    None
                } else if fl.read_demand.get(k) == Some(&0) {
                    benign(1)
                } else {
                    None
                }
            }
        }
    }

    /// Statically resolve a batch of sampled experiments: `Some(result)`
    /// where provable, `None` where the experiment must run live.
    ///
    /// Costs one fault-free execution (to map candidate ordinals to PCs) per
    /// technique present in `specs`, amortized over the whole batch.
    pub fn classify_specs(
        &self,
        code: &CompiledModule,
        golden: &GoldenRun,
        specs: &[ExperimentSpec],
    ) -> Vec<Option<SkippedResult>> {
        let mut resolved: HashMap<Technique, HashMap<u64, usize>> = HashMap::new();
        for technique in Technique::ALL {
            let mut targets: Vec<u64> = specs
                .iter()
                .filter(|s| s.technique == technique && s.model.is_single())
                .map(|s| s.first_target)
                .collect();
            if targets.is_empty() {
                continue;
            }
            targets.sort_unstable();
            targets.dedup();
            resolved.insert(
                technique,
                self.resolve_ordinals(code, golden, technique, &targets),
            );
        }
        specs
            .iter()
            .map(|spec| {
                if !spec.model.is_single() {
                    return None;
                }
                let pc = resolved
                    .get(&spec.technique)
                    .and_then(|m| m.get(&spec.first_target))
                    .copied();
                self.decide(code, spec, pc)
            })
            .collect()
    }

    /// Map candidate ordinals of one technique to the PC of the instruction
    /// that owns each ordinal, by replaying the fault-free run once.
    /// Ordinals past the end of the run are absent from the result.
    fn resolve_ordinals(
        &self,
        code: &CompiledModule,
        golden: &GoldenRun,
        technique: Technique,
        sorted_targets: &[u64],
    ) -> HashMap<u64, usize> {
        let mut hook = OrdinalResolver {
            is_write: technique.is_write(),
            wanted: sorted_targets,
            next: 0,
            seen: 0,
            resolved: Vec::with_capacity(sorted_targets.len()),
        };
        // The same limit construction faulty runs use; 2x the golden length
        // always lets the fault-free replay complete.
        let _ = Vm::new(code, golden.faulty_run_limits(2)).run(&mut hook);
        hook.resolved
            .into_iter()
            .filter_map(|(ordinal, triple)| self.pc_by_site.get(&triple).map(|&pc| (ordinal, pc)))
            .collect()
    }

    /// Golden per-PC execution counts (how many dynamic occurrences each
    /// static instruction has) — the sampling frame for [`DeadSite`]s.
    pub fn pc_execution_counts(&self, code: &CompiledModule, golden: &GoldenRun) -> Vec<u64> {
        let mut hook = PcCountHook {
            pc_by_site: &self.pc_by_site,
            counts: vec![0; code.instrs.len()],
        };
        let _ = Vm::new(code, golden.faulty_run_limits(2)).run(&mut hook);
        hook.counts
    }

    /// Draw `n` claimed-dead sites (with replacement) from the golden-executed
    /// part of the module, uniformly over sites then bits then occurrences.
    /// Deterministic in `seed`; empty when the analysis proves nothing on
    /// executed code.
    pub fn sample_dead_sites(
        &self,
        counts: &[u64],
        technique: Technique,
        n: usize,
        seed: u64,
    ) -> Vec<DeadSite> {
        // (pc, operand index, claimed-dead mask) frame in PC order.
        let mut frame: Vec<(usize, usize, u64)> = Vec::new();
        for (pc, fl) in self.flow.flows().iter().enumerate() {
            if counts.get(pc).copied().unwrap_or(0) == 0 {
                continue;
            }
            match technique {
                Technique::InjectOnWrite => {
                    let mask = !fl.dest_live;
                    if fl.dest_width != 0 && mask != 0 {
                        frame.push((pc, 0, mask));
                    }
                }
                Technique::InjectOnRead => {
                    for (k, d) in fl.read_demand.iter().enumerate() {
                        let mask = !d;
                        if mask != 0 {
                            frame.push((pc, k, mask));
                        }
                    }
                }
            }
        }
        if frame.is_empty() {
            return Vec::new();
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let (pc, operand_index, mask) = frame[rng.gen_range(0..frame.len())];
                let bits: Vec<u32> = (0..64).filter(|b| mask & (1u64 << b) != 0).collect();
                let bit = bits[rng.gen_range(0..bits.len())];
                let occurrence = rng.gen_range(0..counts[pc]);
                DeadSite {
                    pc,
                    technique,
                    operand_index,
                    bit,
                    occurrence,
                }
            })
            .collect()
    }

    /// Inject one claimed-dead site and return `(flip applied, run result)`.
    /// The soundness contract says the result's output must equal the golden
    /// bytes and classify as [`Outcome::Benign`] — [`check_dead_site`] wraps
    /// the assertion.
    ///
    /// [`check_dead_site`]: BitLevelPruner::check_dead_site
    pub fn inject_dead_site(
        &self,
        code: &CompiledModule,
        golden: &GoldenRun,
        site: &DeadSite,
    ) -> (bool, RunResult) {
        let m = &code.meta[site.pc];
        let mut hook = SiteFlipHook {
            triple: (m.func as usize, m.block as usize, m.instr as usize),
            is_write: site.technique.is_write(),
            operand_index: site.operand_index,
            bit: site.bit,
            occurrence: site.occurrence,
            seen: 0,
            armed_dyn: None,
            applied: false,
        };
        let result = Vm::new(code, golden.faulty_run_limits(2)).run(&mut hook);
        (hook.applied, result)
    }

    /// Validate the soundness contract on one site: inject it and require a
    /// byte-identical, benign run.  Returns a description of the violation,
    /// if any.
    pub fn check_dead_site(
        &self,
        code: &CompiledModule,
        golden: &GoldenRun,
        site: &DeadSite,
    ) -> Result<(), String> {
        let (applied, result) = self.inject_dead_site(code, golden, site);
        let outcome = classify(&result, &golden.output);
        if outcome != Outcome::Benign || result.output != golden.output {
            return Err(format!(
                "dead site pc={} op={} bit={} occ={} ({}) violated the contract: \
                 outcome {outcome:?}, applied={applied}, output {} vs golden {} bytes",
                site.pc,
                site.operand_index,
                site.bit,
                site.occurrence,
                site.technique,
                result.output.len(),
                golden.output.len(),
            ));
        }
        Ok(())
    }

    /// Run a fixed-n campaign, skipping every experiment whose result the
    /// analysis proves.  Byte-identical to [`crate::Campaign::run_compiled`]
    /// with the same spec, for every thread count.
    pub fn run_campaign_pruned(
        &self,
        code: &CompiledModule,
        golden: &GoldenRun,
        spec: &CampaignSpec,
    ) -> PrunedCampaign {
        self.run_campaign_pruned_with(code, golden, spec, &NoopSink)
    }

    /// [`BitLevelPruner::run_campaign_pruned`] with a telemetry sink: the
    /// statically-resolved and live experiment splits are published as
    /// [`Metric::PruneSkippedExperiments`] / [`Metric::PruneExecutedExperiments`]
    /// once the campaign folds.  The sink only observes — the returned
    /// [`PrunedCampaign`] is identical for any sink.
    pub fn run_campaign_pruned_with<S: TelemetrySink>(
        &self,
        code: &CompiledModule,
        golden: &GoldenRun,
        spec: &CampaignSpec,
        telemetry: &S,
    ) -> PrunedCampaign {
        let (vspec, mut warnings) = spec.validate();
        let budget = vspec.experiments;
        // Mirror the sweep planner's saturation warning so the result spec
        // and warnings compare equal to the unpruned campaign's.
        if vspec.model.is_single() {
            let space = ErrorSpace::new(golden.candidates(vspec.technique), REGISTER_BITS)
                .single_bit_size();
            if space > 0 && budget as u128 > space {
                warnings.push(CampaignWarning::SamplingSaturated {
                    budget: budget as u64,
                    space: space.min(u128::from(u64::MAX)) as u64,
                });
            }
        }
        let specs = ExperimentSpec::sample_campaign(&vspec, golden);
        let decisions = self.classify_specs(code, golden, &specs);
        let live: Vec<u32> = decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| i as u32)
            .collect();

        // Drain the live share over a worker pool; the fold below is keyed
        // by experiment index, so any schedule produces identical bytes.
        let threads = if vspec.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            vspec.threads
        }
        .min(live.len().max(1));
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let mut executed: Vec<(u32, SkippedResult)> = Vec::with_capacity(live.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut out: Vec<(u32, SkippedResult)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(&idx) = live.get(i) else { break };
                            let r =
                                Experiment::run_compiled(code, golden, &specs[idx as usize], None);
                            out.push((
                                idx,
                                SkippedResult {
                                    outcome: r.outcome,
                                    activated: r.activated,
                                },
                            ));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                executed.extend(h.join().expect("pruned-campaign worker panicked"));
            }
        });

        let mut slots: Vec<Option<SkippedResult>> = decisions;
        for (idx, r) in executed {
            slots[idx as usize] = Some(r);
        }

        let max_hist = vspec.model.max_mbf as usize + 1;
        let mut counts = OutcomeCounts::default();
        let mut skipped_counts = OutcomeCounts::default();
        let mut executed_counts = OutcomeCounts::default();
        let mut activation = vec![0u64; max_hist];
        let mut crash_activation = vec![0u64; max_hist];
        let mut skipped = 0u64;
        for (i, slot) in slots.iter().enumerate() {
            let r = slot.expect("every experiment is either skipped or executed");
            counts.record(r.outcome);
            if live.binary_search(&(i as u32)).is_ok() {
                executed_counts.record(r.outcome);
            } else {
                skipped += 1;
                skipped_counts.record(r.outcome);
            }
            let slot = (r.activated as usize).min(max_hist - 1);
            activation[slot] += 1;
            if r.outcome == Outcome::DetectedHwException {
                crash_activation[slot] += 1;
            }
        }

        if S::ENABLED {
            telemetry.add(Metric::PruneSkippedExperiments, skipped);
            telemetry.add(Metric::PruneExecutedExperiments, live.len() as u64);
        }

        PrunedCampaign {
            result: CampaignResult {
                spec: vspec,
                counts,
                activation_histogram: activation,
                crash_activation_histogram: crash_activation,
                warnings,
                adaptive: None,
            },
            skipped,
            skipped_counts,
            executed_counts,
        }
    }
}

/// Hook that maps candidate ordinals of one technique to provenance triples
/// during a fault-free replay.
struct OrdinalResolver<'a> {
    is_write: bool,
    wanted: &'a [u64],
    next: usize,
    seen: u64,
    resolved: Vec<(u64, (u32, u32, u32))>,
}

impl ExecHook for OrdinalResolver<'_> {
    fn on_instr(&mut self, ctx: &InstrContext) {
        let candidate = if self.is_write {
            ctx.has_dest
        } else {
            ctx.reg_reads > 0
        };
        if !candidate {
            return;
        }
        let ordinal = self.seen;
        self.seen += 1;
        if self.next < self.wanted.len() && self.wanted[self.next] == ordinal {
            self.resolved.push((
                ordinal,
                (ctx.func as u32, ctx.block as u32, ctx.instr as u32),
            ));
            self.next += 1;
        }
    }
}

/// Hook counting golden executions per PC.
struct PcCountHook<'a> {
    pc_by_site: &'a HashMap<(u32, u32, u32), usize>,
    counts: Vec<u64>,
}

impl ExecHook for PcCountHook<'_> {
    fn on_instr(&mut self, ctx: &InstrContext) {
        let triple = (ctx.func as u32, ctx.block as u32, ctx.instr as u32);
        if let Some(&pc) = self.pc_by_site.get(&triple) {
            self.counts[pc] += 1;
        }
    }
}

/// Hook that flips one specific bit at one specific dynamic occurrence of
/// one static instruction — the targeted injector behind `--check`.
struct SiteFlipHook {
    triple: (usize, usize, usize),
    is_write: bool,
    operand_index: usize,
    bit: u32,
    occurrence: u64,
    seen: u64,
    armed_dyn: Option<u64>,
    applied: bool,
}

impl ExecHook for SiteFlipHook {
    fn on_instr(&mut self, ctx: &InstrContext) {
        if self.applied || (ctx.func, ctx.block, ctx.instr) != self.triple {
            return;
        }
        if self.seen == self.occurrence {
            self.armed_dyn = Some(ctx.dyn_index);
        }
        self.seen += 1;
    }

    fn on_read(
        &mut self,
        ctx: &InstrContext,
        operand_index: usize,
        _reg: Reg,
        value: Value,
    ) -> Value {
        if self.is_write
            || self.applied
            || self.armed_dyn != Some(ctx.dyn_index)
            || operand_index != self.operand_index
        {
            return value;
        }
        self.applied = true;
        value.flip_bit(self.bit)
    }

    fn on_write(&mut self, ctx: &InstrContext, _reg: Reg, value: Value) -> Value {
        if !self.is_write || self.applied || self.armed_dyn != Some(ctx.dyn_index) {
            return value;
        }
        self.applied = true;
        value.flip_bit(self.bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use crate::fault_model::{FaultModel, WinSize};
    use mbfi_ir::{Module, ModuleBuilder, Type};

    /// A workload with a provably-dead computation chain next to live work:
    /// the dead chain's read and write sites are what the pruner skips.
    fn workload_with_dead_chain() -> Module {
        let mut mb = ModuleBuilder::new("deadchain");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 24i64, |f, i| {
                // Dead: computed, chained, never consumed.
                let d0 = f.mul(Type::I64, i, 7i64);
                let d1 = f.add(Type::I64, d0, 13i64);
                let d2 = f.xor(Type::I64, d1, d0);
                let _ = f.shl(Type::I64, d2, 3i64);
                // Live: the printed sum.
                let cur = f.load(Type::I64, acc);
                let masked = f.and(Type::I64, i, 0xFFi64);
                let next = f.add(Type::I64, cur, masked);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    fn prepared() -> (CompiledModule, GoldenRun) {
        let m = workload_with_dead_chain();
        let code = CompiledModule::lower(&m);
        let golden = GoldenRun::capture_compiled(&code).unwrap();
        (code, golden)
    }

    #[test]
    fn skip_decisions_match_actually_running_the_experiment() {
        let (code, golden) = prepared();
        let pruner = BitLevelPruner::analyze(&code);
        for technique in Technique::ALL {
            let spec = CampaignSpec {
                technique,
                model: FaultModel::single_bit(),
                experiments: 300,
                seed: 0xDEAD,
                hang_factor: 10,
                threads: 1,
            };
            let specs = ExperimentSpec::sample_campaign(&spec, &golden);
            let decisions = pruner.classify_specs(&code, &golden, &specs);
            let skipped = decisions.iter().filter(|d| d.is_some()).count();
            assert!(skipped > 0, "{technique}: dead chain produced no skips");
            for (s, d) in specs.iter().zip(&decisions) {
                if let Some(skip) = d {
                    let r = Experiment::run_compiled(&code, &golden, s, None);
                    assert_eq!(
                        (r.outcome, r.activated),
                        (skip.outcome, skip.activated),
                        "{technique}: synthesized result diverges for {s:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruned_campaign_equals_unpruned_for_every_thread_count() {
        let (code, golden) = prepared();
        let pruner = BitLevelPruner::analyze(&code);
        for technique in Technique::ALL {
            let spec = CampaignSpec {
                technique,
                model: FaultModel::single_bit(),
                experiments: 250,
                seed: 0xB17,
                hang_factor: 10,
                threads: 1,
            };
            let unpruned = Campaign::run_compiled(&code, &golden, &spec);
            let p1 = pruner.run_campaign_pruned(&code, &golden, &spec);
            let p4 =
                pruner.run_campaign_pruned(&code, &golden, &CampaignSpec { threads: 4, ..spec });
            assert_eq!(p1.result, unpruned, "{technique}: pruned != unpruned");
            // The spec echoes the requested thread count; everything else
            // must be invariant under it.
            let mut p4r = p4.result.clone();
            assert_eq!(p4r.spec.threads, 4);
            p4r.spec.threads = 1;
            assert_eq!(p1.result, p4r, "{technique}: thread count changed result");
            assert_eq!(p1.skipped, p4.skipped);
            assert!(p1.skipped > 0, "{technique}: campaign skipped nothing");
            assert_eq!(
                p1.skipped_counts.total() + p1.executed_counts.total(),
                p1.result.counts.total()
            );
        }
    }

    #[test]
    fn multi_bit_campaigns_are_never_pruned() {
        let (code, golden) = prepared();
        let pruner = BitLevelPruner::analyze(&code);
        let spec = CampaignSpec {
            technique: Technique::InjectOnWrite,
            model: FaultModel::multi_bit(3, WinSize::Fixed(2)),
            experiments: 60,
            seed: 9,
            hang_factor: 10,
            threads: 2,
        };
        let unpruned = Campaign::run_compiled(&code, &golden, &spec);
        let pruned = pruner.run_campaign_pruned(&code, &golden, &spec);
        assert_eq!(pruned.result, unpruned);
        assert_eq!(pruned.skipped, 0, "multi-bit specs must all run live");
    }

    #[test]
    fn sampled_dead_sites_are_outcome_preserving() {
        let (code, golden) = prepared();
        let pruner = BitLevelPruner::analyze(&code);
        let counts = pruner.pc_execution_counts(&code, &golden);
        for technique in Technique::ALL {
            let sites = pruner.sample_dead_sites(&counts, technique, 40, 0x5EED);
            assert!(!sites.is_empty(), "{technique}: no dead sites to sample");
            let mut applied = 0usize;
            for site in &sites {
                pruner.check_dead_site(&code, &golden, site).unwrap();
                if pruner.inject_dead_site(&code, &golden, site).0 {
                    applied += 1;
                }
            }
            assert!(
                applied > 0,
                "{technique}: no sampled dead-site flip ever applied"
            );
        }
    }

    #[test]
    fn dead_site_sampling_is_deterministic() {
        let (code, golden) = prepared();
        let pruner = BitLevelPruner::analyze(&code);
        let counts = pruner.pc_execution_counts(&code, &golden);
        let a = pruner.sample_dead_sites(&counts, Technique::InjectOnRead, 25, 7);
        let b = pruner.sample_dead_sites(&counts, Technique::InjectOnRead, 25, 7);
        assert_eq!(a, b);
    }
}
