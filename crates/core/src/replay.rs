//! Checkpointed golden-run replay.
//!
//! Every experiment of a campaign re-executes the workload with a fault
//! injected at a known first location — which means the prefix of the run up
//! to that location is *identical* to the golden run and is pure wasted work.
//! A [`CheckpointStore`] captures [`VmSnapshot`]s every `interval` dynamic
//! instructions during one extra fault-free run; an experiment then restores
//! the nearest checkpoint at or before its first injection point and executes
//! only the tail.
//!
//! ## The candidate-ordinal bookkeeping
//!
//! Injection targets are *candidate ordinals*, not dynamic-instruction
//! indices: the `first_target`-th instruction that reads (inject-on-read) or
//! writes (inject-on-write) a register.  Each checkpoint therefore also
//! records how many candidates of either kind executed before it, so a
//! resumed [`crate::InjectorHook`] can be fast-forwarded with
//! [`crate::InjectorHook::resume_candidates`] and still fire at exactly the
//! same instruction as a full run.
//!
//! ## Determinism contract
//!
//! Replay is byte-transparent: for any experiment spec, the
//! [`crate::ExperimentResult`] of the replay path equals the full-execution
//! result field-for-field (outcome, activation count, dynamic-instruction
//! count, injection records).  This holds because (a) the restored prefix is
//! fault-free, so the injector's RNG has consumed nothing before the first
//! flip, (b) dynamic-instruction indices continue from the checkpoint's
//! counter, and (c) the snapshot carries the output prefix, so SDC
//! classification compares the same bytes.  The contract is enforced by the
//! `replay_equivalence` integration suite and by `replay_bench --check`.
//!
//! ## Memory budget
//!
//! Snapshots are chunk-table clones sharing 4 KiB copy-on-write chunks (see
//! `mbfi_vm::memory`), so consecutive checkpoints share every chunk the run
//! did not touch in between.  The budget accounting charges each checkpoint
//! its *marginal* unique-chunk footprint — a chunk shared with an earlier
//! checkpoint is free — and the store refuses to grow beyond
//! [`CheckpointConfig::max_bytes`], simply not adding checkpoints once the
//! budget is reached ([`CheckpointStore::truncated`] reports this).
//! Experiments whose first injection lies beyond the last stored checkpoint
//! fall back to the deepest one available — correctness never depends on the
//! budget.  The chunk `Arc`s are also the cross-thread sharing mechanism:
//! sweep workers fork experiment VMs straight off the shared store with zero
//! up-front copy.

use crate::golden::GoldenRun;
use crate::technique::Technique;
use mbfi_ir::{CompiledModule, Module};
use mbfi_vm::{CountingHook, Limits, RunOutcome, Vm, VmSnapshot};

/// Remap a uniformly drawn candidate ordinal into the **last quartile** of a
/// candidate space — the late-injection shape where replay saves the most
/// (used by `replay_bench` and the equivalence suite; kept here so the two
/// cannot drift).  The result is always a valid ordinal below `candidates`.
pub fn last_quartile_target(candidates: u64, drawn: u64) -> u64 {
    let candidates = candidates.max(1);
    let quartile = (candidates / 4).max(1);
    (candidates - quartile) + drawn % quartile
}

/// Knobs of a checkpoint capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Checkpoint every `interval` dynamic instructions (K).  Smaller values
    /// shrink the replayed tail but cost more capture time and memory.
    pub interval: u64,
    /// Upper bound on the stored checkpoints' unique-chunk footprint (each
    /// checkpoint charged its marginal bytes over those already stored; see
    /// [`VmSnapshot::unique_bytes`]).  Capture keeps the earliest checkpoints
    /// and stops adding once the budget is exhausted.
    pub max_bytes: usize,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            interval: 1024,
            max_bytes: 64 << 20,
        }
    }
}

impl CheckpointConfig {
    /// A config with the given interval and the default memory budget.
    pub fn with_interval(interval: u64) -> CheckpointConfig {
        CheckpointConfig {
            interval,
            ..CheckpointConfig::default()
        }
    }

    /// The auto-tuned config for one golden run: the per-workload interval
    /// from [`GoldenRun::default_checkpoint_interval`] with an explicit
    /// memory budget.
    pub fn auto_for(golden: &GoldenRun, max_bytes: usize) -> CheckpointConfig {
        CheckpointConfig {
            interval: golden.default_checkpoint_interval(),
            max_bytes,
        }
    }
}

/// One stored checkpoint: a VM snapshot plus the profile counters needed to
/// fast-forward an injector to this point.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    snapshot: VmSnapshot,
    /// Dynamic-instruction boundary of the snapshot.
    pub dyn_index: u64,
    /// Inject-on-read candidates executed before this point.
    pub read_candidates: u64,
    /// Inject-on-write candidates executed before this point.
    pub write_candidates: u64,
}

impl Checkpoint {
    /// The frozen VM state.
    pub fn snapshot(&self) -> &VmSnapshot {
        &self.snapshot
    }

    /// Candidates of the given technique executed before this checkpoint.
    pub fn candidates_for(&self, technique: Technique) -> u64 {
        if technique.is_write() {
            self.write_candidates
        } else {
            self.read_candidates
        }
    }
}

/// Capture failed: the fault-free capture run did not reproduce the golden
/// run it was supposed to checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayCaptureError {
    /// Dynamic instructions of the golden run.
    pub expected_instrs: u64,
    /// Dynamic instructions of the capture run.
    pub actual_instrs: u64,
    /// Whether the capture run's output matched the golden output.
    pub output_matches: bool,
    /// How the capture run ended.
    pub outcome: String,
}

impl std::fmt::Display for ReplayCaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoint capture diverged from the golden run: \
             {} dynamic instructions (expected {}), output {}, outcome {}",
            self.actual_instrs,
            self.expected_instrs,
            if self.output_matches {
                "matches"
            } else {
                "differs"
            },
            self.outcome
        )
    }
}

impl std::error::Error for ReplayCaptureError {}

/// An immutable set of golden-run checkpoints for one workload module.
///
/// Capture once per `(module, golden)` pair, then share by reference across
/// worker threads (`CheckpointStore` is `Sync`): replay only reads snapshots.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    interval: u64,
    checkpoints: Vec<Checkpoint>,
    stored_bytes: usize,
    truncated: bool,
}

impl CheckpointStore {
    /// Re-run the workload fault-free, pausing every
    /// [`CheckpointConfig::interval`] dynamic instructions to snapshot, and
    /// verify the run reproduces `golden` (same instruction count and
    /// output).  A divergence means the module and the golden run do not
    /// belong together and replaying would corrupt every experiment.
    pub fn capture(
        module: &Module,
        golden: &GoldenRun,
        config: CheckpointConfig,
    ) -> Result<CheckpointStore, ReplayCaptureError> {
        Self::capture_with_limits(module, golden, config, Limits::default())
    }

    /// Like [`CheckpointStore::capture`] with explicit execution limits — use
    /// the same limits the golden run was captured with (see
    /// [`GoldenRun::capture_with_limits`]), otherwise a golden run longer
    /// than the default instruction limit reads as a spurious divergence.
    pub fn capture_with_limits(
        module: &Module,
        golden: &GoldenRun,
        config: CheckpointConfig,
        limits: Limits,
    ) -> Result<CheckpointStore, ReplayCaptureError> {
        let code = CompiledModule::lower(module);
        Self::capture_compiled_with_limits(&code, golden, config, limits)
    }

    /// Capture from a pre-lowered module (the snapshots carry compiled-frame
    /// state, so replay through [`crate::Experiment::run_compiled`] must use
    /// the same lowered module).
    pub fn capture_compiled(
        code: &CompiledModule,
        golden: &GoldenRun,
        config: CheckpointConfig,
    ) -> Result<CheckpointStore, ReplayCaptureError> {
        Self::capture_compiled_with_limits(code, golden, config, Limits::default())
    }

    /// Capture from a pre-lowered module with explicit execution limits.
    pub fn capture_compiled_with_limits(
        code: &CompiledModule,
        golden: &GoldenRun,
        config: CheckpointConfig,
        limits: Limits,
    ) -> Result<CheckpointStore, ReplayCaptureError> {
        assert!(config.interval >= 1, "checkpoint interval must be >= 1");
        let mut vm = Vm::new(code, limits);
        let mut hook = CountingHook::new();
        let mut store = CheckpointStore {
            interval: config.interval,
            checkpoints: Vec::new(),
            stored_bytes: 0,
            truncated: false,
        };
        let mut next_stop = config.interval;
        // Chunks already charged to the store: a snapshot only pays for
        // chunks no earlier checkpoint holds, so dense checkpointing of a
        // mostly-idle image is nearly free.
        let mut seen = mbfi_vm::ChunkSet::default();
        let result = loop {
            match vm.run_until(&mut hook, next_stop) {
                None => {
                    if !store.truncated {
                        let snapshot = vm.snapshot();
                        let mut staged = seen.clone();
                        let bytes = snapshot.unique_bytes(&mut staged);
                        if store.stored_bytes + bytes <= config.max_bytes {
                            seen = staged;
                            let profile = hook.profile();
                            store.stored_bytes += bytes;
                            store.checkpoints.push(Checkpoint {
                                dyn_index: snapshot.dyn_count(),
                                read_candidates: profile.read_candidates,
                                write_candidates: profile.write_candidates,
                                snapshot,
                            });
                        } else {
                            // Budget exhausted: keep the prefix already
                            // stored, never thin it out (prefix density is
                            // what bounds the replayed tail for early
                            // injections; late injections fall back to the
                            // deepest stored checkpoint).
                            store.truncated = true;
                        }
                    }
                    next_stop = if store.truncated {
                        // Nothing more to store — run the verification tail
                        // in one go instead of pausing every interval.
                        u64::MAX
                    } else {
                        next_stop + config.interval
                    };
                }
                Some(result) => break result,
            }
        };
        let completed = matches!(result.outcome, RunOutcome::Completed { .. });
        if !completed
            || result.dynamic_instrs != golden.dynamic_instrs
            || result.output != golden.output
        {
            return Err(ReplayCaptureError {
                expected_instrs: golden.dynamic_instrs,
                actual_instrs: result.dynamic_instrs,
                output_matches: result.output == golden.output,
                outcome: format!("{:?}", result.outcome),
            });
        }
        Ok(store)
    }

    /// The deepest checkpoint usable for an experiment whose first injection
    /// is the `first_target`-th candidate of `technique` — i.e. the last
    /// checkpoint that executed at most `first_target` such candidates, so
    /// the target candidate still lies in the replayed tail.
    pub fn nearest_for(&self, technique: Technique, first_target: u64) -> Option<&Checkpoint> {
        // Candidate counts grow monotonically with dyn_index, so binary
        // search for the partition point.
        let idx = self
            .checkpoints
            .partition_point(|c| c.candidates_for(technique) <= first_target);
        idx.checked_sub(1).map(|i| &self.checkpoints[i])
    }

    /// Checkpoint interval this store was captured with.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of stored checkpoints.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether the store holds no checkpoints at all (e.g. the workload is
    /// shorter than one interval, or the budget fit nothing).
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Approximate unique-chunk footprint of the stored snapshots (shared
    /// chunks counted once across the whole store).
    pub fn stored_bytes(&self) -> usize {
        self.stored_bytes
    }

    /// Whether the memory budget cut capture short of the full run.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// All stored checkpoints, shallowest first.
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// Publish this store's footprint into the telemetry registry
    /// ([`Metric::CheckpointStoreBytes`] / checkpoint count).  The sweep
    /// executor calls this once per registered unit at sweep start, so a
    /// snapshot relates replay savings to what the checkpoints cost to hold.
    pub fn publish_telemetry<S: crate::telemetry::TelemetrySink>(&self, telemetry: &S) {
        use crate::telemetry::Metric;
        telemetry.add(Metric::CheckpointStoreBytes, self.stored_bytes() as u64);
        telemetry.add(Metric::CheckpointStoreCheckpoints, self.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentSpec};
    use crate::fault_model::{FaultModel, WinSize};
    use mbfi_ir::{ModuleBuilder, Type};

    fn workload(n: i64) -> Module {
        let mut mb = ModuleBuilder::new("w");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let data = f.alloca(Type::I64, 16i64);
            f.counted_loop(Type::I64, 0i64, n, |f, i| {
                let slot = f.urem(Type::I64, i, 16i64);
                let sq = f.mul(Type::I64, i, i);
                f.store_elem(Type::I64, data, slot, sq);
            });
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 16i64, |f, i| {
                let v = f.load_elem(Type::I64, data, i);
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, v);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn capture_covers_the_run_and_counts_candidates_monotonically() {
        let m = workload(64);
        let golden = GoldenRun::capture(&m).unwrap();
        let store =
            CheckpointStore::capture(&m, &golden, CheckpointConfig::with_interval(50)).unwrap();
        assert!(!store.is_empty());
        assert!(!store.truncated());
        assert_eq!(store.len() as u64, (golden.dynamic_instrs - 1) / 50);
        let mut prev = None;
        for (i, cp) in store.checkpoints().iter().enumerate() {
            assert_eq!(cp.dyn_index, 50 * (i as u64 + 1));
            assert!(cp.read_candidates <= golden.candidates(Technique::InjectOnRead));
            assert!(cp.write_candidates <= golden.candidates(Technique::InjectOnWrite));
            if let Some((r, w)) = prev {
                assert!(cp.read_candidates >= r && cp.write_candidates >= w);
            }
            prev = Some((cp.read_candidates, cp.write_candidates));
        }
    }

    #[test]
    fn nearest_for_picks_the_deepest_usable_checkpoint() {
        let m = workload(64);
        let golden = GoldenRun::capture(&m).unwrap();
        let store =
            CheckpointStore::capture(&m, &golden, CheckpointConfig::with_interval(30)).unwrap();
        for technique in Technique::ALL {
            // Targets below the first checkpoint's candidate count have no
            // usable checkpoint... unless the first checkpoint saw 0.
            let first = store.checkpoints().first().unwrap();
            if first.candidates_for(technique) > 0 {
                assert!(store
                    .nearest_for(technique, first.candidates_for(technique) - 1)
                    .map(|c| c.dyn_index < first.dyn_index)
                    .unwrap_or(true));
            }
            // Any reachable target returns the deepest checkpoint whose count
            // does not exceed it.
            let candidates = golden.candidates(technique);
            for target in [0, candidates / 2, candidates.saturating_sub(1)] {
                if let Some(cp) = store.nearest_for(technique, target) {
                    assert!(cp.candidates_for(technique) <= target);
                    for other in store.checkpoints() {
                        if other.candidates_for(technique) <= target {
                            assert!(other.dyn_index <= cp.dyn_index);
                        }
                    }
                }
            }
            // A target past the end returns the deepest checkpoint.
            let deepest = store.nearest_for(technique, u64::MAX).unwrap();
            assert_eq!(
                deepest.dyn_index,
                store.checkpoints().last().unwrap().dyn_index
            );
        }
    }

    /// A workload with a large cold region: 32 KiB of heap data written once
    /// up front, then a read-only summing loop.  Checkpoints taken in the
    /// second phase share all the data chunks, which is what the unique-chunk
    /// budget accounting is supposed to exploit.
    fn cold_data_workload() -> Module {
        let mut mb = ModuleBuilder::new("cold");
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(main);
            let data = f.alloca(Type::I64, 4096i64);
            f.counted_loop(Type::I64, 0i64, 4096i64, |f, i| {
                f.store_elem(Type::I64, data, i, i);
            });
            let acc = f.slot(Type::I64);
            f.store(Type::I64, 0i64, acc);
            f.counted_loop(Type::I64, 0i64, 512i64, |f, i| {
                let slot = f.urem(Type::I64, i, 4096i64);
                let v = f.load_elem(Type::I64, data, slot);
                let cur = f.load(Type::I64, acc);
                let next = f.add(Type::I64, cur, v);
                f.store(Type::I64, next, acc);
            });
            let total = f.load(Type::I64, acc);
            f.print_i64(total);
            f.ret_void();
        }
        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn budget_truncates_capture_but_keeps_the_prefix() {
        let m = cold_data_workload();
        let golden = GoldenRun::capture(&m).unwrap();
        let full =
            CheckpointStore::capture(&m, &golden, CheckpointConfig::with_interval(100)).unwrap();
        assert!(full.len() > 4);

        // Unique-chunk accounting: the store's footprint is well below the
        // sum of standalone snapshot footprints, because consecutive
        // checkpoints share every chunk the run did not touch in between.
        let standalone: usize = full
            .checkpoints()
            .iter()
            .map(|c| c.snapshot().approx_bytes())
            .sum();
        assert!(full.stored_bytes() * 2 < standalone);

        // A budget of six standalone images holds more than six checkpoints
        // now that later ones are charged only marginal bytes.
        let one = full
            .checkpoints()
            .first()
            .unwrap()
            .snapshot()
            .approx_bytes();
        let sized = CheckpointStore::capture(
            &m,
            &golden,
            CheckpointConfig {
                interval: 100,
                max_bytes: one * 6,
            },
        )
        .unwrap();
        assert!(sized.len() > 6);
        assert!(sized.stored_bytes() <= one * 6);

        // A budget just below the full footprint truncates but keeps the
        // already-stored prefix, identical to the full capture's prefix.
        let tight = CheckpointStore::capture(
            &m,
            &golden,
            CheckpointConfig {
                interval: 100,
                max_bytes: full.stored_bytes() - 1,
            },
        )
        .unwrap();
        assert!(tight.truncated());
        assert!(tight.len() < full.len());
        assert!(!tight.is_empty());
        assert!(tight.stored_bytes() < full.stored_bytes());
        for (a, b) in tight.checkpoints().iter().zip(full.checkpoints()) {
            assert_eq!(a.dyn_index, b.dyn_index);
        }
    }

    #[test]
    fn capture_detects_module_golden_mismatch() {
        let m = workload(64);
        let other = workload(65);
        let golden_other = GoldenRun::capture(&other).unwrap();
        let err =
            CheckpointStore::capture(&m, &golden_other, CheckpointConfig::default()).unwrap_err();
        assert_eq!(err.expected_instrs, golden_other.dynamic_instrs);
        assert_ne!(err.actual_instrs, err.expected_instrs);
        assert!(err.to_string().contains("diverged"));
    }

    #[test]
    fn replayed_experiments_equal_full_experiments() {
        let m = workload(128);
        let golden = GoldenRun::capture(&m).unwrap();
        let store =
            CheckpointStore::capture(&m, &golden, CheckpointConfig::with_interval(64)).unwrap();
        for technique in Technique::ALL {
            for i in 0..40 {
                let spec = ExperimentSpec::sample(
                    technique,
                    FaultModel::multi_bit(3, WinSize::Random { lo: 1, hi: 20 }),
                    &golden,
                    0xC0FFEE,
                    i,
                    10,
                );
                let full = Experiment::run(&m, &golden, &spec);
                let replayed = Experiment::run_with_store(&m, &golden, &spec, Some(&store));
                assert_eq!(
                    full, replayed,
                    "{technique} experiment {i} diverged under replay"
                );
            }
        }
    }
}
