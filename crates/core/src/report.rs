//! Plain-text rendering of tables and figure data series.
//!
//! The experiment harness in `mbfi-bench` uses these helpers to print the
//! rows and series the paper reports, in a form that is easy to diff between
//! runs and against EXPERIMENTS.md.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TextTable {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row should have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        let total_width = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total_width));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .take(ncols)
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Render as CSV (for plotting outside the harness).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// A named data series (one line / bar group of a figure).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series label (e.g. a win-size configuration).
    pub label: String,
    /// `(x label, y value)` points.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Create an empty series.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: impl Into<String>, y: f64) {
        self.points.push((x.into(), y));
    }

    /// Maximum y value in the series (NaN-free assumption), 0 when empty.
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|(_, y)| *y).fold(0.0, f64::max)
    }
}

/// Figure data: a collection of series, renderable as a per-x text block.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Figure title.
    pub title: String,
    /// Data series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Create an empty figure.
    pub fn new(title: impl Into<String>) -> FigureData {
        FigureData {
            title: title.into(),
            series: Vec::new(),
        }
    }

    /// Render as an aligned table with one column per series.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(self.title.clone(), &[""]);
        table.headers = std::iter::once("x".to_string())
            .chain(self.series.iter().map(|s| s.label.clone()))
            .collect();
        // Collect x labels in the order of the first series.
        let xs: Vec<String> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| x.clone()).collect())
            .unwrap_or_default();
        for x in xs {
            let mut row = vec![x.clone()];
            for s in &self.series {
                let y = s
                    .points
                    .iter()
                    .find(|(px, _)| *px == x)
                    .map(|(_, y)| format!("{y:.2}"))
                    .unwrap_or_else(|| "-".to_string());
                row.push(y);
            }
            table.add_row(row);
        }
        table.render()
    }
}

/// Format a percentage with its ± error bar.
pub fn pct_with_ci(pct: f64, half_width_pct: f64) -> String {
    format!("{pct:.2}% ±{half_width_pct:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["program", "sdc%"]);
        t.add_row(vec!["basicmath".into(), "12.50".into()]);
        t.add_row(vec!["qsort".into(), "7.00".into()]);
        let out = t.render();
        assert!(out.contains("Demo"));
        assert!(out.contains("program"));
        assert!(out.contains("basicmath  12.50"));
        let csv = t.to_csv();
        assert!(csv.starts_with("program,sdc%"));
        assert!(csv.contains("qsort,7.00"));
    }

    #[test]
    fn figure_renders_series_by_x() {
        let mut fig = FigureData::new("Fig X");
        let mut a = Series::new("w=1");
        a.push("m=2", 10.0);
        a.push("m=3", 8.0);
        let mut b = Series::new("w=10");
        b.push("m=2", 11.5);
        b.push("m=3", 7.25);
        fig.series.push(a);
        fig.series.push(b);
        let out = fig.render();
        assert!(out.contains("Fig X"));
        assert!(out.contains("w=1"));
        assert!(out.contains("m=2"));
        assert!(out.contains("11.50"));
        assert_eq!(fig.series[0].max_y(), 10.0);
    }

    #[test]
    fn missing_points_render_as_dash() {
        let mut fig = FigureData::new("F");
        let mut a = Series::new("a");
        a.push("x1", 1.0);
        a.push("x2", 2.0);
        let mut b = Series::new("b");
        b.push("x1", 3.0);
        fig.series.push(a);
        fig.series.push(b);
        let out = fig.render();
        assert!(out.lines().any(|l| l.contains("x2") && l.contains('-')));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct_with_ci(12.3456, 0.789), "12.35% ±0.79");
    }

    #[test]
    fn empty_figure_and_table_are_safe() {
        let fig = FigureData::new("empty");
        assert!(fig.render().contains("empty"));
        let t = TextTable::new("", &["a"]);
        assert!(t.render().contains('a'));
    }
}
