//! Plain-text and JSON rendering of tables and figure data series.
//!
//! The experiment harness in `mbfi-bench` uses these helpers to print the
//! rows and series the paper reports, in a form that is easy to diff between
//! runs and against EXPERIMENTS.md.  Machine-readable emission goes through
//! the dependency-free [`json`] writer (the build must work fully offline,
//! so there is no serde here).

use std::fmt::Write as _;

pub mod json {
    //! A minimal hand-rolled JSON writer.
    //!
    //! Values are built as a [`Json`] tree and rendered with [`Json::render`].
    //! Only what report emission needs is implemented: objects keep their
    //! insertion order, floats are emitted with enough precision to
    //! round-trip, and non-finite floats become `null` (JSON has no NaN).

    use std::fmt::Write as _;

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Integer (kept exact; JSON numbers are not limited to f64 here).
        Int(i64),
        /// Unsigned integer (kept exact).
        UInt(u64),
        /// Floating point; NaN and infinities render as `null`.
        Num(f64),
        /// String (escaped on render).
        Str(String),
        /// Array.
        Arr(Vec<Json>),
        /// Object with insertion-ordered keys.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// An empty object.
        pub fn object() -> Json {
            Json::Obj(Vec::new())
        }

        /// Insert a key into an object (panics on non-objects).
        pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Json {
            match self {
                Json::Obj(entries) => entries.push((key.into(), value.into())),
                other => panic!("Json::set on non-object {other:?}"),
            }
            self
        }

        /// Render to a compact JSON string.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.write(&mut out);
            out
        }

        fn write(&self, out: &mut String) {
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Int(v) => {
                    let _ = write!(out, "{v}");
                }
                Json::UInt(v) => {
                    let _ = write!(out, "{v}");
                }
                Json::Num(v) => {
                    if v.is_finite() {
                        // `{:?}` prints round-trippable f64 (always with a
                        // decimal point or exponent, so it stays a float).
                        let _ = write!(out, "{v:?}");
                    } else {
                        out.push_str("null");
                    }
                }
                Json::Str(s) => write_escaped(out, s),
                Json::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.write(out);
                    }
                    out.push(']');
                }
                Json::Obj(entries) => {
                    out.push('{');
                    for (i, (k, v)) in entries.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        write_escaped(out, k);
                        out.push(':');
                        v.write(out);
                    }
                    out.push('}');
                }
            }
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    impl From<bool> for Json {
        fn from(v: bool) -> Json {
            Json::Bool(v)
        }
    }

    impl From<i64> for Json {
        fn from(v: i64) -> Json {
            Json::Int(v)
        }
    }

    impl From<u32> for Json {
        fn from(v: u32) -> Json {
            Json::UInt(v as u64)
        }
    }

    impl From<u64> for Json {
        fn from(v: u64) -> Json {
            Json::UInt(v)
        }
    }

    impl From<usize> for Json {
        fn from(v: usize) -> Json {
            Json::UInt(v as u64)
        }
    }

    impl From<f64> for Json {
        fn from(v: f64) -> Json {
            Json::Num(v)
        }
    }

    impl From<&str> for Json {
        fn from(v: &str) -> Json {
            Json::Str(v.to_string())
        }
    }

    impl From<String> for Json {
        fn from(v: String) -> Json {
            Json::Str(v)
        }
    }

    impl<T: Into<Json>> From<Vec<T>> for Json {
        fn from(v: Vec<T>) -> Json {
            Json::Arr(v.into_iter().map(Into::into).collect())
        }
    }
}

pub use json::Json;

/// A simple aligned text table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TextTable {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row should have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        let total_width = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total_width));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .take(ncols)
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Render as CSV (for plotting outside the harness).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Render as a JSON object `{title, headers, rows}`.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("title", self.title.clone());
        obj.set("headers", self.headers.clone());
        obj.set(
            "rows",
            Json::Arr(self.rows.iter().cloned().map(Json::from).collect()),
        );
        obj
    }
}

/// A named data series (one line / bar group of a figure).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    /// Series label (e.g. a win-size configuration).
    pub label: String,
    /// `(x label, y value)` points.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Create an empty series.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: impl Into<String>, y: f64) {
        self.points.push((x.into(), y));
    }

    /// Maximum y value in the series (NaN-free assumption), 0 when empty.
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|(_, y)| *y).fold(0.0, f64::max)
    }

    /// Render as a JSON object `{label, points: [{x, y}]}`.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("label", self.label.clone());
        obj.set(
            "points",
            Json::Arr(
                self.points
                    .iter()
                    .map(|(x, y)| {
                        let mut p = Json::object();
                        p.set("x", x.clone());
                        p.set("y", *y);
                        p
                    })
                    .collect(),
            ),
        );
        obj
    }
}

/// Figure data: a collection of series, renderable as a per-x text block.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FigureData {
    /// Figure title.
    pub title: String,
    /// Data series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Create an empty figure.
    pub fn new(title: impl Into<String>) -> FigureData {
        FigureData {
            title: title.into(),
            series: Vec::new(),
        }
    }

    /// Render as an aligned table with one column per series.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(self.title.clone(), &[""]);
        table.headers = std::iter::once("x".to_string())
            .chain(self.series.iter().map(|s| s.label.clone()))
            .collect();
        // Collect x labels in the order of the first series.
        let xs: Vec<String> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| x.clone()).collect())
            .unwrap_or_default();
        for x in xs {
            let mut row = vec![x.clone()];
            for s in &self.series {
                let y = s
                    .points
                    .iter()
                    .find(|(px, _)| *px == x)
                    .map(|(_, y)| format!("{y:.2}"))
                    .unwrap_or_else(|| "-".to_string());
                row.push(y);
            }
            table.add_row(row);
        }
        table.render()
    }

    /// Render as a JSON object `{title, series}`.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("title", self.title.clone());
        obj.set(
            "series",
            Json::Arr(self.series.iter().map(Series::to_json).collect()),
        );
        obj
    }
}

/// Format a percentage with its ± error bar.
pub fn pct_with_ci(pct: f64, half_width_pct: f64) -> String {
    format!("{pct:.2}% ±{half_width_pct:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["program", "sdc%"]);
        t.add_row(vec!["basicmath".into(), "12.50".into()]);
        t.add_row(vec!["qsort".into(), "7.00".into()]);
        let out = t.render();
        assert!(out.contains("Demo"));
        assert!(out.contains("program"));
        assert!(out.contains("basicmath  12.50"));
        let csv = t.to_csv();
        assert!(csv.starts_with("program,sdc%"));
        assert!(csv.contains("qsort,7.00"));
    }

    #[test]
    fn json_writer_escapes_and_renders_all_value_kinds() {
        let mut obj = Json::object();
        obj.set("name", "qu\"ote\\and\nnewline");
        obj.set("int", -3i64);
        obj.set("uint", u64::MAX);
        obj.set("pi", 3.5f64);
        obj.set("nan", f64::NAN);
        obj.set("flag", true);
        obj.set("list", vec![1u64, 2, 3]);
        obj.set("nil", Json::Null);
        assert_eq!(
            obj.render(),
            "{\"name\":\"qu\\\"ote\\\\and\\nnewline\",\"int\":-3,\
             \"uint\":18446744073709551615,\"pi\":3.5,\"nan\":null,\
             \"flag\":true,\"list\":[1,2,3],\"nil\":null}"
        );
        // Control characters use the \u escape.
        assert_eq!(Json::from("a\u{1}b").render(), "\"a\\u0001b\"");
    }

    /// Every control character below 0x20 must leave the writer as an
    /// escape sequence — either one of the short forms (`\n`, `\r`, `\t`) or
    /// a `\u00XX` escape — never as a raw byte, which would be invalid JSON.
    #[test]
    fn all_control_characters_are_escaped() {
        for c in (0u32..0x20).map(|c| char::from_u32(c).unwrap()) {
            let rendered = Json::from(format!("x{c}y")).render();
            let expected = match c {
                '\n' => "\"x\\ny\"".to_string(),
                '\r' => "\"x\\ry\"".to_string(),
                '\t' => "\"x\\ty\"".to_string(),
                c => format!("\"x\\u{:04x}y\"", c as u32),
            };
            assert_eq!(rendered, expected, "control char U+{:04X}", c as u32);
            // The rendered string must contain no raw control bytes at all.
            assert!(
                rendered.bytes().all(|b| b >= 0x20),
                "raw control byte leaked for U+{:04X}: {rendered:?}",
                c as u32
            );
        }
        // Boundary cases: 0x20 (space) and DEL pass through unescaped,
        // quotes and backslashes keep their dedicated escapes.
        assert_eq!(Json::from(" ").render(), "\" \"");
        assert_eq!(Json::from("\u{7f}").render(), "\"\u{7f}\"");
        assert_eq!(Json::from("\"\\").render(), "\"\\\"\\\\\"");
    }

    #[test]
    fn table_and_figure_emit_json() {
        let mut t = TextTable::new("Demo", &["program", "sdc%"]);
        t.add_row(vec!["qsort".into(), "7.00".into()]);
        assert_eq!(
            t.to_json().render(),
            "{\"title\":\"Demo\",\"headers\":[\"program\",\"sdc%\"],\
             \"rows\":[[\"qsort\",\"7.00\"]]}"
        );

        let mut fig = FigureData::new("Fig");
        let mut s = Series::new("w=1");
        s.push("m=2", 10.25);
        fig.series.push(s);
        assert_eq!(
            fig.to_json().render(),
            "{\"title\":\"Fig\",\"series\":[{\"label\":\"w=1\",\
             \"points\":[{\"x\":\"m=2\",\"y\":10.25}]}]}"
        );
    }

    #[test]
    fn figure_renders_series_by_x() {
        let mut fig = FigureData::new("Fig X");
        let mut a = Series::new("w=1");
        a.push("m=2", 10.0);
        a.push("m=3", 8.0);
        let mut b = Series::new("w=10");
        b.push("m=2", 11.5);
        b.push("m=3", 7.25);
        fig.series.push(a);
        fig.series.push(b);
        let out = fig.render();
        assert!(out.contains("Fig X"));
        assert!(out.contains("w=1"));
        assert!(out.contains("m=2"));
        assert!(out.contains("11.50"));
        assert_eq!(fig.series[0].max_y(), 10.0);
    }

    #[test]
    fn missing_points_render_as_dash() {
        let mut fig = FigureData::new("F");
        let mut a = Series::new("a");
        a.push("x1", 1.0);
        a.push("x2", 2.0);
        let mut b = Series::new("b");
        b.push("x1", 3.0);
        fig.series.push(a);
        fig.series.push(b);
        let out = fig.render();
        assert!(out.lines().any(|l| l.contains("x2") && l.contains('-')));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct_with_ci(12.3456, 0.789), "12.35% ±0.79");
    }

    #[test]
    fn empty_figure_and_table_are_safe() {
        let fig = FigureData::new("empty");
        assert!(fig.render().contains("empty"));
        let t = TextTable::new("", &["a"]);
        assert!(t.render().contains('a'));
    }
}
